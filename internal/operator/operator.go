// Package operator defines the operator abstractions of the execution plan
// — the producer/consumer contract, feedback routing, and the simple
// (non-join) operators: sinks, selections, projections and static-relation
// joins (Sec. V).
package operator

import (
	"repro/internal/feedback"
	"repro/internal/stream"
)

// Port distinguishes the two inputs of a binary operator.
type Port int

// Binary operator input ports.
const (
	Left  Port = 0
	Right Port = 1
)

func (p Port) String() string {
	if p == Left {
		return "L"
	}
	return "R"
}

// Opposite returns the other port.
func (p Port) Opposite() Port { return 1 - p }

// Consumer receives composites produced by an upstream operator.
type Consumer interface {
	// Consume delivers one composite to the given input port. In the
	// pipelined engine this recurses into the consumer's processing; in the
	// queued engine it enqueues.
	Consume(c *stream.Composite, to Port)
}

// Producer is the upstream handle a consumer sends feedback to.
type Producer interface {
	// Name labels the operator for diagnostics.
	Name() string
	// OutSources is the set of sources covered by the producer's outputs.
	OutSources() stream.SourceSet
	// Feedback delivers a feedback message. For Resume commands the return
	// value is S_Π — the demanded partial results the consumer must join
	// with its current input and append to its state (Sec. III-A). For all
	// other commands it returns nil.
	Feedback(msg feedback.Message) []*stream.Composite
	// CanSuspend reports whether feedback can have any effect here: true
	// for join operators and for relays whose upstream chain reaches a
	// join. Consumers skip MNS detection on ports whose producer cannot
	// suspend (e.g. raw sources).
	CanSuspend() bool
}

// Op is any operator that participates in the data flow.
type Op interface {
	Consumer
	Name() string
	OutSources() stream.SourceSet
}

// FanOut duplicates a stream to several consumers; used by Eddy-style plans
// and test rigs. It is not a Producer — feedback does not traverse it.
type FanOut struct {
	name string
	outs []struct {
		c    Consumer
		port Port
	}
	sources stream.SourceSet
}

// NewFanOut creates a fan-out node covering the given sources.
func NewFanOut(name string, sources stream.SourceSet) *FanOut {
	return &FanOut{name: name, sources: sources}
}

// Name implements Op.
func (f *FanOut) Name() string { return f.name }

// OutSources implements Op.
func (f *FanOut) OutSources() stream.SourceSet { return f.sources }

// AddConsumer registers a downstream consumer.
func (f *FanOut) AddConsumer(c Consumer, port Port) {
	f.outs = append(f.outs, struct {
		c    Consumer
		port Port
	}{c, port})
}

// Consume forwards the composite to every registered consumer.
func (f *FanOut) Consume(c *stream.Composite, _ Port) {
	for _, o := range f.outs {
		o.c.Consume(c, o.port)
	}
}
