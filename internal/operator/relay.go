package operator

import (
	"fmt"

	"repro/internal/feedback"
	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// Selection filters composites by a single-source comparison (Fig. 9a). As
// a consumer it detects permanent MNSs: a component failing the filter can
// never pass later, so the upstream producer may delete the suspended
// tuples outright (no resumption will ever be issued). As a producer it
// relays feedback from its own consumer to the upstream join (Sec. V).
type Selection struct {
	name     string
	pred     predicate.Selection
	prod     Producer
	consumer Consumer
	outPort  Port
	ctr      *metrics.Counters
	detect   bool
	nextMNS  func() uint64
	window   stream.Time
}

// NewSelection creates a selection operator. prod may be nil when fed by a
// raw source; detect enables JIT feedback generation; nextMNS supplies
// MNS identifiers (shared with the rest of the plan).
func NewSelection(name string, pred predicate.Selection, prod Producer, ctr *metrics.Counters, detect bool, nextMNS func() uint64, window stream.Time) *Selection {
	return &Selection{name: name, pred: pred, prod: prod, ctr: ctr, detect: detect, nextMNS: nextMNS, window: window}
}

// SetConsumer wires the downstream consumer.
func (s *Selection) SetConsumer(c Consumer, port Port) { s.consumer, s.outPort = c, port }

// Name implements Op.
func (s *Selection) Name() string { return s.name }

// OutSources implements Op. A selection preserves its input's sources; the
// concrete set depends on the producer.
func (s *Selection) OutSources() stream.SourceSet {
	if s.prod != nil {
		return s.prod.OutSources()
	}
	return stream.SourceSet(0).Add(s.pred.Source)
}

// CanSuspend implements Producer: feedback through a selection reaches the
// upstream join, if any.
func (s *Selection) CanSuspend() bool { return s.prod != nil && s.prod.CanSuspend() }

// Feedback implements Producer by relaying to the upstream producer and
// filtering any returned S_Π through the selection.
func (s *Selection) Feedback(msg feedback.Message) []*stream.Composite {
	if s.prod == nil {
		return nil
	}
	out := s.prod.Feedback(msg)
	if len(out) == 0 {
		return nil
	}
	kept := out[:0]
	for _, c := range out {
		s.ctr.Comparisons++
		if s.pred.Holds(c) {
			kept = append(kept, c)
		}
	}
	return kept
}

// Consume implements Consumer: evaluate the filter, forward survivors, and
// issue permanent suspension feedback for rejected inputs.
func (s *Selection) Consume(c *stream.Composite, _ Port) {
	s.ctr.Comparisons++
	if s.pred.Holds(c) {
		if s.consumer != nil {
			s.consumer.Consume(c, s.outPort)
		}
		return
	}
	if !s.detect || s.prod == nil || !s.prod.CanSuspend() {
		return
	}
	// The failing component is the predicate's source; its rejection is
	// value-determined and permanent for this exact value... only for
	// equality-shaped knowledge. We anchor the MNS on this component and
	// let it expire with the component (conservative but always sound).
	t := c.Comp(s.pred.Source)
	if t == nil {
		return
	}
	attr := predicate.Attr{Source: s.pred.Source, Col: s.pred.Col}
	sig := feedback.Signature{{Attr: attr, Val: t.Vals[s.pred.Col]}}
	m := &feedback.MNS{
		ID:      s.nextMNS(),
		Sources: stream.SourceSet(0).Add(s.pred.Source),
		Sig:     sig,
		Expiry:  t.TS + s.window,
	}
	s.ctr.MNSDetected++
	s.ctr.Feedbacks++
	s.prod.Feedback(feedback.Message{Cmd: feedback.Suspend, MNS: []*feedback.MNS{m}})
}

// Projection is a pass-through relay. The composite data model retains all
// components (column pruning would happen at output formatting), so the
// operator's role here is plan-structural: it relays data downstream and
// feedback upstream, demonstrating Sec. V's "OP is not a join" case.
type Projection struct {
	name     string
	prod     Producer
	consumer Consumer
	outPort  Port
}

// NewProjection creates a projection relay over the given producer.
func NewProjection(name string, prod Producer) *Projection {
	return &Projection{name: name, prod: prod}
}

// SetConsumer wires the downstream consumer.
func (p *Projection) SetConsumer(c Consumer, port Port) { p.consumer, p.outPort = c, port }

// Name implements Op.
func (p *Projection) Name() string { return p.name }

// OutSources implements Op.
func (p *Projection) OutSources() stream.SourceSet {
	if p.prod != nil {
		return p.prod.OutSources()
	}
	return 0
}

// CanSuspend implements Producer.
func (p *Projection) CanSuspend() bool { return p.prod != nil && p.prod.CanSuspend() }

// Feedback implements Producer by pure relay.
func (p *Projection) Feedback(msg feedback.Message) []*stream.Composite {
	if p.prod == nil {
		return nil
	}
	return p.prod.Feedback(msg)
}

// Consume implements Consumer.
func (p *Projection) Consume(c *stream.Composite, _ Port) {
	if p.consumer != nil {
		p.consumer.Consume(c, p.outPort)
	}
}

// String renders the operator.
func (p *Projection) String() string { return fmt.Sprintf("π(%s)", p.name) }
