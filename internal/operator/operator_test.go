package operator

import (
	"testing"

	"repro/internal/feedback"
	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/stream"
)

func tpl(src stream.SourceID, ts stream.Time, vals ...stream.Value) *stream.Tuple {
	return &stream.Tuple{ID: uint64(ts), Source: src, TS: ts, Vals: vals}
}

func TestSinkOrderingAndRetention(t *testing.T) {
	ctr := &metrics.Counters{}
	s := NewSink("sink", ctr, true)
	a := stream.NewComposite(2, tpl(0, 10, 1))
	b := stream.NewComposite(2, tpl(0, 20, 2))
	s.Consume(a, Left)
	s.Consume(b, Left)
	if s.Count() != 2 || ctr.FinalResults != 2 || s.OrderViolations != 0 {
		t.Fatal("sink counting wrong")
	}
	s.Consume(a, Left) // timestamp goes backwards
	if s.OrderViolations != 1 {
		t.Fatal("order violation not recorded")
	}
	if len(s.Results()) != 3 || len(s.ResultKeys()) != 3 {
		t.Fatal("retention wrong")
	}
}

type captureProducer struct {
	msgs []feedback.Message
	out  []*stream.Composite
}

func (c *captureProducer) Name() string                 { return "cap" }
func (c *captureProducer) OutSources() stream.SourceSet { return stream.SourceSet(0).Add(0) }
func (c *captureProducer) CanSuspend() bool             { return true }
func (c *captureProducer) Feedback(m feedback.Message) []*stream.Composite {
	c.msgs = append(c.msgs, m)
	return c.out
}

type captureConsumer struct{ got []*stream.Composite }

func (c *captureConsumer) Consume(x *stream.Composite, _ Port) { c.got = append(c.got, x) }

func TestSelectionFilterAndFeedback(t *testing.T) {
	ctr := &metrics.Counters{}
	prod := &captureProducer{}
	var id uint64
	sel := NewSelection("σ", predicate.Selection{Source: 0, Col: 0, Op: predicate.GT, Const: 200},
		prod, ctr, true, func() uint64 { id++; return id }, stream.Minute)
	sink := &captureConsumer{}
	sel.SetConsumer(sink, Left)

	pass := stream.NewComposite(1, tpl(0, 1, 300))
	fail := stream.NewComposite(1, tpl(0, 2, 100))
	sel.Consume(pass, Left)
	sel.Consume(fail, Left)
	if len(sink.got) != 1 || sink.got[0] != pass {
		t.Fatal("filter wrong")
	}
	// The rejected input produced a suspension feedback upstream (Fig. 9a).
	if len(prod.msgs) != 1 || prod.msgs[0].Cmd != feedback.Suspend {
		t.Fatalf("want suspension feedback, got %v", prod.msgs)
	}
	if ctr.MNSDetected != 1 {
		t.Fatal("MNS not counted")
	}
	// Relay: downstream feedback passes through; S_Π is filtered.
	prod.out = []*stream.Composite{pass, fail}
	got := sel.Feedback(feedback.Message{Cmd: feedback.Resume})
	if len(got) != 1 || got[0] != pass {
		t.Fatalf("relay filtering wrong: %d", len(got))
	}
	if !sel.CanSuspend() {
		t.Fatal("selection over a join must relay suspendability")
	}
}

func TestProjectionRelay(t *testing.T) {
	prod := &captureProducer{}
	p := NewProjection("π", prod)
	sink := &captureConsumer{}
	p.SetConsumer(sink, Right)
	c := stream.NewComposite(1, tpl(0, 1, 5))
	p.Consume(c, Left)
	if len(sink.got) != 1 {
		t.Fatal("projection must pass through")
	}
	p.Feedback(feedback.Message{Cmd: feedback.Suspend})
	if len(prod.msgs) != 1 {
		t.Fatal("projection must relay feedback")
	}
}

func TestStaticJoin(t *testing.T) {
	cat := stream.NewCatalog()
	cat.MustAdd(stream.NewSchema("A", "y"))
	cat.MustAdd(stream.NewSchema("R", "y"))
	conj := predicate.Conj{{Left: 0, LCol: 0, Right: 1, RCol: 0}}
	relation := []*stream.Tuple{tpl(1, 0, 100), tpl(1, 0, 200)}
	ctr := &metrics.Counters{}
	prod := &captureProducer{}
	var id uint64
	sj := NewStaticJoin("⋈R", 1, relation, conj, prod, ctr, true,
		func() uint64 { id++; return id }, stream.Minute, 2)
	sink := &captureConsumer{}
	sj.SetConsumer(sink, Left)

	hit := stream.NewComposite(2, tpl(0, 1, 100))
	sj.Consume(hit, Left)
	if len(sink.got) != 1 {
		t.Fatalf("static join should emit 1 result, got %d", len(sink.got))
	}
	miss := stream.NewComposite(2, tpl(0, 2, 999))
	sj.Consume(miss, Left)
	if len(prod.msgs) != 1 || prod.msgs[0].Cmd != feedback.Suspend {
		t.Fatal("miss must suspend upstream")
	}
	// Same-signature miss must not re-send (the relation never changes).
	miss2 := stream.NewComposite(2, tpl(0, 3, 999))
	sj.Consume(miss2, Left)
	if len(prod.msgs) != 1 {
		t.Fatal("duplicate permanent suspension sent")
	}
}

func TestFanOut(t *testing.T) {
	f := NewFanOut("dup", stream.SourceSet(0).Add(0))
	a, b := &captureConsumer{}, &captureConsumer{}
	f.AddConsumer(a, Left)
	f.AddConsumer(b, Right)
	c := stream.NewComposite(1, tpl(0, 1, 1))
	f.Consume(c, Left)
	if len(a.got) != 1 || len(b.got) != 1 {
		t.Fatal("fan-out failed")
	}
	if f.Name() != "dup" || f.OutSources().Count() != 1 {
		t.Fatal("metadata wrong")
	}
}

func TestPortOpposite(t *testing.T) {
	if Left.Opposite() != Right || Right.Opposite() != Left {
		t.Fatal("opposite wrong")
	}
	if Left.String() != "L" || Right.String() != "R" {
		t.Fatal("render wrong")
	}
}
