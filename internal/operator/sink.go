package operator

import (
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stream"
)

// Sink terminates a plan: it counts final results, verifies temporal
// ordering, and can optionally retain results for test comparison.
type Sink struct {
	name    string
	ctr     *metrics.Counters
	trace   *obs.Tracer
	keep    bool
	results []*stream.Composite
	count   uint64
	lastTS  stream.Time
	// OrderViolations counts deliveries whose timestamp went backwards —
	// must stay zero (the paper's temporal ordering requirement).
	OrderViolations uint64
}

// NewSink creates a sink. When keep is true every result is retained (tests
// only; experiments run with keep=false to avoid skewing memory accounting).
func NewSink(name string, ctr *metrics.Counters, keep bool) *Sink {
	return &Sink{name: name, ctr: ctr, keep: keep, lastTS: -1}
}

// Name implements Op.
func (s *Sink) Name() string { return s.name }

// OutSources implements Op; a sink produces nothing.
func (s *Sink) OutSources() stream.SourceSet { return 0 }

// Consume implements Consumer.
func (s *Sink) Consume(c *stream.Composite, _ Port) {
	s.count++
	if s.ctr != nil {
		s.ctr.FinalResults++
	}
	if c.TS < s.lastTS {
		s.OrderViolations++
	}
	s.lastTS = c.TS
	s.trace.Delivery(c.TS)
	if s.keep {
		s.results = append(s.results, c)
	}
}

// SetTrace attaches (or, with nil, detaches) the observability tracer: each
// delivery feeds the arrival→delivery latency histogram (DESIGN.md §9).
func (s *Sink) SetTrace(tr *obs.Tracer) { s.trace = tr }

// SetCounters re-points the sink's counter block. A plan migration keeps
// the run's single sink across plan instances (delivery order and counts
// must span the handoff) while the counter substrate moves to the successor
// plan's Counters, which have absorbed the predecessor's totals
// (internal/adapt, DESIGN.md §7).
func (s *Sink) SetCounters(ctr *metrics.Counters) { s.ctr = ctr }

// Count returns the number of results delivered.
func (s *Sink) Count() uint64 { return s.count }

// Results returns retained results (keep mode only).
func (s *Sink) Results() []*stream.Composite { return s.results }

// ResultKeys returns the canonical keys of retained results in delivery
// order, for multiset comparison across engines.
func (s *Sink) ResultKeys() []string {
	keys := make([]string, len(s.results))
	for i, c := range s.results {
		keys[i] = c.Key()
	}
	return keys
}
