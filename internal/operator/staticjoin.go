package operator

import (
	"repro/internal/feedback"
	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// StaticJoin joins its streaming input against a static relation R_C
// (Fig. 9b). Because the relation never changes, any MNS it detects is
// permanent: the operator sends suspension feedback but will never issue a
// resumption, so the upstream producer can discard the suspended tuples.
type StaticJoin struct {
	name     string
	relation []*stream.Tuple // tuples of one static source
	relSrc   stream.SourceID
	preds    predicate.Conj
	prod     Producer
	consumer Consumer
	outPort  Port
	ctr      *metrics.Counters
	detect   bool
	nextMNS  func() uint64
	window   stream.Time
	numSrc   int
	sent     map[string]bool // signatures already suspended
}

// NewStaticJoin creates a static join. relation holds the static source's
// tuples; preds is the full query conjunction (the operator evaluates the
// subset touching the static source).
func NewStaticJoin(name string, relSrc stream.SourceID, relation []*stream.Tuple, preds predicate.Conj, prod Producer, ctr *metrics.Counters, detect bool, nextMNS func() uint64, window stream.Time, numSources int) *StaticJoin {
	return &StaticJoin{
		name: name, relation: relation, relSrc: relSrc, preds: preds,
		prod: prod, ctr: ctr, detect: detect, nextMNS: nextMNS,
		window: window, numSrc: numSources, sent: make(map[string]bool),
	}
}

// SetConsumer wires the downstream consumer.
func (j *StaticJoin) SetConsumer(c Consumer, port Port) { j.consumer, j.outPort = c, port }

// Name implements Op.
func (j *StaticJoin) Name() string { return j.name }

// OutSources implements Op.
func (j *StaticJoin) OutSources() stream.SourceSet {
	out := stream.SourceSet(0).Add(j.relSrc)
	if j.prod != nil {
		out = out.Union(j.prod.OutSources())
	}
	return out
}

// CanSuspend implements Producer (relay upstream).
func (j *StaticJoin) CanSuspend() bool { return j.prod != nil && j.prod.CanSuspend() }

// Feedback implements Producer by relaying upstream; returned S_Π tuples
// are joined against the relation before being handed back.
func (j *StaticJoin) Feedback(msg feedback.Message) []*stream.Composite {
	if j.prod == nil {
		return nil
	}
	up := j.prod.Feedback(msg)
	if len(up) == 0 {
		return nil
	}
	var out []*stream.Composite
	for _, c := range up {
		out = append(out, j.join(c)...)
	}
	return out
}

// Consume implements Consumer: probe the relation, emit matches, detect
// permanent MNSs on misses.
func (j *StaticJoin) Consume(c *stream.Composite, _ Port) {
	results := j.join(c)
	for _, r := range results {
		if j.consumer != nil {
			j.consumer.Consume(r, j.outPort)
		}
	}
	if len(results) > 0 || !j.detect || j.prod == nil || !j.prod.CanSuspend() {
		return
	}
	j.detectMNS(c)
}

func (j *StaticJoin) join(c *stream.Composite) []*stream.Composite {
	var out []*stream.Composite
	relSet := stream.SourceSet(0).Add(j.relSrc)
	j.ctr.Probes++
	for _, rt := range j.relation {
		rc := stream.NewComposite(j.numSrc, rt)
		ok, n := j.preds.EvalPair(c, rc)
		j.ctr.Comparisons += uint64(n)
		if ok {
			out = append(out, stream.Join(c, rc))
			j.ctr.Results++
		}
	}
	_ = relSet
	return out
}

// detectMNS finds the minimal components of c, among those linked to the
// static source, with no partner in the relation, and suspends them
// permanently upstream. Detection here uses the Level-1 (single component)
// case, which covers the common static-filter pattern.
func (j *StaticJoin) detectMNS(c *stream.Composite) {
	relSet := stream.SourceSet(0).Add(j.relSrc)
	for _, src := range j.preds.SourcesLinkedTo(c.Sources, relSet) {
		comp := c.Comp(src)
		if comp == nil {
			continue
		}
		linked := j.preds.TouchingAcross(src, relSet)
		matched := false
		for _, rt := range j.relation {
			rc := stream.NewComposite(j.numSrc, rt)
			all := true
			for _, p := range linked {
				j.ctr.Comparisons++
				if !p.Holds(c, rc) {
					all = false
					break
				}
			}
			if all {
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		attrs := j.preds.JoinAttrs(src, relSet)
		sig := feedback.MakeSignature(attrs, func(id stream.SourceID) *stream.Tuple { return c.Comp(id) })
		key := sig.Canon()
		if j.sent[key] {
			continue
		}
		j.sent[key] = true
		m := &feedback.MNS{
			ID:      j.nextMNS(),
			Sources: stream.SourceSet(0).Add(src),
			Sig:     sig,
			Preds:   linked,
			Expiry:  comp.TS + j.window,
		}
		j.ctr.MNSDetected++
		j.ctr.Feedbacks++
		j.prod.Feedback(feedback.Message{Cmd: feedback.Suspend, MNS: []*feedback.MNS{m}})
	}
}
