package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// RingSink retains the last N events behind a mutex — the only sink safe to
// read while the engine is still emitting, which is exactly what the live
// /trace endpoint needs. For post-run export (Chrome traces, goldens) use
// the unlocked MemorySink instead.
type RingSink struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRingSink creates a ring retaining the last n events (n must be > 0).
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		panic("obs: ring sink capacity must be positive")
	}
	return &RingSink{buf: make([]Event, n)}
}

// Emit implements Sink.
func (r *RingSink) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// TraceEvents implements EventSource: a copy of the retained events, oldest
// first.
func (r *RingSink) TraceEvents() ([]Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...), true
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out, true
}

// Registry aggregates the tracers of one process — one for a single-engine
// run, one per replica for a sharded run — behind the ops endpoint.
type Registry struct {
	mu  sync.Mutex
	trs []*Tracer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds tracers (nils are ignored).
func (r *Registry) Register(trs ...*Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range trs {
		if t != nil {
			r.trs = append(r.trs, t)
		}
	}
}

// Tracers returns the registered tracers in registration order.
func (r *Registry) Tracers() []*Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Tracer(nil), r.trs...)
}

// Snapshots returns the last published snapshot of each tracer, skipping
// tracers that have not published yet.
func (r *Registry) Snapshots() []*Snapshot {
	var out []*Snapshot
	for _, t := range r.Tracers() {
		if s := t.Snapshot(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Handler returns the ops endpoint mux:
//
//	/metrics        Prometheus text exposition (per-shard labels)
//	/trace          NDJSON stream of retained trace events (ring sinks)
//	/debug/pprof/   the standard pprof surface
//	/healthz        liveness
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, r.Snapshots())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, t := range r.Tracers() {
			evs, ok := t.TraceEvents()
			if !ok {
				continue
			}
			for _, e := range evs {
				enc.Encode(struct {
					Kind  string `json:"kind"`
					TS    int64  `json:"ts"`
					Op    string `json:"op,omitempty"`
					Shard int    `json:"shard"`
					Value uint64 `json:"value"`
					Aux   int64  `json:"aux,omitempty"`
					Note  string `json:"note,omitempty"`
				}{e.Kind.String(), int64(e.TS), e.Op, e.Shard, e.Value, e.Aux, e.Note})
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live ops endpoint bound to a listener.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve binds addr (":9090", "127.0.0.1:0", …) and serves the registry's
// handler until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{lis: lis, srv: &http.Server{Handler: r.Handler()}}
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the server down immediately, dropping in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight requests
// (a scrape mid-read, a pprof profile) to finish, up to the context deadline.
// On deadline it degrades to Close semantics via the underlying http.Server.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
