package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
)

func TestRingSinkWraps(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 6; i++ {
		r.Emit(Event{Kind: KindArrival, Value: uint64(i)})
	}
	evs, ok := r.TraceEvents()
	if !ok || len(evs) != 4 {
		t.Fatalf("got %d events, ok=%v", len(evs), ok)
	}
	for i, e := range evs {
		if e.Value != uint64(i+2) {
			t.Fatalf("event %d value=%d, want %d (oldest first)", i, e.Value, i+2)
		}
	}
}

func TestTeeSink(t *testing.T) {
	var c CountingSink
	r := NewRingSink(8)
	tee := TeeSink{&c, r}
	tee.Emit(Event{Kind: KindSuspend})
	if c.Count(KindSuspend) != 1 || c.Total() != 1 {
		t.Error("tee missed the counting branch")
	}
	if evs, ok := tee.TraceEvents(); !ok || len(evs) != 1 {
		t.Error("tee did not find the ring's event source")
	}
}

func TestMemorySinkMask(t *testing.T) {
	m := &MemorySink{Mask: MaskOf(KindEpoch, KindMigrationStart)}
	m.Emit(Event{Kind: KindArrival})
	m.Emit(Event{Kind: KindEpoch})
	m.Emit(Event{Kind: KindMigrationStart})
	if len(m.Events()) != 2 {
		t.Fatalf("mask kept %d events, want 2", len(m.Events()))
	}
}

// TestOpsEndpoint boots the live server on an ephemeral port and checks the
// whole surface: /metrics parses under the promtext grammar with the right
// content type, /trace streams NDJSON, /healthz answers, pprof is mounted.
func TestOpsEndpoint(t *testing.T) {
	ring := NewRingSink(64)
	tr := New(Options{Sink: ring, SampleEvery: 10, Label: "shard0"})
	ctr := &metrics.Counters{}
	tr.Bind(ctr, nil, nil)
	tr.Advance(1)
	ctr.Probes = 42
	tr.Arrival(&stream.Tuple{TS: 1, ID: 7})
	tr.Advance(25) // crosses boundaries 10 and 20 → snapshot published
	tr.Finish()

	reg := NewRegistry()
	reg.Register(tr, nil) // nils are skipped
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}
	samples, err := ParseProm(body)
	if err != nil {
		t.Fatalf("scrape fails promtext grammar: %v\n%s", err, body)
	}
	found := false
	for _, s := range samples {
		if s.Name == "jit_probes_total" && s.Labels["shard"] == "shard0" && s.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Error("jit_probes_total{shard=\"shard0\"} 42 not scraped")
	}

	_, body = get("/trace")
	sc := bufio.NewScanner(strings.NewReader(body))
	lines := 0
	for sc.Scan() {
		var e struct {
			Kind  string `json:"kind"`
			TS    int64  `json:"ts"`
			Shard int    `json:"shard"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Kind != "arrival" {
			t.Errorf("unexpected kind %q", e.Kind)
		}
		lines++
	}
	if lines != 1 {
		t.Errorf("%d trace lines, want 1", lines)
	}

	if _, body = get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz said %q", body)
	}
	get("/debug/pprof/cmdline")
}

// TestServerShutdownGraceful proves Shutdown(ctx) lets an in-flight request
// finish before the server goes away, and that the listener is closed for new
// connections afterwards.
func TestServerShutdownGraceful(t *testing.T) {
	ring := NewRingSink(8)
	tr := New(Options{Sink: ring, SampleEvery: 10})
	tr.Bind(&metrics.Counters{}, nil, nil)
	tr.Advance(1)
	tr.Advance(25)
	tr.Finish()

	reg := NewRegistry()
	reg.Register(tr)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	// Open a request, read its full body concurrently with Shutdown: graceful
	// shutdown must let it complete with 200 and an intact payload.
	started := make(chan struct{})
	type result struct {
		status int
		body   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			close(started)
			done <- result{err: err}
			return
		}
		close(started) // connection established; Shutdown must wait for us
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{status: resp.StatusCode, body: string(body), err: err}
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request got status %d", r.status)
	}
	if _, err := ParseProm(r.body); err != nil {
		t.Fatalf("in-flight scrape body is torn: %v", err)
	}

	// After Shutdown returns, the port must refuse new connections.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
	// A second shutdown is a no-op, not a panic.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("repeated shutdown: %v", err)
	}
}
