package obs

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Probes":          "probes",
		"FinalResults":    "final_results",
		"MNSDetected":     "mns_detected",
		"BloomChecks":     "bloom_checks",
		"CatchUpJoins":    "catch_up_joins",
		"LateDropped":     "late_dropped",
		"SuppressedPairs": "suppressed_pairs",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%s)=%s, want %s", in, got, want)
		}
	}
}

// TestWritePromParses round-trips the exposition through the grammar
// validator — the acceptance criterion's promtext check — and verifies the
// per-shard labelling and that every Counters field has a family.
func TestWritePromParses(t *testing.T) {
	var lat Histogram
	lat.Observe(0)
	lat.Observe(5)
	lat.Observe(120000)
	snaps := []*Snapshot{
		{Label: "shard0", Counters: metrics.Counters{Probes: 10, MNSDetected: 3}, LiveBytes: 100, Latency: lat},
		{Label: "shard1", Counters: metrics.Counters{Probes: 20}, LiveBytes: 50},
		nil, // unpublished tracers are skipped
	}
	var b strings.Builder
	WriteProm(&b, snaps)

	samples, err := ParseProm(b.String())
	if err != nil {
		t.Fatalf("exposition fails promtext grammar: %v", err)
	}
	families := map[string]bool{}
	for _, f := range PromFamilies(samples) {
		families[f] = true
	}
	// Every Counters field must expose a family — the reflection-derived
	// names keep new counters visible without wiring.
	ct := reflect.TypeOf(metrics.Counters{})
	for i := 0; i < ct.NumField(); i++ {
		name := "jit_" + snakeCase(ct.Field(i).Name) + "_total"
		if !families[name] {
			t.Errorf("counter family %s missing from exposition", name)
		}
	}
	for _, want := range []string{"jit_cost_units_total", "jit_live_bytes", "jit_latency_event_ms", "jit_latency_wall_ns"} {
		if !families[want] {
			t.Errorf("family %s missing", want)
		}
	}

	byShard := map[string]float64{}
	var bucketSeen bool
	for _, s := range samples {
		if s.Name == "jit_probes_total" {
			byShard[s.Labels["shard"]] = s.Value
		}
		if s.Name == "jit_latency_event_ms_bucket" {
			bucketSeen = true
			if _, ok := s.Labels["le"]; !ok {
				t.Error("histogram bucket without le")
			}
		}
	}
	if byShard["shard0"] != 10 || byShard["shard1"] != 20 {
		t.Errorf("per-shard probes wrong: %v", byShard)
	}
	if !bucketSeen {
		t.Error("no latency buckets emitted")
	}
}

func TestParsePromRejects(t *testing.T) {
	bad := []string{
		"jit_x_total 1", // sample without TYPE
		"# TYPE jit_x_total banana\njit_x_total 1",      // unknown type
		"# TYPE 9bad counter\n9bad 1",                   // bad metric name
		"# TYPE jit_x_total counter\njit_x_total{le} 1", // malformed label pair
		"# TYPE jit_x_total counter\njit_x_total nope",  // bad value
		"", // no samples at all
	}
	for _, text := range bad {
		if _, err := ParseProm(text); err == nil {
			t.Errorf("accepted invalid exposition %q", text)
		}
	}
}
