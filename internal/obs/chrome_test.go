package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeTrace(t *testing.T) {
	events := []Event{
		{Kind: KindArrival, TS: 5, Value: 1, Aux: 2},
		{Kind: KindProbeBatch, TS: 5, Op: "Op1", Value: 3, Aux: 7},
		{Kind: KindMigrationStart, TS: 9, Shard: 1, Note: "a -> b"},
	}
	raw := ChromeTrace(events)

	// Deterministic: same input, same bytes.
	if !bytes.Equal(raw, ChromeTrace(events)) {
		t.Fatal("ChromeTrace is not deterministic")
	}

	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
			S    string `json:"s"`
			Args struct {
				Op   string `json:"op"`
				Name string `json:"name"`
				Note string `json:"note"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit=%q", f.DisplayTimeUnit)
	}

	// Expected shape: thread_name metadata precedes the first event of each
	// (pid, lane); lane 0 is the engine, operator lanes follow first
	// appearance; stream ms map to trace µs.
	var inst, meta int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "thread_name" {
				t.Errorf("metadata event %q", e.Name)
			}
		case "i":
			inst++
			if e.S != "t" {
				t.Errorf("instant scope %q, want thread", e.S)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if inst != 3 {
		t.Errorf("%d instants, want 3", inst)
	}
	// Lanes: engine (pid 0), Op1 (pid 0), engine (pid 1) — three metadata rows.
	if meta != 3 {
		t.Errorf("%d thread_name rows, want 3", meta)
	}
	first := f.TraceEvents[0]
	if first.Ph != "M" || first.Args.Name != "engine" || first.TID != 0 {
		t.Errorf("first row must name the engine lane: %+v", first)
	}
	arrival := f.TraceEvents[1]
	if arrival.Name != "arrival" || arrival.TS != 5000 || arrival.PID != 0 || arrival.TID != 0 {
		t.Errorf("arrival row wrong: %+v", arrival)
	}
	probe := f.TraceEvents[3]
	if probe.Name != "probe_batch" || probe.TID != 1 || probe.Args.Op != "Op1" {
		t.Errorf("probe row wrong: %+v", probe)
	}
	last := f.TraceEvents[len(f.TraceEvents)-1]
	if last.Name != "migration_start" || last.PID != 1 || last.Args.Note != "a -> b" {
		t.Errorf("migration row wrong: %+v", last)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if NumKinds.String() != "unknown" {
		t.Error("out-of-range kind must render unknown")
	}
}
