package obs

import (
	"fmt"
	"math"
	"math/bits"
)

// NumBuckets is the fixed log2 bucket count of a Histogram. Bucket i holds
// observations whose bit length is i: bucket 0 holds exactly 0, bucket i>0
// holds [2^(i-1), 2^i−1]. 64 buckets cover the full uint64 range, so a
// histogram never saturates or rescales — merges are plain field-wise sums.
const NumBuckets = 64

// Histogram is a fixed log-bucket histogram of non-negative integer
// observations (event-time latencies in ms, or wall latencies in ns). The
// zero value is ready to use; it is a plain value type, so copying one is a
// snapshot and merging is associative — per-shard histograms sum into the
// fleet view.
type Histogram struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= NumBuckets {
		i = NumBuckets - 1 // values ≥ 2^63 share the top bucket
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge adds other into h field-wise. The countersmerge analyzer
// (internal/lint) fails jitlint if a Histogram field is added without
// being referenced here; TestHistogramMergeSemantics keeps the semantics
// honest.
func (h *Histogram) Merge(other Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// BucketUpper returns the inclusive upper bound of bucket i — the value
// reported for quantiles landing in that bucket and the `le` edge of the
// Prometheus exposition.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (0 < q ≤ 1), or 0 for an empty histogram. Log-bucket resolution: the
// answer is exact to within a factor of 2.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum >= target {
			u := BucketUpper(i)
			if u > h.Max {
				u = h.Max
			}
			return u
		}
	}
	return h.Max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String summarizes the histogram for CLI output.
func (h Histogram) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50≤%d p90≤%d p99≤%d max=%d",
		h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max)
}
