package obs

import (
	"fmt"
	"io"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Prometheus text exposition (version 0.0.4) of tracer snapshots. Counter
// metric names are derived by reflection over metrics.Counters — a new
// counter field appears on the endpoint without any wiring here — and every
// series carries a `shard` label so sharded runs expose per-replica and
// (summed by the scraper) fleet views.

// snakeCase converts a Go field name to a metric-name fragment:
// "FinalResults" → "final_results", "MNSDetected" → "mns_detected" (an
// acronym run stays one word).
func snakeCase(name string) string {
	var b strings.Builder
	rs := []rune(name)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			prevLower := i > 0 && rs[i-1] >= 'a' && rs[i-1] <= 'z'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// counterFieldNames returns metrics.Counters' field names in struct order.
func counterFieldNames() []string {
	t := reflect.TypeOf(metrics.Counters{})
	names := make([]string, t.NumField())
	for i := range names {
		names[i] = t.Field(i).Name
	}
	return names
}

// WriteProm writes the snapshots as Prometheus text exposition. Families
// appear in a fixed order (counters in Counters struct order, then gauges,
// then the latency histograms); within a family, one sample per snapshot in
// the given order.
func WriteProm(w io.Writer, snaps []*Snapshot) {
	var live []*Snapshot
	for _, s := range snaps {
		if s != nil {
			live = append(live, s)
		}
	}
	fields := counterFieldNames()
	for i, f := range fields {
		name := "jit_" + snakeCase(f) + "_total"
		fmt.Fprintf(w, "# HELP %s Cumulative %s count from metrics.Counters.\n", name, f)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		for _, s := range live {
			v := reflect.ValueOf(s.Counters).Field(i).Uint()
			fmt.Fprintf(w, "%s{shard=%q} %d\n", name, s.Label, v)
		}
	}
	fmt.Fprintf(w, "# HELP jit_cost_units_total Weighted cost units (paper's unit-cost model).\n")
	fmt.Fprintf(w, "# TYPE jit_cost_units_total counter\n")
	for _, s := range live {
		fmt.Fprintf(w, "jit_cost_units_total{shard=%q} %d\n", s.Label, s.Counters.CostUnits())
	}
	gauges := []struct {
		name, help string
		val        func(*Snapshot) int64
	}{
		{"jit_live_bytes", "Accounted live state bytes.", func(s *Snapshot) int64 { return s.LiveBytes }},
		{"jit_peak_bytes", "Accounted peak state bytes.", func(s *Snapshot) int64 { return s.PeakBytes }},
		{"jit_clock_ms", "Engine event-time clock (stream ms).", func(s *Snapshot) int64 { return int64(s.Clock) }},
		{"jit_samples", "Time-series samples taken.", func(s *Snapshot) int64 { return int64(s.Samples) }},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, s := range live {
			fmt.Fprintf(w, "%s{shard=%q} %d\n", g.name, s.Label, g.val(s))
		}
	}
	writePromHist(w, "jit_latency_event_ms", "Arrival-to-delivery event-time latency (stream ms).",
		live, func(s *Snapshot) Histogram { return s.Latency })
	writePromHist(w, "jit_latency_wall_ns", "Arrival-to-delivery wall-clock latency twin (ns).",
		live, func(s *Snapshot) Histogram { return s.WallLat })
}

func writePromHist(w io.Writer, name, help string, snaps []*Snapshot, get func(*Snapshot) Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, s := range snaps {
		h := get(s)
		// Emit buckets up to the highest populated one; log-bucket upper
		// bounds as le edges, cumulative counts per the exposition format.
		top := 0
		for i, b := range h.Buckets {
			if b > 0 {
				top = i
			}
		}
		var cum uint64
		for i := 0; i <= top; i++ {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{shard=%q,le=\"%d\"} %d\n", name, s.Label, BucketUpper(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{shard=%q,le=\"+Inf\"} %d\n", name, s.Label, h.Count)
		fmt.Fprintf(w, "%s_sum{shard=%q} %d\n", name, s.Label, h.Sum)
		fmt.Fprintf(w, "%s_count{shard=%q} %d\n", name, s.Label, h.Count)
	}
}

// --- promtext grammar validation (for the endpoint unit test) ---

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseProm validates text exposition format 0.0.4: HELP/TYPE comment
// grammar, metric-name and label grammar, sample syntax, and that every
// sample belongs to a family declared by a preceding TYPE line (histogram
// families own their _bucket/_sum/_count children). Returns the parsed
// samples; any violation is an error naming the line.
func ParseProm(text string) ([]PromSample, error) {
	types := map[string]string{}
	var out []PromSample
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !promNameRe.MatchString(name) {
					return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = kind
			case "HELP":
				if len(fields) < 3 || !promNameRe.MatchString(fields[2]) {
					return nil, fmt.Errorf("line %d: malformed HELP comment %q", lineNo, line)
				}
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suf)
			if base != s.Name && (types[base] == "histogram" || types[base] == "summary") {
				family = base
				break
			}
		}
		kind, ok := types[family]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, s.Name)
		}
		if kind == "histogram" && family != s.Name && strings.HasSuffix(s.Name, "_bucket") {
			if _, ok := s.Labels["le"]; !ok {
				return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no samples in exposition")
	}
	return out, nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !promNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parsePromLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] after name, got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parsePromLabels(block string, into map[string]string) error {
	rest := block
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", block)
		}
		key := rest[:eq]
		if !promLabelRe.MatchString(key) {
			return fmt.Errorf("bad label name %q", key)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return fmt.Errorf("label value for %q not quoted", key)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for rest != "" {
			c := rest[0]
			if c == '\\' {
				if len(rest) < 2 {
					return fmt.Errorf("dangling escape in label value")
				}
				switch rest[1] {
				case '\\', '"':
					val.WriteByte(rest[1])
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label value", rest[1])
				}
				rest = rest[2:]
				continue
			}
			if c == '"' {
				closed = true
				rest = rest[1:]
				break
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		into[key] = val.String()
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("expected ',' between labels, got %q", rest)
			}
			rest = rest[1:]
		}
	}
	return nil
}

// PromFamilies returns the distinct family names in parsed samples
// (histogram children collapsed), sorted — a convenience for tests.
func PromFamilies(samples []PromSample) []string {
	set := map[string]bool{}
	for _, s := range samples {
		name := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		set[name] = true
	}
	var out []string
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
