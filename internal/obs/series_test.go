package obs

import (
	"testing"

	"repro/internal/metrics"
)

func TestSamplerGrid(t *testing.T) {
	ctr := &metrics.Counters{}
	var acct metrics.Account
	ops := uint64(0)
	s := NewSampler(10)
	s.Bind(ctr, &acct, []OpRef{{Name: "Op1", Stats: func() metrics.OpStats { return metrics.OpStats{Probes: ops} }}})

	// First tick anchors the grid on the absolute boundary after ts.
	if s.Tick(3) {
		t.Fatal("anchor tick must not sample")
	}
	ctr.Probes = 5
	ops = 2
	acct.Alloc(100)
	if !s.Tick(10) {
		t.Fatal("boundary 10 not taken")
	}
	ctr.Probes = 7
	// Jumping past several boundaries emits one sample per boundary — the
	// first carries the delta, the skipped ones are empty — keeping the grid
	// uniform for shard merging.
	if !s.Tick(35) {
		t.Fatal("boundaries 20,30 not taken")
	}
	s.Flush() // final partial interval stamped at the NEXT boundary (40)

	got := s.Samples()
	if len(got) != 4 {
		t.Fatalf("%d samples, want 4 (T=10,20,30,40)", len(got))
	}
	wantT := []int64{10, 20, 30, 40}
	wantProbes := []uint64{5, 2, 0, 0}
	for i, sm := range got {
		if int64(sm.T) != wantT[i] {
			t.Errorf("sample %d at T=%d, want %d", i, sm.T, wantT[i])
		}
		if sm.Counters.Probes != wantProbes[i] {
			t.Errorf("sample %d probes delta=%d, want %d", i, sm.Counters.Probes, wantProbes[i])
		}
		if sm.LiveBytes != 100 {
			t.Errorf("sample %d live=%d, want 100", i, sm.LiveBytes)
		}
	}
	if got[0].Ops[0].Stats.Probes != 2 || got[1].Ops[0].Stats.Probes != 0 {
		t.Error("per-op delta wrong")
	}
}

// TestSamplerRebind checks the migration-handoff semantics: the counter
// baseline is kept (the successor's Counters absorbed the predecessor's
// totals), while per-operator baselines reset (successor operators are
// fresh and old baselines would underflow).
func TestSamplerRebind(t *testing.T) {
	ctr := &metrics.Counters{}
	s := NewSampler(10)
	s.Bind(ctr, nil, nil)
	s.Tick(1) // anchor
	ctr.Probes = 4

	// Migration: successor counters absorbed the 4, plus 3 of its own work.
	ctr2 := &metrics.Counters{Probes: 7}
	opProbes := uint64(5) // fresh operator, already did 5 probes before next boundary
	s.Bind(ctr2, nil, []OpRef{{Name: "Op1'", Stats: func() metrics.OpStats { return metrics.OpStats{Probes: opProbes} }}})

	if !s.Tick(10) {
		t.Fatal("boundary not taken")
	}
	sm := s.Samples()[0]
	if sm.Counters.Probes != 7 {
		t.Errorf("rebind delta=%d, want 7 (baseline kept across migration)", sm.Counters.Probes)
	}
	// Op baseline reset at Bind time: delta counts only post-rebind work.
	if sm.Ops[0].Stats.Probes != 0 {
		t.Errorf("op delta=%d, want 0 (baseline reset at rebind)", sm.Ops[0].Stats.Probes)
	}
}

func TestNewSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dt<=0 must panic")
		}
	}()
	NewSampler(0)
}

func TestMergeSeries(t *testing.T) {
	a := []Sample{
		{T: 10, Counters: metrics.Counters{Probes: 1}, LiveBytes: 5, Ops: []OpSample{{Name: "Op1", Stats: metrics.OpStats{Probes: 1}}}},
		{T: 20, Counters: metrics.Counters{Probes: 2}, LiveBytes: 6},
	}
	b := []Sample{
		{T: 10, Counters: metrics.Counters{Probes: 10}, LiveBytes: 50, Ops: []OpSample{{Name: "Op1", Stats: metrics.OpStats{Probes: 10}}, {Name: "Op2", Stats: metrics.OpStats{Probes: 4}}}},
		{T: 30, Counters: metrics.Counters{Probes: 20}, LiveBytes: 60},
	}
	m := MergeSeries(a, b)
	if len(m) != 3 || m[0].T != 10 || m[1].T != 20 || m[2].T != 30 {
		t.Fatalf("merged grid wrong: %+v", m)
	}
	if m[0].Counters.Probes != 11 || m[0].LiveBytes != 55 {
		t.Errorf("T=10 not summed: %+v", m[0])
	}
	if len(m[0].Ops) != 2 || m[0].Ops[0].Stats.Probes != 11 || m[0].Ops[1].Name != "Op2" {
		t.Errorf("ops not merged by name: %+v", m[0].Ops)
	}
	if m[1].Counters.Probes != 2 || m[2].Counters.Probes != 20 {
		t.Error("union grid lost single-sided samples")
	}
}

// The former TestSampleMergePin (a reflection walk asserting MergeSeries
// names every Sample field) is retired: the countersmerge analyzer in
// internal/lint enforces that exhaustiveness statically on every jitlint
// run. TestMergeSeries above keeps the semantic half — that the merge
// actually sums, unions the grid and merges ops by name.

// TestTracerDeliveryLag pins the latency math on the nonzero path: a
// delivery whose result timestamp trails the event-time clock records the
// gap; a future-stamped result (cannot happen from the engine, but the
// clamp is load-bearing) records zero rather than wrapping.
func TestTracerDeliveryLag(t *testing.T) {
	tr := New(Options{})
	tr.Advance(100)
	tr.Delivery(40)  // recovered 60 ms after its event-time due date
	tr.Delivery(100) // live
	tr.Delivery(200) // future-stamped: clamped to zero, not wrapped
	h := tr.Latency()
	if h.Count != 3 || h.Max != 60 || h.Sum != 60 {
		t.Fatalf("latency histogram wrong: %+v", h)
	}
	if h.Buckets[0] != 2 {
		t.Errorf("%d live deliveries in bucket 0, want 2", h.Buckets[0])
	}
	if tr.WallLatency().Count != 0 {
		t.Error("wall twin must stay off unless requested")
	}

	wtr := New(Options{WallLatency: true})
	wtr.Advance(1)
	wtr.Delivery(1)
	if wtr.WallLatency().Count != 1 {
		t.Error("wall twin did not record")
	}
}

func TestSpark(t *testing.T) {
	if Spark(nil) != "" {
		t.Error("empty spark")
	}
	if got := Spark([]uint64{0, 0, 0}); got != "▁▁▁" {
		t.Errorf("all-zero spark = %q", got)
	}
	got := Spark([]uint64{0, 1, 4, 8})
	rs := []rune(got)
	if len(rs) != 4 || rs[0] != '▁' || rs[3] != '█' {
		t.Errorf("spark = %q", got)
	}
	// Ceiling scale: any nonzero value is visibly above the floor rune.
	if rs[1] == '▁' {
		t.Errorf("nonzero value rendered at floor: %q", got)
	}
}
