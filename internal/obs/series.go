package obs

import (
	"reflect"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stream"
)

// Sample is one interval of the deterministic time series: the plan-wide
// Counters delta over (T−Δt, T], the per-operator OpStats deltas, and the
// Account's live bytes at the boundary. T is an absolute stream-time grid
// point, never a wall-clock stamp.
type Sample struct {
	T         stream.Time
	Counters  metrics.Counters
	LiveBytes int64
	Ops       []OpSample
}

// OpSample is one operator's stat delta within a Sample (or, in a
// Snapshot, its running totals).
type OpSample struct {
	Name  string
	Stats metrics.OpStats
}

// Sampler snapshots the measurement substrate every Δt of stream time. The
// determinism rules (DESIGN.md §9):
//
//   - Boundaries lie on the absolute grid k·Δt, anchored at stream time 0 —
//     not at the first arrival — so per-shard series from the same run
//     align bucket-for-bucket and MergeSeries can sum them.
//   - A boundary fires when the clock first reaches or passes it, BEFORE
//     the crossing arrival is processed: the sample covers exactly the
//     activity with ts < boundary. Skipped-over boundaries emit empty
//     samples, keeping the grid uniform.
//   - Flush stamps the final partial interval at the NEXT grid boundary
//     (ceiling), again so shards agree on the last bucket.
type Sampler struct {
	dt      stream.Time
	next    stream.Time
	started bool
	bound   bool

	ctr  *metrics.Counters
	acct *metrics.Account
	ops  []OpRef

	prev    metrics.Counters
	prevOps []metrics.OpStats
	samples []Sample
}

// NewSampler creates a sampler with stream-time interval dt (must be > 0).
func NewSampler(dt stream.Time) *Sampler {
	if dt <= 0 {
		panic("obs: sampler interval must be positive stream time")
	}
	return &Sampler{dt: dt}
}

// Bind attaches (or re-attaches) the substrate. On first bind the counter
// baseline is the counters' current value; on rebind — a migration handed
// the clock to a successor plan — the baseline is kept, because the
// successor's Counters absorbed the predecessor's totals and resetting
// would double-count the pre-migration work. Per-operator baselines always
// reset: the successor's operators are fresh (zero stats), and their
// OpStats deltas would underflow against the old plan's totals.
func (s *Sampler) Bind(ctr *metrics.Counters, acct *metrics.Account, ops []OpRef) {
	rebind := s.bound
	s.ctr, s.acct, s.ops = ctr, acct, ops
	s.bound = true
	if !rebind {
		s.prev = *ctr
	}
	s.prevOps = make([]metrics.OpStats, len(ops))
	for i, o := range ops {
		s.prevOps[i] = o.Stats()
	}
}

// Tick advances the sampler clock; it takes one sample per grid boundary in
// (prevTick, ts] and reports whether any was taken. The first tick only
// anchors the grid (the stream's activity starts there; an interval before
// it would be vacuous).
func (s *Sampler) Tick(ts stream.Time) bool {
	if s.ctr == nil {
		return false
	}
	if !s.started {
		s.started = true
		s.next = (ts/s.dt + 1) * s.dt
		return false
	}
	took := false
	for ts >= s.next {
		s.take(s.next)
		s.next += s.dt
		took = true
	}
	return took
}

// Flush records the final partial interval, stamped at the next grid
// boundary. Idempotent per boundary only in the sense that repeated flushes
// stamp successive boundaries; the engine calls it exactly once.
func (s *Sampler) Flush() bool {
	if s.ctr == nil || !s.started {
		return false
	}
	s.take(s.next)
	s.next += s.dt
	return true
}

func (s *Sampler) take(at stream.Time) {
	sm := Sample{T: at, Counters: counterDelta(*s.ctr, s.prev)}
	s.prev = *s.ctr
	if s.acct != nil {
		sm.LiveBytes = s.acct.Live()
	}
	for i, o := range s.ops {
		cur := o.Stats()
		sm.Ops = append(sm.Ops, OpSample{Name: o.Name, Stats: cur.Delta(s.prevOps[i])})
		s.prevOps[i] = cur
	}
	s.samples = append(s.samples, sm)
}

// Samples returns the series so far.
func (s *Sampler) Samples() []Sample { return s.samples }

// counterDelta returns cur − prev field-wise, by reflection so a new
// Counters field is included automatically (and pinned by the metrics
// reflection test).
func counterDelta(cur, prev metrics.Counters) metrics.Counters {
	var out metrics.Counters
	ov := reflect.ValueOf(&out).Elem()
	cv := reflect.ValueOf(cur)
	pv := reflect.ValueOf(prev)
	for i := 0; i < cv.NumField(); i++ {
		ov.Field(i).SetUint(cv.Field(i).Uint() - pv.Field(i).Uint())
	}
	return out
}

// MergeSeries sums per-shard series onto the union of their grids: samples
// with equal T add field-wise (Counters via Add, live bytes and op deltas
// by name). Because every sampler uses the same absolute grid, equal-Δt
// shard series line up exactly; the union handles shards that finished on
// different final boundaries. The reflection pin covers Sample's fields so
// an unmerged addition fails loudly.
func MergeSeries(series ...[]Sample) []Sample {
	byT := map[stream.Time]*Sample{}
	var ts []stream.Time
	for _, sr := range series {
		for _, sm := range sr {
			dst, ok := byT[sm.T]
			if !ok {
				cp := Sample{T: sm.T}
				byT[sm.T] = &cp
				ts = append(ts, sm.T)
				dst = &cp
			}
			dst.Counters.Add(&sm.Counters)
			dst.LiveBytes += sm.LiveBytes
			for _, op := range sm.Ops {
				found := false
				for i := range dst.Ops {
					if dst.Ops[i].Name == op.Name {
						dst.Ops[i].Stats.Add(op.Stats)
						found = true
						break
					}
				}
				if !found {
					dst.Ops = append(dst.Ops, op)
				}
			}
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]Sample, 0, len(ts))
	for _, t := range ts {
		out = append(out, *byT[t])
	}
	return out
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders a unicode sparkline of the values, scaled to their maximum
// ("" for an empty slice; all-▁ for all-zero). Used by the jitreport
// behaviour-over-time appendix and the README's ASCII trace example.
func Spark(vals []uint64) string {
	if len(vals) == 0 {
		return ""
	}
	var max uint64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			// Ceiling scale: any nonzero value gets at least one step above ▁.
			i = int((v*uint64(len(sparkRunes)-1) + max - 1) / max)
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}
