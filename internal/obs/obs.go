// Package obs is the in-flight observability substrate (DESIGN.md §9): typed
// trace events, deterministic event-time sampling, latency histograms and the
// snapshot surface the live ops endpoint serves.
//
// The package is built around one discipline: observation never participates
// in execution. A nil *Tracer is the disabled state — every method nil-checks
// its receiver and the instrumented call sites compile down to a pointer
// test — and an attached tracer only ever *reads* the measurement substrate
// (metrics.Counters, metrics.Account, core.JoinOp.Stats); it never writes any
// quantity the engine measures. The transparency test in this package pins
// that byte-identical Counters come out of traced and untraced runs, and the
// root-level BenchmarkObs records the residual per-arrival overhead.
//
// Determinism: every event and every sample is stamped with *stream* time,
// never wall time, so trace files and sampled series are golden-testable and
// shard-mergeable. The only wall-clock quantity anywhere is the optional
// wall-latency twin histogram, which exists exactly because event time cannot
// measure host scheduling cost — it is kept out of every deterministic
// artifact.
package obs

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
)

// atomicSnapshot is the lock-free publication slot: the engine goroutine
// stores, HTTP handlers load.
type atomicSnapshot = atomic.Pointer[Snapshot]

// Kind identifies a trace event type — the event taxonomy of DESIGN.md §9.
type Kind uint8

// The event taxonomy. Engine-level events (arrival, watermark, late drop)
// carry no operator name; operator-level events (probe batch, MNS detect,
// suspend, resume, feedback) name their JoinOp; control-plane events (epoch,
// migration start/cut/done) come from the adaptive re-optimizer.
const (
	// KindArrival is one base-tuple ingestion: TS is the tuple's timestamp,
	// Value its global ID, Aux its source.
	KindArrival Kind = iota
	// KindProbeBatch is one state probe: Value is the opposite state's length
	// at probe start (the scan bound), Aux the probing input's sequence.
	KindProbeBatch
	// KindMNSDetect is one Identify_MNS report: Value is the number of MNSs
	// detected on the input.
	KindMNSDetect
	// KindSuspend is tuples moving into a blacklist: Value is the count.
	KindSuspend
	// KindResume is tuples reactivating out of a blacklist: Value is the count.
	KindResume
	// KindFeedback is one feedback message received by a producer: Note is
	// the command ("suspend", "resume", "mark", "unmark"), Value the MNS count.
	KindFeedback
	// KindWatermark is a disorder-watermark advance: TS is the new watermark
	// (max ingested timestamp minus the bound; can be negative early on).
	KindWatermark
	// KindLateDrop is a tuple dropped behind the watermark: TS is the late
	// tuple's timestamp, Value its ID, Aux the watermark that rejected it.
	KindLateDrop
	// KindEpoch is an adaptive decision-epoch boundary: Value is the epoch's
	// observed cost-unit delta.
	KindEpoch
	// KindMigrationStart opens a plan migration at the cut; Note is
	// "from -> to" in canonical shape notation.
	KindMigrationStart
	// KindMigrationCut marks the quiescent snapshot taken: Value is the
	// number of in-window base tuples snapshotted.
	KindMigrationCut
	// KindMigrationDone closes the handoff after replay: Value is the total
	// duplicate deliveries the dedup tap has absorbed so far.
	KindMigrationDone

	// NumKinds bounds the taxonomy (for counting sinks and kind masks).
	NumKinds
)

var kindNames = [NumKinds]string{
	"arrival", "probe_batch", "mns_detect", "suspend", "resume", "feedback",
	"watermark", "late_drop", "epoch", "migration_start", "migration_cut",
	"migration_done",
}

// String returns the stable snake_case name of the kind — the identifier
// used in Chrome traces, the NDJSON /trace stream and test assertions.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one typed trace event. TS is always event (stream) time; Shard is
// stamped by the emitting tracer; the meaning of Value/Aux/Note is per Kind
// (see the Kind constants).
type Event struct {
	Kind  Kind
	TS    stream.Time
	Op    string
	Shard int
	Value uint64
	Aux   int64
	Note  string
}

// Sink receives trace events. Implementations used from a single engine
// goroutine (CountingSink, MemorySink) need no locking; RingSink is locked
// because the live /trace endpoint reads it concurrently.
type Sink interface {
	Emit(Event)
}

// CountingSink counts events per kind — the cheapest non-nil sink, used by
// the conservation tests (e.g. Counters.LateDropped == late-drop events) and
// the overhead benchmark.
type CountingSink struct {
	Counts [NumKinds]uint64
}

// Emit implements Sink.
func (s *CountingSink) Emit(e Event) { s.Counts[e.Kind]++ }

// Count returns the number of events of one kind seen.
func (s *CountingSink) Count(k Kind) uint64 { return s.Counts[k] }

// Total returns the number of events seen across all kinds.
func (s *CountingSink) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// MemorySink retains every event (optionally kind-filtered) in emission
// order. Unlocked: read it only after the emitting run has finished — the
// Chrome-trace exporters and golden tests do; the live /trace endpoint uses
// RingSink instead.
type MemorySink struct {
	// Mask, when non-zero, keeps only kinds whose bit (1 << Kind) is set —
	// MaskOf builds one. Zero keeps everything.
	Mask   uint64
	events []Event
}

// Emit implements Sink.
func (m *MemorySink) Emit(e Event) {
	if m.Mask != 0 && m.Mask&(1<<e.Kind) == 0 {
		return
	}
	m.events = append(m.events, e)
}

// Events returns the retained events in emission order.
func (m *MemorySink) Events() []Event { return m.events }

// MaskOf builds a MemorySink kind mask keeping exactly the given kinds.
func MaskOf(kinds ...Kind) uint64 {
	var m uint64
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// TeeSink fans one event stream out to several sinks.
type TeeSink []Sink

// Emit implements Sink.
func (t TeeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// TraceEvents implements the /trace source lookup across the tee: the first
// branch that can serve a concurrent-safe event snapshot wins.
func (t TeeSink) TraceEvents() ([]Event, bool) {
	for _, s := range t {
		if es, ok := s.(EventSource); ok {
			if evs, ok := es.TraceEvents(); ok {
				return evs, true
			}
		}
	}
	return nil, false
}

// EventSource is the optional sink capability the live /trace endpoint
// needs: a snapshot of retained events that is safe to take while the engine
// is still emitting. RingSink implements it; MemorySink deliberately does
// not (it is unlocked).
type EventSource interface {
	TraceEvents() ([]Event, bool)
}

// OpRef lets the sampler read one operator's per-operator stats without obs
// importing the operator packages: plan.Built.SetTrace constructs these from
// its JoinOps.
type OpRef struct {
	Name  string
	Stats func() metrics.OpStats
}

// Options configures a Tracer.
type Options struct {
	// Sink receives the typed trace events; nil disables event emission
	// (sampling and latency accounting still run).
	Sink Sink
	// SampleEvery, when positive, attaches an event-time sampler with this
	// stream-time interval (DESIGN.md §9 determinism rules). Zero disables
	// sampling — and with it the live endpoint's periodic snapshots.
	SampleEvery stream.Time
	// WallLatency additionally records the wall-clock latency twin histogram.
	// Wall time never enters any deterministic artifact; the twin exists for
	// live operation only.
	WallLatency bool
	// Shard stamps every event and snapshot; single-engine runs use 0.
	Shard int
	// Label names the tracer on the ops endpoint ("shard0"); empty means
	// "shard<N>".
	Label string
}

// Tracer is the per-engine observation hub: it owns the clock, the sampler,
// the latency histograms and the published snapshot. All methods are safe on
// a nil receiver — a nil *Tracer IS the disabled observability layer, and
// the instrumented call sites in core/engine/operator/adapt rely on that.
//
// A tracer is single-goroutine like the engine that drives it; the only
// cross-goroutine surface is the atomically published *Snapshot (and a
// RingSink, which locks itself). Sharded runs use one tracer per replica.
type Tracer struct {
	sink    Sink
	shard   int
	label   string
	now     stream.Time
	wallOn  bool
	wallAt  time.Time
	sampler *Sampler
	lat     Histogram
	latWall Histogram

	ctr  *metrics.Counters
	acct *metrics.Account
	ops  []OpRef

	snap atomicSnapshot
}

// New creates a tracer. A nil *Tracer (not New of empty options) is the
// disabled state; New always returns an active tracer.
func New(o Options) *Tracer {
	t := &Tracer{sink: o.Sink, shard: o.Shard, label: o.Label, wallOn: o.WallLatency}
	if o.SampleEvery > 0 {
		t.sampler = NewSampler(o.SampleEvery)
	}
	return t
}

// Bind points the tracer at a plan's measurement substrate — the shared
// Counters, the Account and the per-operator stat readers. plan.Built.
// SetTrace calls it at attach time and again at each migration handoff (the
// successor plan carries fresh operators but absorbed counter totals, so the
// sampler keeps its counter baseline across the rebind).
func (t *Tracer) Bind(ctr *metrics.Counters, acct *metrics.Account, ops []OpRef) {
	if t == nil {
		return
	}
	t.ctr, t.acct, t.ops = ctr, acct, ops
	if t.sampler != nil {
		t.sampler.Bind(ctr, acct, ops)
	}
}

// Advance moves the event-time clock forward (never backward) and fires any
// sampler boundaries crossed, publishing a fresh snapshot when one was. The
// engine calls it once per arrival and once per drained deadline.
func (t *Tracer) Advance(ts stream.Time) {
	if t == nil {
		return
	}
	if ts > t.now {
		t.now = ts
	}
	if t.wallOn {
		t.wallAt = time.Now() //jitlint:allow wallclock the opt-in wall-latency twin exists to measure host scheduling; it never enters a deterministic artifact (package doc)
	}
	if t.sampler != nil && t.sampler.Tick(t.now) {
		t.publish()
	}
}

// Now returns the tracer's event-time clock.
func (t *Tracer) Now() stream.Time {
	if t == nil {
		return 0
	}
	return t.now
}

// Finish closes the run: the sampler flushes its final partial interval
// (stamped at the next grid boundary, so per-shard series stay aligned) and
// the final snapshot is published.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	if t.sampler != nil {
		t.sampler.Flush()
	}
	t.publish()
}

// Shard returns the tracer's shard stamp.
func (t *Tracer) Shard() int {
	if t == nil {
		return 0
	}
	return t.shard
}

// emit stamps and forwards one event. Callers must have nil-checked t.
func (t *Tracer) emit(e Event) {
	e.Shard = t.shard
	t.sink.Emit(e)
}

// Arrival records one base-tuple ingestion.
func (t *Tracer) Arrival(tp *stream.Tuple) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindArrival, TS: tp.TS, Value: tp.ID, Aux: int64(tp.Source)})
}

// Probe records one state probe at an operator: stateLen is the opposite
// state's length at probe start (the scan bound), seq the probing input's
// sequence number.
func (t *Tracer) Probe(op string, stateLen int, seq uint64) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindProbeBatch, TS: t.now, Op: op, Value: uint64(stateLen), Aux: int64(seq)})
}

// MNS records an Identify_MNS report of n MNSs at an operator.
func (t *Tracer) MNS(op string, n int) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindMNSDetect, TS: t.now, Op: op, Value: uint64(n)})
}

// Suspend records n tuples moving into an operator's blacklist.
func (t *Tracer) Suspend(op string, n int) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindSuspend, TS: t.now, Op: op, Value: uint64(n)})
}

// Resume records n tuples reactivating out of an operator's blacklist.
func (t *Tracer) Resume(op string, n int) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindResume, TS: t.now, Op: op, Value: uint64(n)})
}

// Feedback records one feedback message received by a producer operator.
func (t *Tracer) Feedback(op, cmd string, mnsCount int) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindFeedback, TS: t.now, Op: op, Value: uint64(mnsCount), Note: cmd})
}

// Watermark records a disorder-watermark advance to wm.
func (t *Tracer) Watermark(wm stream.Time) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindWatermark, TS: wm})
}

// LateDrop records a tuple dropped behind watermark wm.
func (t *Tracer) LateDrop(tp *stream.Tuple, wm stream.Time) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindLateDrop, TS: tp.TS, Value: tp.ID, Aux: int64(wm)})
}

// Epoch records an adaptive decision-epoch boundary with its observed
// cost-unit delta.
func (t *Tracer) Epoch(ts stream.Time, observed uint64) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindEpoch, TS: ts, Value: observed})
}

// MigrationStart records a migration opening at the cut.
func (t *Tracer) MigrationStart(cut stream.Time, note string) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindMigrationStart, TS: cut, Note: note})
}

// MigrationCut records the quiescent snapshot taken (replayed tuples).
func (t *Tracer) MigrationCut(cut stream.Time, snapshotted int, note string) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindMigrationCut, TS: cut, Value: uint64(snapshotted), Note: note})
}

// MigrationDone records the handoff completed (total dedup absorptions).
func (t *Tracer) MigrationDone(cut stream.Time, dups uint64, note string) {
	if t == nil || t.sink == nil {
		return
	}
	t.emit(Event{Kind: KindMigrationDone, TS: cut, Value: dups, Note: note})
}

// Delivery records one final result reaching the sink: the event-time
// arrival→delivery latency is the clock minus the result's timestamp (zero
// for live deliveries; positive for drain/exact-mode recoveries, the
// delivery cost PRs 2/6 fought blind). The wall twin, when enabled, measures
// from the last clock advance.
func (t *Tracer) Delivery(resultTS stream.Time) {
	if t == nil {
		return
	}
	lat := t.now - resultTS
	if lat < 0 {
		lat = 0
	}
	t.lat.Observe(uint64(lat))
	if t.wallOn {
		t.latWall.Observe(uint64(time.Since(t.wallAt))) //jitlint:allow wallclock the opt-in wall-latency twin exists to measure host scheduling; it never enters a deterministic artifact (package doc)
	}
}

// Latency returns the event-time arrival→delivery histogram (milliseconds).
func (t *Tracer) Latency() Histogram {
	if t == nil {
		return Histogram{}
	}
	return t.lat
}

// WallLatency returns the wall-clock twin histogram (nanoseconds); empty
// unless Options.WallLatency was set.
func (t *Tracer) WallLatency() Histogram {
	if t == nil {
		return Histogram{}
	}
	return t.latWall
}

// Samples returns the sampled series so far (nil without a sampler). Read it
// only from the engine goroutine or after the run; concurrent readers use
// Snapshot.
func (t *Tracer) Samples() []Sample {
	if t == nil || t.sampler == nil {
		return nil
	}
	return t.sampler.Samples()
}

// TraceEvents returns a concurrency-safe snapshot of retained events when
// the sink supports it (RingSink, or a TeeSink containing one).
func (t *Tracer) TraceEvents() ([]Event, bool) {
	if t == nil {
		return nil, false
	}
	if es, ok := t.sink.(EventSource); ok {
		return es.TraceEvents()
	}
	return nil, false
}

// Snapshot is the atomically published cross-goroutine view of one tracer —
// what the ops endpoint serves. All fields are copies; readers never touch
// engine-mutated state.
type Snapshot struct {
	Label     string
	Shard     int
	Clock     stream.Time
	Counters  metrics.Counters
	LiveBytes int64
	PeakBytes int64
	Samples   int
	Latency   Histogram
	WallLat   Histogram
	Ops       []OpSample
}

// Snapshot returns the last published snapshot, or nil before the first
// sampler boundary (or Finish).
func (t *Tracer) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	return t.snap.Load()
}

// publish copies the current substrate into a fresh Snapshot and stores it
// atomically. Runs on the engine goroutine.
func (t *Tracer) publish() {
	s := &Snapshot{
		Label:   t.label,
		Shard:   t.shard,
		Clock:   t.now,
		Latency: t.lat,
		WallLat: t.latWall,
	}
	if s.Label == "" {
		s.Label = "shard" + itoa(t.shard)
	}
	if t.ctr != nil {
		s.Counters = *t.ctr
	}
	if t.acct != nil {
		s.LiveBytes = t.acct.Live()
		s.PeakBytes = t.acct.Peak()
	}
	if t.sampler != nil {
		s.Samples = len(t.sampler.Samples())
	}
	for _, o := range t.ops {
		s.Ops = append(s.Ops, OpSample{Name: o.Name, Stats: o.Stats()})
	}
	t.snap.Store(s)
}

// itoa avoids strconv in the hot publish path's import set creeping; tiny
// non-negative integer formatting.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
