package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

var update = flag.Bool("update", false, "rewrite golden files")

var allModes = []struct {
	name string
	mode core.Mode
}{
	{"JIT", core.JIT()},
	{"REF", core.REF()},
	{"DOE", core.DOE()},
	{"Bloom", core.BloomJIT()},
}

// TestTracingTransparency is the tentpole's core contract: attaching a
// tracer — events, sampler and latency accounting all on — changes NOTHING
// the engine measures. Byte-identical Counters in all four modes, on both
// the plain drained path and the disordered path (which exercises the
// watermark/late-drop instrumentation).
func TestTracingTransparency(t *testing.T) {
	cat, conj := predicate.Clique(4)
	cfg := source.UniformConfig(4, 4.0, 60, 2*stream.Minute, 1)
	inOrder := source.Generate(cat, cfg)
	cfg.Disorder = 20 * stream.Second
	perturbed := source.Generate(cat, cfg)

	build := func(mode core.Mode) *plan.Built {
		return plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
			Window: stream.Minute, Mode: mode,
		})
	}
	variants := []struct {
		name     string
		arrivals []*stream.Tuple
		opts     engine.Options
	}{
		{"drained", inOrder, engine.Options{Drain: true}},
		{"disordered", perturbed, engine.Options{Drain: true, Disorder: 2 * stream.Second}},
	}
	for _, m := range allModes {
		for _, v := range variants {
			t.Run(m.name+"/"+v.name, func(t *testing.T) {
				plain := build(m.mode)
				want := engine.NewWithOptions(plain, v.opts).Run(v.arrivals)

				traced := build(m.mode)
				var sink obs.CountingSink
				tr := obs.New(obs.Options{Sink: &sink, SampleEvery: 10 * stream.Second})
				traced.SetTrace(tr)
				got := engine.NewWithOptions(traced, v.opts).Run(v.arrivals)

				if got.Counters != want.Counters {
					t.Fatalf("tracing perturbed the counters:\n  traced: %s\n  plain:  %s",
						got.Counters.String(), want.Counters.String())
				}
				if got.Results != want.Results || got.CostUnits != want.CostUnits {
					t.Fatalf("tracing perturbed results/cost: %d/%d vs %d/%d",
						got.Results, got.CostUnits, want.Results, want.CostUnits)
				}
				if sink.Total() == 0 {
					t.Fatal("tracer emitted nothing — the transparency check has no teeth")
				}
				// The event stream must conserve against the counters it mirrors.
				if sink.Count(obs.KindArrival) != uint64(got.Arrivals) {
					t.Errorf("arrival events %d != arrivals %d", sink.Count(obs.KindArrival), got.Arrivals)
				}
				if sink.Count(obs.KindLateDrop) != got.Counters.LateDropped {
					t.Errorf("late-drop events %d != LateDropped %d", sink.Count(obs.KindLateDrop), got.Counters.LateDropped)
				}
				if sink.Count(obs.KindProbeBatch) != got.Counters.Probes {
					t.Errorf("probe events %d != Probes %d", sink.Count(obs.KindProbeBatch), got.Counters.Probes)
				}
				if sink.Count(obs.KindMNSDetect) == 0 != (got.Counters.MNSDetected == 0) {
					t.Errorf("MNS events/counter disagree on zero-ness")
				}
				if len(tr.Samples()) == 0 {
					t.Error("sampler took no samples")
				}
			})
		}
	}
}

// TestDeliveryLatency checks the latency accounting end to end: the
// histogram must see exactly one observation per final result, and an
// in-order drained run must measure them all as LIVE deliveries (zero
// event-time lag — a final is emitted at the very arrival that completes
// it, JIT's suspension notwithstanding). The nonzero path — a delivery
// after the clock moved past the result's timestamp — is pinned at the
// unit level in TestTracerDeliveryLag.
func TestDeliveryLatency(t *testing.T) {
	cat, conj := predicate.Clique(3)
	cfg := source.UniformConfig(3, 4.0, 20, 2*stream.Minute, 1)
	b := plan.BuildTree(cat, conj, plan.Bushy(3), plan.Options{
		Window: stream.Minute, Mode: core.JIT(),
	})
	tr := obs.New(obs.Options{})
	b.SetTrace(tr)
	r := engine.NewWithOptions(b, engine.Options{Drain: true}).Run(source.Generate(cat, cfg))
	if r.Results == 0 {
		t.Fatal("workload delivered no finals — latency test has no teeth")
	}
	h := tr.Latency()
	if h.Count != uint64(r.Results) {
		t.Fatalf("latency observations %d != final results %d", h.Count, r.Results)
	}
	if h.Max != 0 || h.Buckets[0] != h.Count {
		t.Errorf("in-order drained run must deliver every final live: max=%d, %d/%d in bucket 0",
			h.Max, h.Buckets[0], h.Count)
	}
}

// TestChromeMigrationGolden is the acceptance criterion's trace check: a
// forced bushy→left-deep migration exports Chrome-trace JSON in which the
// migration start/cut/done triple sits between epoch-boundary events, and
// the bytes match the committed golden (the determinism proof —
// regenerate with `go test ./internal/obs -run ChromeMigration -update`).
func TestChromeMigrationGolden(t *testing.T) {
	cat, conj := predicate.Clique(4)
	cfg := source.UniformConfig(4, 3.0, 30, 225*stream.Second+1, 1)
	b := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
		Window: 90 * stream.Second, Mode: core.JIT(),
	})
	mem := &obs.MemorySink{Mask: obs.MaskOf(
		obs.KindEpoch, obs.KindMigrationStart, obs.KindMigrationCut, obs.KindMigrationDone)}
	b.SetTrace(obs.New(obs.Options{Sink: mem}))
	ctrl := adapt.New(adapt.Config{
		Epoch:   30 * stream.Second,
		Margin:  1e9, // policy can never win — only the forced migration fires
		ForceAt: 112 * stream.Second,
		ForceTo: plan.LeftDeep(4),
	})
	r := engine.NewWithOptions(b, engine.Options{Drain: true, Reopt: ctrl}).Run(source.Generate(cat, cfg))
	if r.Counters.Migrations != 1 {
		t.Fatalf("%d migrations, want exactly the forced one", r.Counters.Migrations)
	}

	// Structural check: one start→cut→done run, epochs on both sides.
	events := mem.Events()
	idx := map[obs.Kind][]int{}
	for i, e := range events {
		idx[e.Kind] = append(idx[e.Kind], i)
	}
	for _, k := range []obs.Kind{obs.KindMigrationStart, obs.KindMigrationCut, obs.KindMigrationDone} {
		if len(idx[k]) != 1 {
			t.Fatalf("%d %s events, want 1", len(idx[k]), k)
		}
	}
	start, cut, done := idx[obs.KindMigrationStart][0], idx[obs.KindMigrationCut][0], idx[obs.KindMigrationDone][0]
	if !(start < cut && cut < done) {
		t.Fatalf("migration events out of order: start=%d cut=%d done=%d", start, cut, done)
	}
	epochs := idx[obs.KindEpoch]
	if len(epochs) < 2 {
		t.Fatalf("%d epoch events — need boundaries on both sides of the migration", len(epochs))
	}
	if first, last := epochs[0], epochs[len(epochs)-1]; !(first < start && done < last) {
		t.Fatalf("migration triple not bracketed by epochs: epoch[%d..%d], start=%d done=%d",
			first, last, start, done)
	}

	golden := filepath.Join("testdata", "migration_trace.golden")
	got := obs.ChromeTrace(events)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chrome trace diverged from golden (%d vs %d bytes); if the event\n"+
			"taxonomy or workload changed intentionally, regenerate with -update", len(got), len(want))
	}
}
