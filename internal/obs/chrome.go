package obs

import (
	"bytes"
	"encoding/json"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// Format" with an object wrapper), as consumed by chrome://tracing and
// Perfetto. Fields marshal in struct order, so the exported bytes are
// deterministic and golden-testable.
type chromeEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	TS   int64      `json:"ts"` // microseconds
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	S    string     `json:"s,omitempty"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Op    string `json:"op,omitempty"`
	Value uint64 `json:"value"`
	Aux   int64  `json:"aux,omitempty"`
	Note  string `json:"note,omitempty"`
	Name  string `json:"name,omitempty"` // thread_name metadata payload
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders events as Chrome-trace-format JSON: every event
// becomes a thread-scoped instant (ph "i"), with pid = shard and tid = a
// per-operator lane (lane 0 is the engine itself — arrivals, watermarks,
// migrations), plus thread_name metadata so Perfetto labels the lanes.
// Stream milliseconds map to trace microseconds (×1000) so a 1 ms stream
// tick renders at civilized zoom. Output is deterministic: lane numbers
// follow first appearance, JSON field order is fixed by the structs.
func ChromeTrace(events []Event) []byte {
	lanes := map[string]int{"": 0}
	laneOrder := []string{""}
	lane := func(op string) int {
		if id, ok := lanes[op]; ok {
			return id
		}
		id := len(laneOrder)
		lanes[op] = id
		laneOrder = append(laneOrder, op)
		return id
	}
	type pidTid struct {
		pid, tid int
	}
	named := map[pidTid]bool{}
	var out chromeFile
	out.DisplayTimeUnit = "ms"
	for _, e := range events {
		tid := lane(e.Op)
		if k := (pidTid{e.Shard, tid}); !named[k] {
			named[k] = true
			label := e.Op
			if label == "" {
				label = "engine"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: e.Shard, TID: tid,
				Args: chromeArgs{Name: label},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Kind.String(),
			Ph:   "i",
			TS:   int64(e.TS) * 1000,
			PID:  e.Shard,
			TID:  tid,
			S:    "t",
			Args: chromeArgs{Op: e.Op, Value: e.Value, Aux: e.Aux, Note: e.Note},
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		// The structs contain only marshalable field types; unreachable.
		panic("obs: chrome trace encode: " + err.Error())
	}
	return buf.Bytes()
}
