package obs

import (
	"math"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0) // bucket 0: exactly zero
	h.Observe(1) // bucket 1: [1,1]
	h.Observe(2) // bucket 2: [2,3]
	h.Observe(3)
	h.Observe(4)              // bucket 3: [4,7]
	h.Observe(1 << 62)        // bucket 63 (bit length 63)
	h.Observe(math.MaxUint64) // bit length 64 → clamped into the top bucket
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 63: 2} {
		if h.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.Buckets[i], want)
		}
	}
	if h.Count != 7 {
		t.Errorf("count=%d, want 7", h.Count)
	}
	if h.Max != math.MaxUint64 {
		t.Errorf("max=%d", h.Max)
	}
}

func TestHistogramQuantileMean(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	// p50 of 1..100 lands in bucket 6 ([32,63]); upper bound 63.
	if got := h.Quantile(0.50); got != 63 {
		t.Errorf("p50=%d, want 63", got)
	}
	// p99 lands in bucket 7 ([64,127]); upper bound clamped by Max=100.
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99=%d, want 100 (bucket upper clamped by max)", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("mean=%g, want 50.5", got)
	}
	if h.String() == "" || (Histogram{}).String() != "n=0" {
		t.Error("String rendering wrong")
	}
}

// TestHistogramMergeSemantics checks that Merge sums counts, sums and
// buckets and takes the max of maxima. Its former structural half — a
// reflection walk asserting Merge names every Histogram field — is retired:
// the countersmerge analyzer in internal/lint enforces that statically.
func TestHistogramMergeSemantics(t *testing.T) {
	var a, b Histogram
	a.Observe(3)
	a.Observe(100)
	b.Observe(7)
	b.Observe(200)
	merged := a
	merged.Merge(b)
	if merged.Count != 4 || merged.Sum != 310 || merged.Max != 200 {
		t.Fatalf("merge totals wrong: %+v", merged)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != a.Buckets[i]+b.Buckets[i] {
			t.Fatalf("bucket %d not summed", i)
		}
	}
}

func TestBucketUpper(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: math.MaxUint64}
	for i, want := range cases {
		if got := BucketUpper(i); got != want {
			t.Errorf("BucketUpper(%d)=%d, want %d", i, got, want)
		}
	}
}
