package metrics

import (
	"reflect"
	"testing"
)

func TestAccountPeak(t *testing.T) {
	var a Account
	a.Alloc(100)
	a.Alloc(50)
	a.Free(120)
	a.Alloc(10)
	if a.Live() != 40 {
		t.Fatalf("live=%d", a.Live())
	}
	if a.Peak() != 150 {
		t.Fatalf("peak=%d", a.Peak())
	}
	if a.PeakKB() != 150.0/1024 {
		t.Fatal("PeakKB wrong")
	}
	a.Reset()
	if a.Live() != 0 || a.Peak() != 0 {
		t.Fatal("reset failed")
	}
}

func TestAccountNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-free must panic")
		}
	}()
	var a Account
	a.Alloc(10)
	a.Free(11)
}

// TestCountersAddCoversEveryField walks the Counters struct by reflection
// and asserts Add accumulates every field with distinct values, so a
// swapped or mis-scaled assignment can't cancel out. The *exhaustiveness*
// half of this contract (Add must reference every field at all) is also
// enforced statically by the countersmerge analyzer in internal/lint; this
// test keeps the merge semantics — that the sums actually sum.
func TestCountersAddCoversEveryField(t *testing.T) {
	var src, dst Counters
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("field %s is %s; Add and this test assume uint64 counters",
				sv.Type().Field(i).Name, f.Kind())
		}
		// Distinct per-field values so a swapped assignment can't cancel out.
		f.SetUint(uint64(i + 1))
	}
	dst.Add(&src)
	dst.Add(&src)
	dv := reflect.ValueOf(&dst).Elem()
	for i := 0; i < dv.NumField(); i++ {
		if got, want := dv.Field(i).Uint(), uint64(2*(i+1)); got != want {
			t.Errorf("Add dropped or miscounted field %s: got %d, want %d",
				dv.Type().Field(i).Name, got, want)
		}
	}
}

// TestOpStatsAddCoversEveryField is the OpStats twin of the Counters pin:
// shard merging (engine.Result.Ops aggregation) and the obs sampler's
// per-operator deltas both go through Add/Delta, so a new OpStats field must
// flow through both. As with Counters, countersmerge enforces the
// exhaustiveness half statically; this test owns the semantics (Add sums,
// Delta inverts Add field-wise).
func TestOpStatsAddCoversEveryField(t *testing.T) {
	var src, dst OpStats
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("field %s is %s; Add/Delta and this test assume uint64 stats",
				sv.Type().Field(i).Name, f.Kind())
		}
		f.SetUint(uint64(i + 1))
	}
	dst.Add(src)
	dst.Add(src)
	dv := reflect.ValueOf(&dst).Elem()
	for i := 0; i < dv.NumField(); i++ {
		if got, want := dv.Field(i).Uint(), uint64(2*(i+1)); got != want {
			t.Errorf("Add dropped or miscounted field %s: got %d, want %d",
				dv.Type().Field(i).Name, got, want)
		}
	}
	// Delta must invert Add field-wise.
	d := dst.Delta(src)
	ddv := reflect.ValueOf(&d).Elem()
	for i := 0; i < ddv.NumField(); i++ {
		if got, want := ddv.Field(i).Uint(), uint64(i+1); got != want {
			t.Errorf("Delta dropped field %s: got %d, want %d",
				ddv.Type().Field(i).Name, got, want)
		}
	}
}

func TestCountersAddAndCost(t *testing.T) {
	a := Counters{Comparisons: 10, Results: 2, Feedbacks: 1}
	b := Counters{Comparisons: 5, Inserted: 3, Suspended: 2}
	a.Add(&b)
	if a.Comparisons != 15 || a.Inserted != 3 || a.Suspended != 2 {
		t.Fatal("add wrong")
	}
	cost := a.CostUnits()
	// 15*1 + 2*8 + 3*2 + 1*16 + 2*4 = 15+16+6+16+8 = 61
	if cost != 61 {
		t.Fatalf("cost=%d want 61", cost)
	}
	if a.String() == "" {
		t.Fatal("empty render")
	}
}
