package metrics

import "testing"

func TestAccountPeak(t *testing.T) {
	var a Account
	a.Alloc(100)
	a.Alloc(50)
	a.Free(120)
	a.Alloc(10)
	if a.Live() != 40 {
		t.Fatalf("live=%d", a.Live())
	}
	if a.Peak() != 150 {
		t.Fatalf("peak=%d", a.Peak())
	}
	if a.PeakKB() != 150.0/1024 {
		t.Fatal("PeakKB wrong")
	}
	a.Reset()
	if a.Live() != 0 || a.Peak() != 0 {
		t.Fatal("reset failed")
	}
}

func TestAccountNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-free must panic")
		}
	}()
	var a Account
	a.Alloc(10)
	a.Free(11)
}

func TestCountersAddAndCost(t *testing.T) {
	a := Counters{Comparisons: 10, Results: 2, Feedbacks: 1}
	b := Counters{Comparisons: 5, Inserted: 3, Suspended: 2}
	a.Add(&b)
	if a.Comparisons != 15 || a.Inserted != 3 || a.Suspended != 2 {
		t.Fatal("add wrong")
	}
	cost := a.CostUnits()
	// 15*1 + 2*8 + 3*2 + 1*16 + 2*4 = 15+16+6+16+8 = 61
	if cost != 61 {
		t.Fatalf("cost=%d want 61", cost)
	}
	if a.String() == "" {
		t.Fatal("empty render")
	}
}
