// Package metrics provides the measurement substrate for the experiments:
// deterministic cost-unit counters (machine-independent analogue of the
// paper's CPU seconds) and exact live-byte accounting with peak tracking
// (analogue of the paper's peak memory consumption).
package metrics

import (
	"fmt"
	"strings"
)

// Counters accumulates the deterministic work units performed by an engine
// run. The relative magnitudes across a parameter sweep reproduce the shape
// of the paper's CPU-time figures without depending on the host machine.
type Counters struct {
	// Probes counts state probes: one per (incoming tuple, opposite state)
	// scan initiated.
	Probes uint64
	// Comparisons counts predicate evaluations between tuple pairs.
	Comparisons uint64
	// Results counts composites constructed (intermediate or final).
	Results uint64
	// FinalResults counts composites delivered to the sink.
	FinalResults uint64
	// Inserted counts tuples inserted into operator states.
	Inserted uint64
	// Purged counts tuples removed from states by window expiry.
	Purged uint64
	// LatticeNodes counts CNS lattice node evaluations in Identify_MNS.
	LatticeNodes uint64
	// BloomChecks counts Bloom filter membership tests.
	BloomChecks uint64
	// MNSDetected counts MNSs reported by consumers.
	MNSDetected uint64
	// Feedbacks counts feedback messages sent (all commands).
	Feedbacks uint64
	// Suspended counts tuples moved into blacklists.
	Suspended uint64
	// Resumed counts tuples reactivated out of blacklists.
	Resumed uint64
	// CatchUpJoins counts comparisons performed during resumption catch-up.
	CatchUpJoins uint64
	// SuppressedPairs counts probe pairs skipped due to suspension marks.
	SuppressedPairs uint64
	// QueueOps counts inter-operator queue pushes.
	QueueOps uint64
	// Sweeps counts operator expiry sweeps fired by the engine. Not part of
	// CostUnits (the work a sweep performs is already charged through
	// Purged/Resumed/...); it measures scheduling overhead — the deadline
	// heap exists to drive this toward the number of sweeps that actually
	// have work to do (DESIGN.md §4).
	Sweeps uint64
	// Migrations counts mid-run plan-shape migrations performed by the
	// adaptive re-optimizer (internal/adapt, DESIGN.md §7). The replay work a
	// migration performs is charged through the ordinary counters above.
	Migrations uint64
	// AdaptUnits is the cost (in CostUnits terms) of the re-optimizer's
	// shadow scoring: the throwaway candidate-plan replays run at each
	// decision epoch. Charged into CostUnits so adaptive runs carry their
	// own decision overhead honestly.
	AdaptUnits uint64
	// MigrationDups counts deliveries suppressed by the migration dedup tap:
	// results the successor plan regenerated during replay (or re-delivered
	// after it) that the run had already emitted (DESIGN.md §7).
	MigrationDups uint64
	// LateDropped counts tuples that arrived behind the engine's disorder
	// watermark (TS < maxSeenTS - bound) and were dropped before ingestion
	// (DESIGN.md §8). Conservation invariant: every arrival is either
	// processed or counted here — never silently lost.
	LateDropped uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Probes += o.Probes
	c.Comparisons += o.Comparisons
	c.Results += o.Results
	c.FinalResults += o.FinalResults
	c.Inserted += o.Inserted
	c.Purged += o.Purged
	c.LatticeNodes += o.LatticeNodes
	c.BloomChecks += o.BloomChecks
	c.MNSDetected += o.MNSDetected
	c.Feedbacks += o.Feedbacks
	c.Suspended += o.Suspended
	c.Resumed += o.Resumed
	c.CatchUpJoins += o.CatchUpJoins
	c.SuppressedPairs += o.SuppressedPairs
	c.QueueOps += o.QueueOps
	c.Sweeps += o.Sweeps
	c.Migrations += o.Migrations
	c.AdaptUnits += o.AdaptUnits
	c.MigrationDups += o.MigrationDups
	c.LateDropped += o.LateDropped
}

// CostUnits collapses the counters into a single deterministic work figure.
// Weights approximate relative instruction costs: a comparison is the unit;
// constructing a result composite costs more (allocation + copy); lattice
// node evaluations and bloom checks are cheap; feedback handling carries a
// fixed overhead so that JIT's own bookkeeping is charged honestly.
func (c *Counters) CostUnits() uint64 {
	return c.Comparisons*1 +
		c.Results*8 +
		c.Inserted*2 +
		c.Purged*2 +
		c.LatticeNodes*1 +
		c.BloomChecks*1 +
		c.Feedbacks*16 +
		c.Suspended*4 +
		c.Resumed*4 +
		c.CatchUpJoins*1 +
		c.QueueOps*1 +
		c.AdaptUnits*1
}

// String renders a compact multi-line report.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "probes=%d cmp=%d results=%d final=%d ins=%d purge=%d\n",
		c.Probes, c.Comparisons, c.Results, c.FinalResults, c.Inserted, c.Purged)
	fmt.Fprintf(&b, "lattice=%d bloom=%d mns=%d fb=%d susp=%d res=%d catchup=%d suppressed=%d sweeps=%d cost=%d",
		c.LatticeNodes, c.BloomChecks, c.MNSDetected, c.Feedbacks, c.Suspended,
		c.Resumed, c.CatchUpJoins, c.SuppressedPairs, c.Sweeps, c.CostUnits())
	if c.Migrations > 0 || c.AdaptUnits > 0 {
		fmt.Fprintf(&b, "\nmigrations=%d adaptUnits=%d migrationDups=%d",
			c.Migrations, c.AdaptUnits, c.MigrationDups)
	}
	if c.LateDropped > 0 {
		fmt.Fprintf(&b, "\nlateDropped=%d", c.LateDropped)
	}
	return b.String()
}

// OpStats are the per-operator mirrors of the feedback counters the adaptive
// re-optimizer watches (internal/adapt, DESIGN.md §7): where MNSs are being
// detected, tuples suspended and pairs suppressed tells the epoch policy
// which part of the plan shape is paying for its position.
type OpStats struct {
	// Probes counts state probes initiated at this operator.
	Probes uint64
	// MNSDetected counts MNSs this operator reported as a consumer.
	MNSDetected uint64
	// Suspended counts tuples this operator moved into its blacklists.
	Suspended uint64
	// SuppressedPairs counts probe pairs this operator skipped under marks.
	SuppressedPairs uint64
}

// Add accumulates o into s component-wise — the merge used when sharded
// runs aggregate per-replica operator stats by operator name.
func (s *OpStats) Add(o OpStats) {
	s.Probes += o.Probes
	s.MNSDetected += o.MNSDetected
	s.Suspended += o.Suspended
	s.SuppressedPairs += o.SuppressedPairs
}

// NamedOpStats pairs an operator's name with its stats — the per-operator
// row an engine run reports (engine.Result.Ops, `jitrun -stats`).
type NamedOpStats struct {
	Name  string
	Stats OpStats
}

// Delta returns the component-wise difference s - prev.
func (s OpStats) Delta(prev OpStats) OpStats {
	return OpStats{
		Probes:          s.Probes - prev.Probes,
		MNSDetected:     s.MNSDetected - prev.MNSDetected,
		Suspended:       s.Suspended - prev.Suspended,
		SuppressedPairs: s.SuppressedPairs - prev.SuppressedPairs,
	}
}

// Account tracks live bytes attributed to stored stream data (operator
// states, blacklists, MNS buffers, inter-operator queues) and records the
// peak. It replaces process-RSS measurement with an exact, GC-independent
// figure, matching what the paper's memory metric is dominated by.
type Account struct {
	live int64
	peak int64
}

// Alloc charges n bytes to the account.
func (a *Account) Alloc(n int64) {
	a.live += n
	if a.live > a.peak {
		a.peak = a.live
	}
}

// Free releases n bytes. Freeing more than is live indicates an accounting
// bug and panics, so tests catch it immediately.
func (a *Account) Free(n int64) {
	a.live -= n
	if a.live < 0 {
		panic(fmt.Sprintf("metrics: account went negative (%d after freeing %d)", a.live, n))
	}
}

// Live returns the currently charged bytes.
func (a *Account) Live() int64 { return a.live }

// Peak returns the high-water mark in bytes.
func (a *Account) Peak() int64 { return a.peak }

// PeakKB returns the high-water mark in kilobytes, the paper's unit.
func (a *Account) PeakKB() float64 { return float64(a.peak) / 1024 }

// Reset clears both live and peak figures.
func (a *Account) Reset() { a.live, a.peak = 0, 0 }

// AbsorbPeak raises the peak to at least o's peak. Used when accounting
// responsibility transfers between accounts mid-run — a plan migration hands
// the measurement substrate to the successor plan's account, and the run's
// true high-water mark is the maximum over both lifetimes (DESIGN.md §7).
func (a *Account) AbsorbPeak(o *Account) {
	if o.peak > a.peak {
		a.peak = o.peak
	}
}
