package feedback

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/state"
	"repro/internal/stream"
)

func tpl(src stream.SourceID, ts stream.Time, vals ...stream.Value) *stream.Tuple {
	return &stream.Tuple{ID: uint64(ts), Source: src, TS: ts, Vals: vals}
}

func comp(n int, t *stream.Tuple) *stream.Composite { return stream.NewComposite(n, t) }

func mnsA(val stream.Value, expiry stream.Time) *MNS {
	attr := predicate.Attr{Source: 0, Col: 1}
	c := comp(3, tpl(0, 1, 0, val))
	return &MNS{
		ID:      1,
		Sources: stream.SourceSet(0).Add(0),
		Sig:     Signature{{Attr: attr, Val: val}},
		Preds:   predicate.Conj{{Left: 0, LCol: 1, Right: 2, RCol: 0}},
		Expiry:  expiry,
		Anchor:  c,
	}
}

func TestSignatureMatching(t *testing.T) {
	sig := Signature{{Attr: predicate.Attr{Source: 0, Col: 1}, Val: 100}}
	match := comp(3, tpl(0, 5, 0, 100))
	miss := comp(3, tpl(0, 5, 0, 99))
	other := comp(3, tpl(1, 5, 100))
	if !sig.MatchedBy(match) || sig.MatchedBy(miss) || sig.MatchedBy(other) {
		t.Fatal("signature matching wrong")
	}
	if sig.Canon() != "0.1=100" {
		t.Fatalf("canon: %q", sig.Canon())
	}
	if sig.Sources().Count() != 1 {
		t.Fatal("sources wrong")
	}
	r := sig.Restrict(stream.SourceSet(0).Add(1))
	if len(r) != 0 {
		t.Fatal("restrict to foreign set must be empty")
	}
}

func TestMNSMatchedByOpposite(t *testing.T) {
	m := mnsA(100, 1000)
	hit := comp(3, tpl(2, 7, 100))
	miss := comp(3, tpl(2, 7, 50))
	if ok, _ := m.MatchedByOpposite(hit); !ok {
		t.Fatal("partner should match")
	}
	if ok, _ := m.MatchedByOpposite(miss); ok {
		t.Fatal("non-partner matched")
	}
	// Missing opposite source → not matched.
	noSrc := comp(3, tpl(1, 7, 100))
	if ok, _ := m.MatchedByOpposite(noSrc); ok {
		t.Fatal("missing source must not match")
	}
	// Ø matches anything.
	empty := &MNS{ID: 9, Expiry: NoExpiry}
	if ok, _ := empty.MatchedByOpposite(noSrc); !ok {
		t.Fatal("Ø must match everything")
	}
}

func TestBufferAddDedupPurgeProbe(t *testing.T) {
	acct := &metrics.Account{}
	b := NewBuffer("NB", acct)
	m1 := mnsA(100, 1000)
	kept, added := b.Add(m1)
	if !added || kept != m1 || b.Len() != 1 {
		t.Fatal("first add failed")
	}
	// Same signature, later expiry → dedup with extension.
	m2 := mnsA(100, 2000)
	kept, added = b.Add(m2)
	if added || kept != m1 || m1.Expiry != 2000 {
		t.Fatal("dedup/extension failed")
	}
	if !b.Has(m1.Key()) {
		t.Fatal("Has failed")
	}
	// Probe with matching partner removes it.
	hit := comp(3, tpl(2, 7, 100))
	matched, _ := b.Probe(hit)
	if len(matched) != 1 || b.Len() != 0 || acct.Live() != 0 {
		t.Fatalf("probe: matched=%d len=%d live=%d", len(matched), b.Len(), acct.Live())
	}
	// Expired MNSs are purged.
	b.Add(mnsA(50, 100))
	if n := b.Purge(100); n != 1 || b.Len() != 0 {
		t.Fatalf("purge failed: %d", n)
	}
	if acct.Live() != 0 {
		t.Fatalf("buffer leaked %d bytes", acct.Live())
	}
}

func TestBufferProbeMisses(t *testing.T) {
	b := NewBuffer("NB", &metrics.Account{})
	b.Add(mnsA(100, 1000))
	miss := comp(3, tpl(2, 7, 51))
	if matched, _ := b.Probe(miss); len(matched) != 0 || b.Len() != 1 {
		t.Fatal("miss must keep the MNS")
	}
}

func TestBlacklistLifecycle(t *testing.T) {
	acct := &metrics.Account{}
	bl := NewBlacklist("B", acct)
	m := mnsA(100, 1000)
	e, created := bl.Ensure(m)
	if !created || bl.Len() != 1 {
		t.Fatal("ensure failed")
	}
	if _, created := bl.Ensure(mnsA(100, 3000)); created {
		t.Fatal("duplicate sig must not create")
	}
	if m.Expiry != 3000 {
		t.Fatal("expiry not extended")
	}
	// Park tuples, including a same-signature generalization.
	a1 := comp(3, tpl(0, 10, 1, 100))
	a2 := comp(3, tpl(0, 20, 2, 100))
	bl.Park(e, Suspended{E: state.Entry{C: a1, Seq: 1}, Cursor: 0})
	bl.Park(e, Suspended{E: state.Entry{C: a2, Seq: 2}, Cursor: 0})
	if bl.NumSuspended() != 2 || acct.Live() == 0 {
		t.Fatal("park failed")
	}
	// Arrival with the same signature diverts.
	a3 := comp(3, tpl(0, 30, 3, 100))
	hit, _ := bl.MatchArrival(a3, 500, true)
	if hit != e {
		t.Fatal("generalized arrival should divert")
	}
	// Without generalization only anchor super-tuples divert.
	hit, _ = bl.MatchArrival(a3, 500, false)
	if hit != nil {
		t.Fatal("non-super-tuple must not divert without generalization")
	}
	// Expired entries are skipped at arrival and collected by TakeExpired.
	if hit, _ := bl.MatchArrival(a3, 5000, true); hit != nil {
		t.Fatal("expired entry must not divert")
	}
	exp := bl.TakeExpired(5000)
	if len(exp) != 1 || bl.Len() != 0 {
		t.Fatal("TakeExpired failed")
	}
	bl.ReleaseTuples(exp[0])
	if acct.Live() != 0 {
		t.Fatalf("blacklist leaked %d bytes", acct.Live())
	}
}

func TestBlacklistTakeAndPurge(t *testing.T) {
	acct := &metrics.Account{}
	bl := NewBlacklist("B", acct)
	m := mnsA(100, 1000)
	e, _ := bl.Ensure(m)
	old := comp(3, tpl(0, 10, 1, 100))
	young := comp(3, tpl(0, 500, 2, 100))
	bl.Park(e, Suspended{E: state.Entry{C: old, Seq: 1}})
	bl.Park(e, Suspended{E: state.Entry{C: young, Seq: 2}})
	// window 100 at now 200: old (ts10) expires.
	if n := bl.PurgeTuples(200, 100); n != 1 || bl.NumSuspended() != 1 {
		t.Fatalf("purge tuples: %d", n)
	}
	got, ok := bl.Take(m.Key())
	if !ok || len(got.Tuples) != 1 {
		t.Fatal("take failed")
	}
	if _, ok := bl.Take(m.Key()); ok {
		t.Fatal("double take")
	}
}

func TestSuspendedDone(t *testing.T) {
	var s Suspended
	if s.IsDone(5) {
		t.Fatal("phantom done")
	}
	s.MarkDone(5)
	if !s.IsDone(5) || s.IsDone(6) {
		t.Fatal("done bookkeeping wrong")
	}
}

func TestMarkTable(t *testing.T) {
	acct := &metrics.Account{}
	mt := NewMarkTable(acct)
	if !mt.Empty() {
		t.Fatal("fresh table not empty")
	}
	m := &MNS{
		ID:      7,
		Sources: stream.SourceSet(0).Add(0).Add(2),
		Sig: Signature{
			{Attr: predicate.Attr{Source: 0, Col: 0}, Val: 5},
			{Attr: predicate.Attr{Source: 2, Col: 0}, Val: 9},
		},
		Expiry: 1000,
	}
	left := stream.SourceSet(0).Add(0).Add(1)
	right := stream.SourceSet(0).Add(2)
	e := mt.ActivateOrigin(m, left, right)
	if e == nil || len(e.SigL) != 1 || len(e.SigR) != 1 {
		t.Fatal("activation/decomposition wrong")
	}
	if mt.ActivateOrigin(m, left, right) != nil {
		t.Fatal("duplicate origin accepted")
	}
	l := comp(3, tpl(0, 10, 5))
	r := comp(3, tpl(2, 20, 9))
	mt.Enroll(e, true, state.Entry{C: l, Seq: 1})
	mt.Enroll(e, false, state.Entry{C: r, Seq: 2})
	if !l.HasMark(7) || !r.HasMark(7) {
		t.Fatal("enrollment did not mark")
	}
	if mt.Enroll(e, true, state.Entry{C: l, Seq: 1}) {
		t.Fatal("re-enrollment accepted")
	}
	if !mt.Suppressed(l, r, 0) || mt.Suppressed(l, r, 7) {
		t.Fatal("suppression check wrong")
	}
	mt.RecordSuppressed(e, state.Entry{C: l, Seq: 1}, state.Entry{C: r, Seq: 2})
	if mt.NumPending() != 1 {
		t.Fatal("pending not recorded")
	}
	got, ok := mt.TakeOrigin(m.Key())
	if !ok || got != e || mt.NumOrigins() != 0 {
		t.Fatal("take origin failed")
	}
	if mt.Suppressed(l, r, 0) {
		t.Fatal("suppression survives dissolution")
	}
	mt.ReleasePending(got)
	if acct.Live() != 0 {
		t.Fatalf("mark table leaked %d bytes", acct.Live())
	}
}

func TestRelays(t *testing.T) {
	acct := &metrics.Account{}
	mt := NewMarkTable(acct)
	m := &MNS{
		ID:      3,
		Sources: stream.SourceSet(0).Add(0),
		Sig:     Signature{{Attr: predicate.Attr{Source: 0, Col: 0}, Val: 5}},
		Expiry:  100,
	}
	if !mt.AddRelay(m) || mt.AddRelay(m) {
		t.Fatal("relay add/dedup wrong")
	}
	out := comp(3, tpl(0, 10, 5))
	mt.StampOutput(out)
	if !out.HasMark(3) {
		t.Fatal("stamping failed")
	}
	miss := comp(3, tpl(0, 10, 6))
	mt.StampOutput(miss)
	if miss.HasMark(3) {
		t.Fatal("stamped a non-match")
	}
	if n := mt.PurgeRelays(200); n != 1 || mt.NumRelays() != 0 {
		t.Fatal("relay purge failed")
	}
	if acct.Live() != 0 {
		t.Fatalf("relays leaked %d bytes", acct.Live())
	}
}

func TestPurgePending(t *testing.T) {
	mt := NewMarkTable(&metrics.Account{})
	m := &MNS{ID: 1, Sources: stream.SourceSet(0).Add(0).Add(2),
		Sig: Signature{
			{Attr: predicate.Attr{Source: 0, Col: 0}, Val: 5},
			{Attr: predicate.Attr{Source: 2, Col: 0}, Val: 9},
		}, Expiry: 10000}
	e := mt.ActivateOrigin(m, stream.SourceSet(0).Add(0), stream.SourceSet(0).Add(2))
	old := comp(3, tpl(0, 10, 5))
	young := comp(3, tpl(2, 900, 9))
	mt.RecordSuppressed(e, state.Entry{C: old, Seq: 1}, state.Entry{C: young, Seq: 2})
	if n := mt.PurgePending(1000, 100); n != 1 || mt.NumPending() != 0 {
		t.Fatalf("pending purge: %d", n)
	}
}
