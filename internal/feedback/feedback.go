// Package feedback defines the JIT feedback protocol between consumer and
// producer operators (Sec. III-A, IV): MNS descriptors with value
// signatures, feedback messages (suspend / resume / mark / unmark), the
// consumer-side MNS buffer, and the producer-side blacklist and mark table.
//
// Layout: feedback.go holds the descriptors and messages; buffer.go the
// consumer-side MNS buffer (attribute-set groups probed on every arrival
// to detect resumption triggers); blacklist.go the producer-side Type I
// structures (parked tuples under anchor entries, signature
// generalization, cursor/Pending/Done exactly-once bookkeeping); marks.go
// the Type II mark table (suppressed pairs recorded under origin marks,
// unmark catch-up). The exactly-once and expiry discipline these
// structures jointly enforce is specified in DESIGN.md §2; their
// min-deadline caches feed the engine's timer heap (DESIGN.md §4).
package feedback

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/predicate"
	"repro/internal/stream"
)

// Command is the kind of a feedback message.
type Command int

// Feedback commands. Suspend/Resume drive Type I dynamic production
// control; Mark/Unmark implement the mark-result protocol for Type II MNSs.
const (
	Suspend Command = iota
	Resume
	Mark
	Unmark
)

func (c Command) String() string {
	switch c {
	case Suspend:
		return "suspend"
	case Resume:
		return "resume"
	case Mark:
		return "mark"
	case Unmark:
		return "unmark"
	}
	return "?"
}

// SigEntry is one (source, column) = value constraint of an MNS signature.
type SigEntry struct {
	Attr predicate.Attr
	Val  stream.Value
}

// Signature is the value fingerprint of an MNS: the values of the MNS
// components on exactly the columns that appear in the detecting consumer's
// join predicate. Two sub-tuples with equal signatures are interchangeable
// for demand purposes — this is what lets the producer suspend a2 after a1
// (Sec. IV-B). Entries are kept sorted for canonical comparison.
type Signature []SigEntry

// Canon returns a canonical string form, used to deduplicate MNSs that
// cover the same value pattern.
func (s Signature) Canon() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = fmt.Sprintf("%d.%d=%d", e.Attr.Source, e.Attr.Col, e.Val)
	}
	return strings.Join(parts, ";")
}

// MatchedBy reports whether composite c contains a sub-tuple with this
// signature: c must cover every signatured source and agree on every value.
func (s Signature) MatchedBy(c *stream.Composite) bool {
	for _, e := range s {
		t := c.Comp(e.Attr.Source)
		if t == nil || t.Vals[e.Attr.Col] != e.Val {
			return false
		}
	}
	return true
}

// Lookup returns the signature's value at the given attribute, if
// constrained. Used by the blacklist catch-up prefilter: every tuple parked
// under an entry shares the entry signature's values, so one lookup per
// indexed key column can reject a whole entry (DESIGN.md §3).
func (s Signature) Lookup(a predicate.Attr) (stream.Value, bool) {
	for _, e := range s {
		if e.Attr == a {
			return e.Val, true
		}
	}
	return 0, false
}

// Sources returns the set of sources constrained by the signature.
func (s Signature) Sources() stream.SourceSet {
	var set stream.SourceSet
	for _, e := range s {
		set = set.Add(e.Attr.Source)
	}
	return set
}

// Restrict returns the sub-signature whose sources lie in set.
func (s Signature) Restrict(set stream.SourceSet) Signature {
	var out Signature
	for _, e := range s {
		if set.Has(e.Attr.Source) {
			out = append(out, e)
		}
	}
	return out
}

// SizeBytes estimates the signature's memory footprint.
func (s Signature) SizeBytes() int64 { return 24 + int64(len(s))*24 }

// MakeSignature builds the signature of sub-tuple comps (indexed by source)
// for the given join attributes.
func MakeSignature(attrs []predicate.Attr, comp func(stream.SourceID) *stream.Tuple) Signature {
	sig := make(Signature, 0, len(attrs))
	for _, a := range attrs {
		t := comp(a.Source)
		if t == nil {
			continue
		}
		sig = append(sig, SigEntry{Attr: a, Val: t.Vals[a.Col]})
	}
	sort.Slice(sig, func(i, j int) bool {
		if sig[i].Attr.Source != sig[j].Attr.Source {
			return sig[i].Attr.Source < sig[j].Attr.Source
		}
		return sig[i].Attr.Col < sig[j].Attr.Col
	})
	return sig
}

// NoExpiry marks an MNS that never times out (the empty MNS Ø).
const NoExpiry = stream.Time(1) << 62

// MNS is a minimal non-demanded sub-tuple as communicated in feedback.
type MNS struct {
	// ID is unique per detection; mark entries reuse it as the mark id.
	ID uint64
	// Sources is the set of sources the MNS spans; empty for Ø.
	Sources stream.SourceSet
	// Sig is the value signature. Empty for Ø.
	Sig Signature
	// Preds are the consumer-side predicates linking the MNS sources to the
	// consumer's opposite input, used to probe arrivals against the buffer.
	Preds predicate.Conj
	// Expiry is when the anchor sub-tuple leaves the window; after this the
	// consumer forgets the MNS and the producer must reactivate survivors.
	Expiry stream.Time
	// Anchor is the concrete sub-tuple the MNS was detected on; used for
	// exact (identity) matching when signature generalization is disabled.
	// Nil for Ø.
	Anchor *stream.Composite
}

// IsEmpty reports whether this is the empty MNS Ø (total suspension / DOE).
func (m *MNS) IsEmpty() bool { return m.Sources.Empty() }

// Key returns the canonical dedup key (signature-based; Ø has the empty key).
func (m *MNS) Key() string { return m.Sig.Canon() }

// MatchedByOpposite reports whether an arriving opposite-side composite t
// satisfies every predicate linking the MNS to the opposite input — the MNS
// buffer probe. Ø is matched by anything.
func (m *MNS) MatchedByOpposite(t *stream.Composite) (ok bool, comparisons int) {
	if m.IsEmpty() {
		return true, 0
	}
	for _, p := range m.Preds {
		// Resolve the MNS-side value from the signature and the opposite
		// value from t.
		var sigAttr predicate.Attr
		var oppAttr predicate.Attr
		if m.Sources.Has(p.Left) {
			sigAttr = predicate.Attr{Source: p.Left, Col: p.LCol}
			oppAttr = predicate.Attr{Source: p.Right, Col: p.RCol}
		} else {
			sigAttr = predicate.Attr{Source: p.Right, Col: p.RCol}
			oppAttr = predicate.Attr{Source: p.Left, Col: p.LCol}
		}
		ot := t.Comp(oppAttr.Source)
		if ot == nil {
			// The opposite input does not carry this source (possible in
			// half-join paths); the predicate cannot be confirmed yet, so
			// the MNS is not considered matched.
			return false, comparisons
		}
		comparisons++
		if ot.Vals[oppAttr.Col] != m.sigVal(sigAttr) {
			return false, comparisons
		}
	}
	return true, comparisons
}

func (m *MNS) sigVal(a predicate.Attr) stream.Value {
	for _, e := range m.Sig {
		if e.Attr == a {
			return e.Val
		}
	}
	// A predicate references an attribute outside the signature only if the
	// MNS was constructed inconsistently; fail loudly.
	panic(fmt.Sprintf("feedback: MNS %d has no signature value for %v", m.ID, a))
}

// SizeBytes estimates the MNS descriptor's footprint.
func (m *MNS) SizeBytes() int64 {
	return 64 + m.Sig.SizeBytes() + int64(len(m.Preds))*32
}

func (m *MNS) String() string {
	if m.IsEmpty() {
		return "Ø"
	}
	return fmt.Sprintf("mns%d<%s>", m.ID, m.Sig.Canon())
}

// Message is one feedback message sent from a consumer to a producer.
type Message struct {
	Cmd Command
	MNS []*MNS
}

func (f Message) String() string {
	parts := make([]string, len(f.MNS))
	for i, m := range f.MNS {
		parts[i] = m.String()
	}
	return fmt.Sprintf("<%s, {%s}>", f.Cmd, strings.Join(parts, ","))
}
