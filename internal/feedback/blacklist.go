package feedback

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/state"
	"repro/internal/stream"
)

// Suspended is one tuple parked in a blacklist entry: the composite with
// its stable sequence number, plus the cursor recording the opposite side's
// watermark up to which it has already been joined. Resumption joins it
// with opposite tuples whose sequence exceeds Cursor — exactly the results
// that were suppressed (DESIGN.md §2).
type Suspended struct {
	E      state.Entry
	Cursor uint64
	// Done records opposite-side sequence numbers beyond Cursor whose pairs
	// were already generated while this tuple was suspended: when another
	// tuple's resumption catch-up scans the blacklists and joins this one,
	// the pair must not be regenerated at this tuple's own resumption.
	Done map[uint64]bool
	// Pending lists opposite-side sequence numbers at or below Cursor whose
	// pairs were NOT actually joined despite the cursor claim: opposite
	// tuples that were suspended (with their own scans short of this tuple)
	// when this tuple was parked from the state. Resumption processes them
	// explicitly, deduplicated against Done.
	Pending []uint64
}

// MarkDone records that the pair with the given opposite sequence was
// generated while suspended.
func (s *Suspended) MarkDone(oppSeq uint64) {
	if s.Done == nil {
		s.Done = make(map[uint64]bool, 2)
	}
	s.Done[oppSeq] = true
}

// IsDone reports whether the pair with the given opposite sequence was
// already generated.
func (s *Suspended) IsDone(oppSeq uint64) bool { return s.Done != nil && s.Done[oppSeq] }

// Entry is one blacklist entry: an MNS and the suspended super-tuples
// (including same-signature generalizations such as a2 under a1's entry).
type Entry struct {
	MNS    *MNS
	Tuples []Suspended
}

// Blacklist is the producer-side store of suspended tuples for one input
// side of a join (B_L or B_R in the paper). Entries share the side's
// sequence space with the active state, so cursors are totally ordered.
type Blacklist struct {
	name    string
	acct    *metrics.Account
	entries []*Entry
	byKey   map[string]*Entry
	// groups index entries by their signature's attribute set, with a hash
	// on the value fingerprint inside each group, so MatchArrival is O(#
	// attribute sets) instead of O(# entries) — the hash-table organization
	// the paper prescribes for the blacklist (Sec. IV-B). groupList holds
	// the same groups in creation order: probes iterate the slice, never
	// the map, so run behaviour is deterministic (DESIGN.md §2).
	groups    map[string]*sigGroup
	groupList []*sigGroup
	empty     *Entry // the Ø entry, matching every arrival
	// Deadline caches (DESIGN.md §4): the earliest anchor expiry among
	// entries and the earliest MinTS among parked tuples, maintained exactly
	// on insertion and recomputed lazily after mutations that can raise them.
	// A stale cache is always a lower bound, so deadlines fire early (a
	// no-op sweep), never late.
	anchorMin   stream.Time
	anchorDirty bool
	parkMin     stream.Time
	parkHas     bool
	parkDirty   bool
}

// sigGroup is the per-attribute-set hash of entries.
type sigGroup struct {
	attrs []predicate.Attr
	byVal map[string]*Entry
}

// groupKeyOf renders an attribute set canonically.
func groupKeyOf(sig Signature) string {
	parts := make([]string, len(sig))
	for i, e := range sig {
		parts[i] = fmt.Sprintf("%d.%d", e.Attr.Source, e.Attr.Col)
	}
	return strings.Join(parts, ";")
}

// valKeyOf renders the value fingerprint of a composite on the group's
// attribute set; ok is false when the composite lacks one of the sources.
func valKeyOf(attrs []predicate.Attr, c *stream.Composite) (string, bool) {
	var b strings.Builder
	for i, a := range attrs {
		t := c.Comp(a.Source)
		if t == nil {
			return "", false
		}
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d", t.Vals[a.Col])
	}
	return b.String(), true
}

func sigValKey(sig Signature) string {
	parts := make([]string, len(sig))
	for i, e := range sig {
		parts[i] = fmt.Sprintf("%d", e.Val)
	}
	return strings.Join(parts, ";")
}

// NewBlacklist creates an empty blacklist charging memory to acct.
func NewBlacklist(name string, acct *metrics.Account) *Blacklist {
	return &Blacklist{name: name, acct: acct, byKey: make(map[string]*Entry), groups: make(map[string]*sigGroup)}
}

// Len returns the number of entries.
func (b *Blacklist) Len() int { return len(b.entries) }

// NumSuspended returns the total number of parked tuples.
func (b *Blacklist) NumSuspended() int {
	n := 0
	for _, e := range b.entries {
		n += len(e.Tuples)
	}
	return n
}

// Entry returns the entry covering the given signature key, if any.
func (b *Blacklist) Entry(key string) (*Entry, bool) {
	e, ok := b.byKey[key]
	return e, ok
}

// Ensure returns the entry for m's signature, creating it when absent. When
// an entry already exists its expiry is extended to the later of the two —
// the producer "simply ignores" duplicate suspensions (Sec. III-B) but must
// not forget the anchor.
func (b *Blacklist) Ensure(m *MNS) (e *Entry, created bool) {
	if old, ok := b.byKey[m.Key()]; ok {
		if m.Expiry > old.MNS.Expiry {
			old.MNS.Expiry = m.Expiry
			b.anchorDirty = true // the raised expiry may have been the min
		}
		return old, false
	}
	e = &Entry{MNS: m}
	if len(b.entries) == 0 {
		b.anchorMin, b.anchorDirty = m.Expiry, false
	} else if !b.anchorDirty && m.Expiry < b.anchorMin {
		b.anchorMin = m.Expiry
	}
	b.entries = append(b.entries, e)
	b.byKey[m.Key()] = e
	b.index(e)
	b.acct.Alloc(m.SizeBytes())
	return e, true
}

func (b *Blacklist) index(e *Entry) {
	if e.MNS.IsEmpty() {
		b.empty = e
		return
	}
	gk := groupKeyOf(e.MNS.Sig)
	g := b.groups[gk]
	if g == nil {
		attrs := make([]predicate.Attr, len(e.MNS.Sig))
		for i, s := range e.MNS.Sig {
			attrs[i] = s.Attr
		}
		g = &sigGroup{attrs: attrs, byVal: make(map[string]*Entry)}
		b.groups[gk] = g
		b.groupList = append(b.groupList, g)
	}
	g.byVal[sigValKey(e.MNS.Sig)] = e
}

func (b *Blacklist) unindex(e *Entry) {
	if e.MNS.IsEmpty() {
		if b.empty == e {
			b.empty = nil
		}
		return
	}
	if g := b.groups[groupKeyOf(e.MNS.Sig)]; g != nil {
		delete(g.byVal, sigValKey(e.MNS.Sig))
	}
}

// Park adds a suspended tuple under entry e, charging its storage.
func (b *Blacklist) Park(e *Entry, s Suspended) {
	if !b.parkHas {
		b.parkMin, b.parkHas, b.parkDirty = s.E.C.MinTS, true, false
	} else if !b.parkDirty && s.E.C.MinTS < b.parkMin {
		b.parkMin = s.E.C.MinTS
	}
	e.Tuples = append(e.Tuples, s)
	b.acct.Alloc(s.E.C.DeepSizeBytes())
}

// NextAnchorExpiry returns the earliest anchor expiry among entries, or
// NoExpiry when no entry can ever expire (empty blacklist, or only the Ø
// entry). This is the blacklist's contribution to the operator's sweep
// deadline (DESIGN.md §4).
func (b *Blacklist) NextAnchorExpiry() stream.Time {
	if len(b.entries) == 0 {
		return NoExpiry
	}
	if b.anchorDirty {
		b.anchorDirty = false
		b.anchorMin = NoExpiry
		for _, e := range b.entries {
			if e.MNS.Expiry < b.anchorMin {
				b.anchorMin = e.MNS.Expiry
			}
		}
	}
	return b.anchorMin
}

// InvalidateMinCaches forces the next NextAnchorExpiry / NextTupleMinTS
// reads to recompute exactly. MNS descriptors are shared across structures
// (an entry's anchor can also sit in a consumer's buffer), so an in-place
// expiry extension elsewhere can leave this blacklist's cached minima
// stale-low without its dirty flags set; the engine flushes before trusting
// a deadline that refuses to advance (DESIGN.md §4).
func (b *Blacklist) InvalidateMinCaches() {
	b.anchorDirty = true
	b.parkDirty = true
}

// NextTupleMinTS returns the earliest MinTS among parked tuples; ok is false
// when nothing is parked. The earliest parked-tuple purge deadline is
// MinTS + window.
func (b *Blacklist) NextTupleMinTS() (stream.Time, bool) {
	if b.parkDirty {
		b.parkDirty, b.parkHas = false, false
		for _, e := range b.entries {
			for i := range e.Tuples {
				ts := e.Tuples[i].E.C.MinTS
				if !b.parkHas || ts < b.parkMin {
					b.parkMin, b.parkHas = ts, true
				}
			}
		}
	}
	return b.parkMin, b.parkHas
}

// MatchArrival checks a freshly arriving composite against every entry.
// On a hit the arrival should be diverted straight into that entry (the a2
// fast path); comparisons are reported for cost accounting. With generalize
// set, matching is by value signature (any tuple with the same join
// attributes); otherwise only exact super-tuples of the anchor match.
// Entries whose anchor has expired are skipped (they are about to be
// reactivated by the sweep).
func (b *Blacklist) MatchArrival(c *stream.Composite, now stream.Time, generalize bool) (hit *Entry, comparisons int) {
	if b.empty != nil && b.empty.MNS.Expiry > now {
		return b.empty, comparisons
	}
	for _, g := range b.groupList {
		comparisons += len(g.attrs)
		key, ok := valKeyOf(g.attrs, c)
		if !ok {
			continue
		}
		e := g.byVal[key]
		if e == nil || e.MNS.Expiry <= now {
			continue
		}
		if !generalize && (e.MNS.Anchor == nil || !e.MNS.Anchor.IsSubTuple(c)) {
			continue
		}
		return e, comparisons
	}
	return nil, comparisons
}

// Take removes and returns the entry with the given signature key (resume).
func (b *Blacklist) Take(key string) (*Entry, bool) {
	e, ok := b.byKey[key]
	if !ok {
		return nil, false
	}
	b.remove(e)
	return e, true
}

// TakeExpired removes and returns every entry whose anchor MNS has expired.
// Callers must reactivate the surviving tuples (DESIGN.md: expiry sweep).
func (b *Blacklist) TakeExpired(now stream.Time) []*Entry {
	var out []*Entry
	for _, e := range append([]*Entry(nil), b.entries...) {
		if e.MNS.Expiry <= now {
			b.remove(e)
			out = append(out, e)
		}
	}
	return out
}

// PurgeTuples drops expired tuples inside every entry and returns the count.
func (b *Blacklist) PurgeTuples(now, window stream.Time) int {
	n := 0
	b.parkDirty, b.parkHas = false, false
	for _, e := range b.entries {
		kept := e.Tuples[:0]
		for _, s := range e.Tuples {
			if s.E.C.MinTS+window <= now {
				b.acct.Free(s.E.C.DeepSizeBytes())
				n++
				continue
			}
			if !b.parkHas || s.E.C.MinTS < b.parkMin {
				b.parkMin, b.parkHas = s.E.C.MinTS, true
			}
			kept = append(kept, s)
		}
		for i := len(kept); i < len(e.Tuples); i++ {
			e.Tuples[i] = Suspended{}
		}
		e.Tuples = kept
	}
	return n
}

// TakeExpiredTuples removes and returns the parked tuples whose own window
// has closed, in entry-insertion then park order (deterministic). The
// exact-delivery sweep gives each a last-gasp catch-up before it is
// forgotten; storage is uncharged here, mirroring PurgeTuples.
func (b *Blacklist) TakeExpiredTuples(now, window stream.Time) []Suspended {
	var taken []Suspended
	b.parkDirty, b.parkHas = false, false
	for _, e := range b.entries {
		kept := e.Tuples[:0]
		for _, s := range e.Tuples {
			if s.E.C.MinTS+window <= now {
				b.acct.Free(s.E.C.DeepSizeBytes())
				taken = append(taken, s)
				continue
			}
			if !b.parkHas || s.E.C.MinTS < b.parkMin {
				b.parkMin, b.parkHas = s.E.C.MinTS, true
			}
			kept = append(kept, s)
		}
		for i := len(kept); i < len(e.Tuples); i++ {
			e.Tuples[i] = Suspended{}
		}
		e.Tuples = kept
	}
	return taken
}

// ReleaseTuples uncharges the storage of an entry's tuples; called when the
// tuples are being reinserted into the active state (which re-charges them).
func (b *Blacklist) ReleaseTuples(e *Entry) {
	for _, s := range e.Tuples {
		b.acct.Free(s.E.C.DeepSizeBytes())
	}
}

// HasExpired reports whether any entry's anchor has expired — a cheap check
// the expiry sweep uses before doing real work.
func (b *Blacklist) HasExpired(now stream.Time) bool {
	for _, e := range b.entries {
		if e.MNS.Expiry <= now {
			return true
		}
	}
	return false
}

// Entries returns a snapshot of the entries, for tests.
func (b *Blacklist) Entries() []*Entry { return append([]*Entry(nil), b.entries...) }

func (b *Blacklist) remove(e *Entry) {
	b.anchorDirty = true
	if len(e.Tuples) > 0 {
		b.parkDirty = true
	}
	b.unindex(e)
	delete(b.byKey, e.MNS.Key())
	b.acct.Free(e.MNS.SizeBytes())
	for i, x := range b.entries {
		if x == e {
			copy(b.entries[i:], b.entries[i+1:])
			b.entries[len(b.entries)-1] = nil
			b.entries = b.entries[:len(b.entries)-1]
			return
		}
	}
}
