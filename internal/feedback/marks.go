package feedback

import (
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/stream"
)

// PendingPair is one join pair whose production was suppressed by an active
// mark: the left-side and right-side tuples as stored in their states. The
// pair is generated exactly once, when the covering mark entry dissolves
// (resumption or anchor expiry), unless another active mark still covers it
// — in which case it is deferred to that entry.
//
// Recording pairs explicitly — rather than reconstructing them from cursor
// arithmetic at unmark time — makes Type II handling exact under arbitrary
// interleavings of marking, suspension, resumption and re-entrant feedback.
type PendingPair struct {
	L, R state.Entry
}

// OriginEntry lives at the operator where a Type II MNS was suspended: the
// operator whose two input sides together cover the MNS. It suppresses
// joins between left-marked and right-marked tuples until unmarked,
// recording each suppressed pair.
type OriginEntry struct {
	MNS  *MNS
	SigL Signature // restriction of MNS.Sig to the left input's sources
	SigR Signature
	// Left / Right list the enrolled (marked) tuples per side, for mark
	// cleanup when the entry dissolves.
	Left  []state.Entry
	Right []state.Entry
	// Pending holds the pairs suppressed under this entry.
	Pending []PendingPair

	seen map[*stream.Composite]bool // dedups enrollment
}

// RelayEntry lives at an upstream operator that received a mark-result
// feedback: it stamps every produced output matching the signature with the
// mark id so the origin operator can recognise it.
type RelayEntry struct {
	MNS *MNS
}

// MarkTable holds the Type II machinery of one operator.
type MarkTable struct {
	acct    *metrics.Account
	origins []*OriginEntry
	byKey   map[string]*OriginEntry
	relays  []*RelayEntry
	relayBy map[string]*RelayEntry
	active  map[uint64]*OriginEntry // origin mark ids currently suppressing
	// Deadline caches (DESIGN.md §4): earliest expiry among origin and relay
	// entries, and earliest endpoint MinTS among pending suppressed pairs.
	// Exact on insertion, lazily recomputed after removals and extensions.
	expiryMin   stream.Time
	expiryDirty bool
	pendMin     stream.Time
	pendHas     bool
	pendDirty   bool
}

// NewMarkTable creates an empty table.
func NewMarkTable(acct *metrics.Account) *MarkTable {
	return &MarkTable{
		acct:    acct,
		byKey:   make(map[string]*OriginEntry),
		relayBy: make(map[string]*RelayEntry),
		active:  make(map[uint64]*OriginEntry),
	}
}

// Empty reports whether the table has no active entries of either kind,
// letting operators skip all Type II work on the hot path.
func (t *MarkTable) Empty() bool { return len(t.origins) == 0 && len(t.relays) == 0 }

// NumOrigins returns the number of active origin entries.
func (t *MarkTable) NumOrigins() int { return len(t.origins) }

// NumRelays returns the number of active relay entries.
func (t *MarkTable) NumRelays() int { return len(t.relays) }

// NumPending returns the total number of suppressed pairs currently parked.
func (t *MarkTable) NumPending() int {
	n := 0
	for _, e := range t.origins {
		n += len(e.Pending)
	}
	return n
}

// ActivateOrigin installs an origin entry for a Type II MNS, returning nil
// if an entry with the same signature is already active (duplicate
// suspensions are ignored, with the anchor expiry extended).
func (t *MarkTable) ActivateOrigin(m *MNS, leftSources, rightSources stream.SourceSet) *OriginEntry {
	if old, ok := t.byKey[m.Key()]; ok {
		if m.Expiry > old.MNS.Expiry {
			old.MNS.Expiry = m.Expiry
			t.expiryDirty = true // the raised expiry may have been the min
		}
		return nil
	}
	t.noteExpiry(m.Expiry)
	e := &OriginEntry{
		MNS:  m,
		SigL: m.Sig.Restrict(leftSources),
		SigR: m.Sig.Restrict(rightSources),
		seen: make(map[*stream.Composite]bool),
	}
	t.origins = append(t.origins, e)
	t.byKey[m.Key()] = e
	t.active[m.ID] = e
	t.acct.Alloc(m.SizeBytes())
	return e
}

// Enroll marks a tuple under entry e on the given side (left when left is
// true). Re-enrollment of an already enrolled composite is a no-op.
func (t *MarkTable) Enroll(e *OriginEntry, left bool, se state.Entry) bool {
	if e.seen[se.C] {
		return false
	}
	e.seen[se.C] = true
	if left {
		e.Left = append(e.Left, se)
	} else {
		e.Right = append(e.Right, se)
	}
	se.C.AddMark(e.MNS.ID)
	return true
}

// RecordSuppressed parks a suppressed pair under entry e, charging its
// bookkeeping storage.
func (t *MarkTable) RecordSuppressed(e *OriginEntry, l, r state.Entry) {
	ts := l.C.MinTS
	if r.C.MinTS < ts {
		ts = r.C.MinTS
	}
	if !t.pendHas {
		t.pendMin, t.pendHas, t.pendDirty = ts, true, false
	} else if !t.pendDirty && ts < t.pendMin {
		t.pendMin = ts
	}
	e.Pending = append(e.Pending, PendingPair{L: l, R: r})
	t.acct.Alloc(pendingPairBytes)
}

// noteExpiry folds a freshly installed entry's expiry into the cache.
func (t *MarkTable) noteExpiry(expiry stream.Time) {
	if len(t.origins)+len(t.relays) == 0 {
		t.expiryMin, t.expiryDirty = expiry, false
	} else if !t.expiryDirty && expiry < t.expiryMin {
		t.expiryMin = expiry
	}
}

// InvalidateMinCaches forces the next NextExpiry / NextPendingMinTS reads
// to recompute exactly (see Blacklist.InvalidateMinCaches).
func (t *MarkTable) InvalidateMinCaches() {
	t.expiryDirty = true
	t.pendDirty = true
}

// NextExpiry returns the earliest expiry among origin and relay entries, or
// NoExpiry when the table holds none — the mark machinery's contribution to
// the operator's sweep deadline (DESIGN.md §4).
func (t *MarkTable) NextExpiry() stream.Time {
	if len(t.origins)+len(t.relays) == 0 {
		return NoExpiry
	}
	if t.expiryDirty {
		t.expiryDirty = false
		t.expiryMin = NoExpiry
		for _, e := range t.origins {
			if e.MNS.Expiry < t.expiryMin {
				t.expiryMin = e.MNS.Expiry
			}
		}
		for _, r := range t.relays {
			if r.MNS.Expiry < t.expiryMin {
				t.expiryMin = r.MNS.Expiry
			}
		}
	}
	return t.expiryMin
}

// NextPendingMinTS returns the earliest endpoint MinTS among pending
// suppressed pairs; ok is false when no pair is parked. The earliest pending
// purge deadline is MinTS + window.
func (t *MarkTable) NextPendingMinTS() (stream.Time, bool) {
	if t.pendDirty {
		t.pendDirty, t.pendHas = false, false
		for _, e := range t.origins {
			for _, p := range e.Pending {
				ts := p.L.C.MinTS
				if p.R.C.MinTS < ts {
					ts = p.R.C.MinTS
				}
				if !t.pendHas || ts < t.pendMin {
					t.pendMin, t.pendHas = ts, true
				}
			}
		}
	}
	return t.pendMin, t.pendHas
}

const pendingPairBytes = 48

// IsActive reports whether mark id is an active origin mark here.
func (t *MarkTable) IsActive(id uint64) bool { return t.active[id] != nil }

// EntryByID returns the active origin entry with the given mark id.
func (t *MarkTable) EntryByID(id uint64) *OriginEntry { return t.active[id] }

// Origins returns the active origin entries (shared slice; callers must not
// mutate).
func (t *MarkTable) Origins() []*OriginEntry { return t.origins }

// Suppressed reports whether the pair (a, b) shares an active origin mark
// at this operator and must therefore not be joined now. The exclude id
// allows unmark processing to ignore the entry being dissolved.
func (t *MarkTable) Suppressed(a, b *stream.Composite, exclude uint64) bool {
	return t.SuppressedBy(a, b, exclude) != 0
}

// SuppressedBy returns the id of an active origin mark shared by a and b
// (excluding the given id), or 0 when the pair is not suppressed.
func (t *MarkTable) SuppressedBy(a, b *stream.Composite, exclude uint64) uint64 {
	if len(a.Marks) == 0 || len(b.Marks) == 0 {
		return 0
	}
	// Iterate the smaller mark set. When several active marks cover the
	// pair, return the smallest id: the choice decides which origin entry
	// records a suppressed pair, and a deterministic rule keeps runs
	// reproducible (map iteration order is not).
	small, big := a, b
	if len(b.Marks) < len(a.Marks) {
		small, big = b, a
	}
	best := uint64(0)
	for id := range small.Marks {
		if id != exclude && t.active[id] != nil && big.HasMark(id) && (best == 0 || id < best) {
			best = id
		}
	}
	return best
}

// TakeOrigin removes and returns the origin entry for the signature key.
// The caller generates the entry's pending pairs and clears its marks.
func (t *MarkTable) TakeOrigin(key string) (*OriginEntry, bool) {
	e, ok := t.byKey[key]
	if !ok {
		return nil, false
	}
	t.removeOrigin(e)
	return e, true
}

// TakeExpiredOrigins removes and returns every origin entry whose anchor
// expired; the operator must generate their pending pairs.
func (t *MarkTable) TakeExpiredOrigins(now stream.Time) []*OriginEntry {
	var out []*OriginEntry
	for _, e := range append([]*OriginEntry(nil), t.origins...) {
		if e.MNS.Expiry <= now {
			t.removeOrigin(e)
			out = append(out, e)
		}
	}
	return out
}

// HasExpired reports whether any origin or relay entry has expired.
func (t *MarkTable) HasExpired(now stream.Time) bool {
	for _, e := range t.origins {
		if e.MNS.Expiry <= now {
			return true
		}
	}
	for _, r := range t.relays {
		if r.MNS.Expiry <= now {
			return true
		}
	}
	return false
}

// PurgePending drops pending pairs with an expired endpoint — their results
// can never contribute to output (fruitless partial results).
func (t *MarkTable) PurgePending(now, window stream.Time) int {
	n := 0
	t.pendDirty, t.pendHas = false, false
	for _, e := range t.origins {
		kept := e.Pending[:0]
		for _, p := range e.Pending {
			if p.L.C.MinTS+window <= now || p.R.C.MinTS+window <= now {
				t.acct.Free(pendingPairBytes)
				n++
				continue
			}
			ts := p.L.C.MinTS
			if p.R.C.MinTS < ts {
				ts = p.R.C.MinTS
			}
			if !t.pendHas || ts < t.pendMin {
				t.pendMin, t.pendHas = ts, true
			}
			kept = append(kept, p)
		}
		for i := len(kept); i < len(e.Pending); i++ {
			e.Pending[i] = PendingPair{}
		}
		e.Pending = kept
	}
	return n
}

// ReleasePending uncharges the pending-pair storage of a dissolved entry.
func (t *MarkTable) ReleasePending(e *OriginEntry) {
	if len(e.Pending) > 0 {
		t.pendDirty = true
	}
	t.acct.Free(int64(len(e.Pending)) * pendingPairBytes)
}

func (t *MarkTable) removeOrigin(e *OriginEntry) {
	t.expiryDirty = true
	if len(e.Pending) > 0 {
		t.pendDirty = true
	}
	delete(t.byKey, e.MNS.Key())
	delete(t.active, e.MNS.ID)
	t.acct.Free(e.MNS.SizeBytes())
	for i, x := range t.origins {
		if x == e {
			copy(t.origins[i:], t.origins[i+1:])
			t.origins[len(t.origins)-1] = nil
			t.origins = t.origins[:len(t.origins)-1]
			return
		}
	}
}

// AddRelay installs (or extends) a relay entry stamping outputs that match
// the MNS signature. Returns true when a new entry was created.
func (t *MarkTable) AddRelay(m *MNS) bool {
	if old, ok := t.relayBy[m.Key()]; ok {
		if m.Expiry > old.MNS.Expiry {
			old.MNS.Expiry = m.Expiry
			t.expiryDirty = true // the raised expiry may have been the min
		}
		return false
	}
	t.noteExpiry(m.Expiry)
	r := &RelayEntry{MNS: m}
	t.relays = append(t.relays, r)
	t.relayBy[m.Key()] = r
	t.acct.Alloc(m.SizeBytes())
	return true
}

// RemoveRelay drops the relay entry for the key, if present.
func (t *MarkTable) RemoveRelay(key string) bool {
	r, ok := t.relayBy[key]
	if !ok {
		return false
	}
	t.expiryDirty = true
	delete(t.relayBy, key)
	t.acct.Free(r.MNS.SizeBytes())
	for i, x := range t.relays {
		if x == r {
			copy(t.relays[i:], t.relays[i+1:])
			t.relays[len(t.relays)-1] = nil
			t.relays = t.relays[:len(t.relays)-1]
			break
		}
	}
	return true
}

// PurgeRelays drops expired relay entries.
func (t *MarkTable) PurgeRelays(now stream.Time) int {
	n := 0
	for _, r := range append([]*RelayEntry(nil), t.relays...) {
		if r.MNS.Expiry <= now {
			t.RemoveRelay(r.MNS.Key())
			n++
		}
	}
	return n
}

// StampOutput tags a freshly produced composite with every relay mark whose
// signature it matches; returns the number of signature checks for cost
// accounting.
func (t *MarkTable) StampOutput(c *stream.Composite) (checks int) {
	for _, r := range t.relays {
		checks += len(r.MNS.Sig)
		if r.MNS.Sig.MatchedBy(c) {
			c.AddMark(r.MNS.ID)
		}
	}
	return checks
}
