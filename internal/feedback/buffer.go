package feedback

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// Buffer is the consumer-side MNS buffer of Sec. III-A: detected MNSs are
// held until they expire or a matching partner arrives on the opposite
// input, at which point they are removed and a resumption feedback is sent.
//
// One Buffer exists per join input side; it stores MNSs detected on inputs
// of that side and is probed by arrivals on the opposite side.
type Buffer struct {
	name    string
	acct    *metrics.Account
	entries []*MNS
	byKey   map[string]*MNS
	// groups index MNSs by the opposite-side attributes their predicates
	// test, hashing the expected values, so probing an arrival is O(#
	// attribute sets) — the hash organization the paper suggests for the
	// MNS buffer (Sec. III-A). groupList mirrors the map in creation
	// order: probes iterate the slice so the set AND order of resumed
	// MNSs is deterministic (DESIGN.md §2).
	groups    map[string]*probeGroup
	groupList []*probeGroup
	empty     *MNS // Ø, matched by every opposite arrival
	// Deadline cache (DESIGN.md §4): earliest expiry among buffered MNSs,
	// exact on insertion, lazily recomputed after removals and extensions.
	expiryMin   stream.Time
	expiryDirty bool
}

// probeGroup hashes MNSs sharing one opposite-attribute set.
type probeGroup struct {
	attrs []predicate.Attr // opposite-side attributes, probe key order
	byVal map[string][]*MNS
}

// probeKey derives the opposite attributes and expected values of an MNS
// from its predicates, in canonical order.
func probeKey(m *MNS) (attrs []predicate.Attr, vals []stream.Value) {
	type av struct {
		a predicate.Attr
		v stream.Value
	}
	list := make([]av, 0, len(m.Preds))
	for _, p := range m.Preds {
		var sigAttr, oppAttr predicate.Attr
		if m.Sources.Has(p.Left) {
			sigAttr = predicate.Attr{Source: p.Left, Col: p.LCol}
			oppAttr = predicate.Attr{Source: p.Right, Col: p.RCol}
		} else {
			sigAttr = predicate.Attr{Source: p.Right, Col: p.RCol}
			oppAttr = predicate.Attr{Source: p.Left, Col: p.LCol}
		}
		list = append(list, av{oppAttr, m.sigVal(sigAttr)})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].a.Source != list[j].a.Source {
			return list[i].a.Source < list[j].a.Source
		}
		if list[i].a.Col != list[j].a.Col {
			return list[i].a.Col < list[j].a.Col
		}
		return list[i].v < list[j].v
	})
	for _, e := range list {
		attrs = append(attrs, e.a)
		vals = append(vals, e.v)
	}
	return attrs, vals
}

func attrsKey(attrs []predicate.Attr) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("%d.%d", a.Source, a.Col)
	}
	return strings.Join(parts, ";")
}

func valsKey(vals []stream.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ";")
}

// NewBuffer creates an empty MNS buffer charging memory to acct.
func NewBuffer(name string, acct *metrics.Account) *Buffer {
	return &Buffer{name: name, acct: acct, byKey: make(map[string]*MNS), groups: make(map[string]*probeGroup)}
}

// Len returns the number of buffered MNSs.
func (b *Buffer) Len() int { return len(b.entries) }

// Has reports whether an MNS with the same signature is already buffered —
// used by the consumer to avoid re-sending suspension feedback for
// sub-tuples that are already covered (queued super-tuples, Sec. III-B).
func (b *Buffer) Has(key string) bool {
	_, ok := b.byKey[key]
	return ok
}

// Add inserts an MNS. If an MNS with the same signature is present, the one
// with the later expiry wins and the other is dropped; the retained
// descriptor is returned along with whether the buffer changed.
func (b *Buffer) Add(m *MNS) (kept *MNS, added bool) {
	if old, ok := b.byKey[m.Key()]; ok {
		if m.Expiry > old.Expiry {
			old.Expiry = m.Expiry
			b.expiryDirty = true // the raised expiry may have been the min
		}
		return old, false
	}
	if len(b.entries) == 0 {
		b.expiryMin, b.expiryDirty = m.Expiry, false
	} else if !b.expiryDirty && m.Expiry < b.expiryMin {
		b.expiryMin = m.Expiry
	}
	b.entries = append(b.entries, m)
	b.byKey[m.Key()] = m
	b.index(m)
	b.acct.Alloc(m.SizeBytes())
	return m, true
}

func (b *Buffer) index(m *MNS) {
	if m.IsEmpty() {
		b.empty = m
		return
	}
	attrs, vals := probeKey(m)
	gk := attrsKey(attrs)
	g := b.groups[gk]
	if g == nil {
		g = &probeGroup{attrs: attrs, byVal: make(map[string][]*MNS)}
		b.groups[gk] = g
		b.groupList = append(b.groupList, g)
	}
	vk := valsKey(vals)
	g.byVal[vk] = append(g.byVal[vk], m)
}

func (b *Buffer) unindex(m *MNS) {
	if m.IsEmpty() {
		if b.empty == m {
			b.empty = nil
		}
		return
	}
	attrs, vals := probeKey(m)
	g := b.groups[attrsKey(attrs)]
	if g == nil {
		return
	}
	vk := valsKey(vals)
	list := g.byVal[vk]
	for i, x := range list {
		if x == m {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(g.byVal, vk)
	} else {
		g.byVal[vk] = list
	}
}

// InvalidateMinCaches forces the next NextExpiry read to recompute exactly
// (see Blacklist.InvalidateMinCaches for why shared MNS descriptors make
// this necessary).
func (b *Buffer) InvalidateMinCaches() { b.expiryDirty = len(b.entries) > 0 }

// NextExpiry returns the earliest expiry among buffered MNSs, or NoExpiry
// when the buffer holds nothing that can expire — its contribution to the
// operator's sweep deadline (DESIGN.md §4).
func (b *Buffer) NextExpiry() stream.Time {
	if len(b.entries) == 0 {
		return NoExpiry
	}
	if b.expiryDirty {
		b.expiryDirty = false
		b.expiryMin = NoExpiry
		for _, m := range b.entries {
			if m.Expiry < b.expiryMin {
				b.expiryMin = m.Expiry
			}
		}
	}
	return b.expiryMin
}

// Purge drops expired MNSs and returns how many were removed.
func (b *Buffer) Purge(now stream.Time) int {
	kept := b.entries[:0]
	n := 0
	b.expiryDirty = false
	for _, m := range b.entries {
		if m.Expiry <= now {
			delete(b.byKey, m.Key())
			b.unindex(m)
			b.acct.Free(m.SizeBytes())
			n++
			continue
		}
		if len(kept) == 0 || m.Expiry < b.expiryMin {
			b.expiryMin = m.Expiry
		}
		kept = append(kept, m)
	}
	for i := len(kept); i < len(b.entries); i++ {
		b.entries[i] = nil
	}
	b.entries = kept
	return n
}

// Probe finds every buffered MNS matched by the arriving opposite-side
// composite t, removes them from the buffer, and returns them (the Π set of
// Process_Input). The comparison count is returned for cost accounting.
func (b *Buffer) Probe(t *stream.Composite) (matched []*MNS, comparisons int) {
	if b.empty != nil {
		matched = append(matched, b.empty)
	}
	for _, g := range b.groupList {
		comparisons += len(g.attrs)
		key, ok := compositeValsKey(g.attrs, t)
		if !ok {
			continue
		}
		matched = append(matched, g.byVal[key]...)
	}
	if len(matched) == 0 {
		return nil, comparisons
	}
	b.expiryDirty = true
	for _, m := range matched {
		delete(b.byKey, m.Key())
		b.unindex(m)
		b.acct.Free(m.SizeBytes())
	}
	kept := b.entries[:0]
	taken := make(map[*MNS]bool, len(matched))
	for _, m := range matched {
		taken[m] = true
	}
	for _, m := range b.entries {
		if taken[m] {
			continue
		}
		kept = append(kept, m)
	}
	for i := len(kept); i < len(b.entries); i++ {
		b.entries[i] = nil
	}
	b.entries = kept
	return matched, comparisons
}

// compositeValsKey renders t's values at the given attributes; ok is false
// when t lacks one of the sources (the predicate cannot be confirmed, so
// the MNS is not matched — same semantics as MNS.MatchedByOpposite).
func compositeValsKey(attrs []predicate.Attr, t *stream.Composite) (string, bool) {
	var sb strings.Builder
	for i, a := range attrs {
		c := t.Comp(a.Source)
		if c == nil {
			return "", false
		}
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%d", c.Vals[a.Col])
	}
	return sb.String(), true
}

// Snapshot returns the buffered MNSs, for tests.
func (b *Buffer) Snapshot() []*MNS { return append([]*MNS(nil), b.entries...) }
