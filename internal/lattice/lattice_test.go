package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyObservations(t *testing.T) {
	l := New(3)
	// No opposite tuples observed at all: every Level-1 node alive → the
	// three atoms are the MNSs (higher nodes non-minimal).
	got := l.MNSes()
	if len(got) != 3 {
		t.Fatalf("want 3 level-1 MNSs, got %v", got)
	}
}

func TestFullMatchKillsAll(t *testing.T) {
	l := New(3)
	l.ObserveAllDead()
	if got := l.MNSes(); len(got) != 0 {
		t.Fatalf("full match must leave no MNS, got %v", got)
	}
}

// TestPaperExample reproduces the e1/e2 example of Sec. IV-A: e1 matches
// atom a only, e2 matches atom c only. Nodes a and c die; node ac stays
// alive (no single tuple matches both) and is reported as an MNS along with
// the untouched atoms b and d.
func TestPaperExample(t *testing.T) {
	// atoms: a=bit0, b=bit1, c=bit2, d=bit3
	l := New(4)
	l.Observe(0b0001) // e1 matches a
	l.Observe(0b0100) // e2 matches c
	got := l.MNSes()
	want := map[uint32]bool{0b0010: true, 0b1000: true, 0b0101: true} // b, d, ac
	if len(got) != len(want) {
		t.Fatalf("got %b want %v", got, want)
	}
	for _, m := range got {
		if !want[m] {
			t.Fatalf("unexpected MNS %b", m)
		}
	}
}

func TestMinimality(t *testing.T) {
	// If atom a never matches, a is an MNS and no superset may be reported.
	l := New(3)
	l.Observe(0b110) // b and c match together; a never does
	got := l.MNSes()
	if len(got) != 1 || got[0] != 0b001 {
		t.Fatalf("want only {a}, got %b", got)
	}
}

// TestAgainstBruteForce cross-checks Identify_MNS with the independent
// reference implementation over random observation sets.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		m := 1 + rng.Intn(5)
		nObs := rng.Intn(8)
		l := New(m)
		var obs []uint32
		full := uint32(1)<<uint(m) - 1
		for i := 0; i < nObs; i++ {
			mask := uint32(rng.Intn(int(full) + 1))
			obs = append(obs, mask)
			l.Observe(mask)
		}
		got := l.MNSes()
		want := BruteMNS(m, obs)
		if len(got) != len(want) {
			t.Fatalf("m=%d obs=%b: got %b want %b", m, obs, got, want)
		}
		wantSet := map[uint32]bool{}
		for _, w := range want {
			wantSet[w] = true
		}
		for _, g := range got {
			if !wantSet[g] {
				t.Fatalf("m=%d obs=%b: unexpected MNS %b (want %b)", m, obs, g, want)
			}
		}
	}
}

// TestMNSInvariants checks the defining properties on random inputs via
// testing/quick: every reported MNS is alive (contained in no observation)
// and minimal (every strict subset is dead).
func TestMNSInvariants(t *testing.T) {
	f := func(seed int64, nObs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		full := uint32(1)<<uint(m) - 1
		l := New(m)
		var obs []uint32
		for i := 0; i < int(nObs%6); i++ {
			mask := uint32(rng.Intn(int(full) + 1))
			obs = append(obs, mask)
			l.Observe(mask)
		}
		contained := func(mask uint32) bool {
			for _, o := range obs {
				if mask&^o == 0 {
					return true
				}
			}
			return false
		}
		for _, mns := range l.MNSes() {
			if contained(mns) {
				return false // not alive
			}
			for b := mns; b != 0; b &= b - 1 {
				sub := mns &^ (b & -b)
				if sub != 0 && !contained(sub) {
					return false // a strict subset is alive → not minimal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsAccounting(t *testing.T) {
	l := New(3)
	before := l.Ops()
	l.Observe(0b101)
	if l.Ops() <= before {
		t.Fatal("observe must charge node evaluations")
	}
}

func TestBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for m=0")
		}
	}()
	New(0)
}
