// Package lattice implements the CNS (candidate non-demanded sub-tuple)
// lattice and the Identify_MNS algorithm of Fig. 8 in the paper.
//
// The lattice is built over the m components ("atoms") of a consumer input
// that participate in the consumer's join predicate. Each node is a subset
// of atoms, encoded as a bitmask; node levels are popcounts. For each tuple
// t' of the opposite operator state the caller supplies the set of atoms
// individually matched by t' (property (ii) of the paper: a node matches t'
// iff all its Level-1 descendants do, i.e. iff node ⊆ matchedAtoms). A node
// that matches some t' is dead; after all of S_o is observed, the minimal
// alive nodes are the MNSs.
//
// Node evaluations are charged to metrics.Counters.LatticeNodes — lattice
// work is part of JIT's honest overhead in the reproduced figures
// (RESULTS.md). The Bloom filters of internal/bloom are the paper's
// cheaper, approximate alternative to this exact lattice (the Bloom-JIT
// mode).
package lattice

// MaxAtoms bounds the lattice size; beyond it callers should fall back to
// Level-1-only detection (the paper permits partial MNS detection).
const MaxAtoms = 16

// Lattice tracks dead/alive status for every non-empty subset of m atoms.
type Lattice struct {
	m    int
	dead []bool // indexed by mask 1..(1<<m)-1; index 0 unused
	ops  uint64 // node evaluations performed (cost accounting)
}

// New creates a lattice over m atoms (1 <= m <= MaxAtoms).
func New(m int) *Lattice {
	if m < 1 || m > MaxAtoms {
		panic("lattice: atom count out of range")
	}
	return &Lattice{m: m, dead: make([]bool, 1<<uint(m))}
}

// Atoms returns the number of atoms.
func (l *Lattice) Atoms() int { return l.m }

// Ops returns the number of node evaluations performed so far, for cost
// accounting.
func (l *Lattice) Ops() uint64 { return l.ops }

// Observe processes one opposite-state tuple, given the bitmask of atoms it
// matches. Following Fig. 8 lines 6-10, every node contained in matchedAtoms
// is marked matched and therefore dead. The loop literally visits every
// node, mirroring the per-node cost of the published algorithm.
func (l *Lattice) Observe(matchedAtoms uint32) {
	full := uint32(1)<<uint(l.m) - 1
	matchedAtoms &= full
	for mask := uint32(1); mask <= full; mask++ {
		l.ops++
		if mask&^matchedAtoms == 0 {
			l.dead[mask] = true
		}
	}
}

// ObserveAllDead is a shortcut for a full match (every atom matched): every
// node dies. Used when the probe already established a complete match.
func (l *Lattice) ObserveAllDead() {
	l.Observe(uint32(1)<<uint(l.m) - 1)
}

// MNSes runs Fig. 8 lines 11-14: report alive Level-1 nodes as MNSs, then
// walk higher levels in order, reporting an alive node as MNS unless one of
// its children is an MNS or non-minimal. Returned masks are in ascending
// level, then ascending mask, order.
func (l *Lattice) MNSes() []uint32 {
	full := uint32(1)<<uint(l.m) - 1
	isMNS := make([]bool, full+1)
	nonMin := make([]bool, full+1)
	var out []uint32

	byLevel := make([][]uint32, l.m+1)
	for mask := uint32(1); mask <= full; mask++ {
		lv := popcount(mask)
		byLevel[lv] = append(byLevel[lv], mask)
	}

	for _, mask := range byLevel[1] {
		l.ops++
		if !l.dead[mask] {
			isMNS[mask] = true
			out = append(out, mask)
		}
	}
	for lv := 2; lv <= l.m; lv++ {
		for _, mask := range byLevel[lv] {
			l.ops++
			if l.dead[mask] {
				continue
			}
			blocked := false
			for b := mask; b != 0; b &= b - 1 {
				child := mask &^ (b & -b)
				if isMNS[child] || nonMin[child] {
					blocked = true
					break
				}
			}
			if blocked {
				nonMin[mask] = true
			} else {
				isMNS[mask] = true
				out = append(out, mask)
			}
		}
	}
	return out
}

// BruteMNS is an independent reference implementation used by tests: given
// the matched-atom masks of every opposite tuple, return the minimal masks
// not contained in any of them.
func BruteMNS(m int, observed []uint32) []uint32 {
	full := uint32(1)<<uint(m) - 1
	alive := func(mask uint32) bool {
		for _, o := range observed {
			if mask&^o == 0 {
				return false
			}
		}
		return true
	}
	var out []uint32
	// Ascending level order so minimality can be checked against output.
	for lv := 1; lv <= m; lv++ {
		for mask := uint32(1); mask <= full; mask++ {
			if popcount(mask) != lv || !alive(mask) {
				continue
			}
			minimal := true
			for _, prev := range out {
				if prev&^mask == 0 { // prev ⊆ mask
					minimal = false
					break
				}
			}
			if minimal {
				out = append(out, mask)
			}
		}
	}
	return out
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
