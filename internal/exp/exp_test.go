package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestTableIIIDefaults verifies the harness encodes the paper's Table III
// default parameters.
func TestTableIIIDefaults(t *testing.T) {
	cfg := Config{Scale: 1, Seed: 1, Modes: DefaultModes()}
	b := DefaultBushyParams(cfg)
	if b.N != 6 || !b.Bushy || b.Window != 20*stream.Minute || b.Rate != 1.0 || b.DMax != 200 {
		t.Fatalf("bushy defaults wrong: %+v", b)
	}
	l := DefaultLeftDeepParams(cfg)
	if l.N != 4 || l.Bushy || l.Window != 10*stream.Minute || l.Rate != 1.0 || l.DMax != 50 || l.LastStreamFactor != 100 {
		t.Fatalf("left-deep defaults wrong: %+v", l)
	}
}

func TestHorizonScaling(t *testing.T) {
	cfg := Config{Scale: 1}
	if h := cfg.horizonFor(20 * stream.Minute); h != 5*stream.Hour {
		t.Fatalf("full scale horizon: %v", h)
	}
	cfg.Scale = 0.001
	if h := cfg.horizonFor(20 * stream.Minute); h < 50*stream.Minute {
		t.Fatalf("floor not applied: %v", h)
	}
	cfg.Horizon = 7 * stream.Minute
	if h := cfg.horizonFor(20 * stream.Minute); h != 7*stream.Minute {
		t.Fatalf("override ignored: %v", h)
	}
}

func TestByID(t *testing.T) {
	for id := 10; id <= 17; id++ {
		if _, ok := ByID(id); !ok {
			t.Fatalf("figure %d missing", id)
		}
	}
	if _, ok := ByID(9); ok {
		t.Fatal("phantom figure")
	}
}

// TestSmallSweepShape runs a reduced Figure-10-style sweep and verifies the
// reproduction contract at the quick preset: equal result counts everywhere
// and JIT at or below REF on cost and memory for the sweep's lower points
// (the quick preset intentionally weakens demand-rarity at the largest
// windows; the full-parameter runs recorded in EXPERIMENTS.md hold at every
// point).
func TestSmallSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	cfg := QuickConfig()
	fig := mustSpec(10).RunXs(cfg, []float64{10, 15, 20})
	// The quick preset weakens demand rarity (see Config.SizeScale), so JIT
	// is allowed a small bookkeeping overhead at the largest point; result
	// counts must be identical everywhere.
	for _, pt := range fig.Points {
		jit, ref := pt.Results["JIT"], pt.Results["REF"]
		if jit.Results != ref.Results {
			t.Errorf("x=%.0f: result counts differ (JIT %d, REF %d)", pt.X, jit.Results, ref.Results)
		}
		if float64(jit.CostUnits) > 1.25*float64(ref.CostUnits) {
			t.Errorf("x=%.0f: JIT cost %d far above REF %d", pt.X, jit.CostUnits, ref.CostUnits)
		}
	}
	var sb strings.Builder
	fig.Render(&sb)
	if !strings.Contains(sb.String(), "cost ratio") {
		t.Fatal("render missing ratio columns")
	}
}

// TestAblationCorrectness runs all four modes on one small configuration
// and checks they agree on the result count.
func TestAblationCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four engines")
	}
	base := Params{
		N: 4, Bushy: true,
		Window: 90 * stream.Second, Rate: 1.0, DMax: 20,
		Horizon: 5 * stream.Minute, Seed: 5,
	}
	var counts []uint64
	for _, nm := range AblationModes() {
		p := base
		p.Mode = nm.Mode
		r := p.Run()
		counts = append(counts, r.Results)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("mode %d result count %d != %d", i, counts[i], counts[0])
		}
	}
}

// TestREFMatchesDOEWithNoEmptyStates checks that DOE only diverges from REF
// through Ø suspensions, which cannot fire once all states are populated:
// with a warm, dense workload the two cost profiles stay close.
func TestREFMatchesDOEWithNoEmptyStates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two engines")
	}
	base := Params{
		N: 3, Bushy: false,
		Window: 60 * stream.Second, Rate: 2.0, DMax: 5,
		Horizon: 4 * stream.Minute, Seed: 3,
	}
	ref, doe := base, base
	ref.Mode, doe.Mode = core.REF(), core.DOE()
	r1, r2 := ref.Run(), doe.Run()
	if r1.Results != r2.Results {
		t.Fatalf("result counts differ: %d vs %d", r1.Results, r2.Results)
	}
}
