package exp

import (
	"strings"
	"testing"

	"repro/internal/stream"
)

// TestParamsValidate pins the CLI-facing validation: each rejected
// configuration names the offending parameter, and the valid baseline
// passes.
func TestParamsValidate(t *testing.T) {
	ok := Params{N: 4, Rate: 1, Window: stream.Minute, DMax: 10, Horizon: stream.Minute}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"one source", func(p *Params) { p.N = 1 }, "sources"},
		{"zero rate", func(p *Params) { p.Rate = 0 }, "rate"},
		{"negative rate", func(p *Params) { p.Rate = -1 }, "rate"},
		{"zero window", func(p *Params) { p.Window = 0 }, "window"},
		{"zero domain", func(p *Params) { p.DMax = 0 }, "domain"},
		{"zero horizon", func(p *Params) { p.Horizon = 0 }, "horizon"},
		{"negative shards", func(p *Params) { p.Shards = -1 }, "shard"},
		{"drain horizon without drain", func(p *Params) { p.DrainHorizon = stream.Minute }, "drain"},
		{"adapt epoch without adapt", func(p *Params) { p.AdaptEpoch = stream.Minute }, "adapt"},
	}
	for _, tc := range cases {
		p := ok
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The drain horizon is legal whenever some path forces the drain on.
	for _, mut := range []func(*Params){
		func(p *Params) { p.Drain = true },
		func(p *Params) { p.Shards = 2 },
		func(p *Params) { p.Adapt = true },
	} {
		p := ok
		p.DrainHorizon = stream.Minute
		mut(&p)
		if err := p.Validate(); err != nil {
			t.Errorf("drain horizon wrongly rejected: %v", err)
		}
	}
}
