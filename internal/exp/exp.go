// Package exp is the experiment harness reproducing the evaluation of
// Sec. VI: one runner per figure (Figures 10-17), each sweeping one
// parameter of Table III over the bushy or left-deep plans of Table II and
// executing JIT and REF (optionally DOE and Bloom-JIT) on identical
// workloads.
//
// Scaling: the paper runs each configuration for 5 hours of application
// time on a 2008-era C++ prototype. Two dimensionless quantities shape the
// figures and are both pinned by the paper's parameter choices: the number
// of join partners each tuple accumulates (λ·w/dmax — how many NPRs exist
// to suppress) and the probability that a suspended sub-tuple is ever
// demanded again (∝ λ·w/dmax² — how often suppression is later undone).
// Scaling w or dmax distorts one of the two, so the faithful harness keeps
// w, λ and dmax at their paper values and scales ONLY the application-time
// horizon: Scale=1 runs the full 5 hours; smaller scales run max(5h·Scale,
// 2.5·w), enough windows for steady-state behaviour while finishing in
// seconds per point. Per-point work is unchanged; only the number of
// processed arrivals shrinks, so the figures' shape (who wins, by what
// factor, and the trend across the sweep) is preserved. When the horizon
// floor still costs too much, Config.SizeScale and Config.DomainScale
// shrink windows and domains at a documented distortion: SizeScale alone
// preserves the partner count and inflates rarity; DomainScale=√SizeScale
// preserves rarity and shrinks the partner pool (the short report preset's
// choice for the bushy figures, internal/report).
package exp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/shard"
	"repro/internal/source"
	"repro/internal/stream"
)

// Params is one experiment configuration (a single run).
type Params struct {
	N      int
	Bushy  bool
	Window stream.Time
	// Rate is λ, tuples per second per source.
	Rate float64
	// DMax is the value-domain upper bound.
	DMax int64
	// LastStreamFactor multiplies the last stream's domain (the paper's
	// low-selectivity left-deep setup feeds stream D, or C when N=3, with
	// values from [1..10²·dmax]). Zero means no override.
	LastStreamFactor int64
	// Horizon is the application-time length of the run.
	Horizon stream.Time
	Seed    int64
	Mode    core.Mode
	// Indexed runs the plan with hash-indexed join states (DESIGN.md §3).
	// The default (false) reproduces the paper's 2008 prototype, whose
	// states are scanned linearly — the execution model all of Figures
	// 10-17 assume. With indexing on, REF's probe cost collapses to the
	// matching pairs and the paper's JIT-vs-REF cost shape no longer
	// holds; see the indexed-vs-scan benchmarks for that comparison.
	Indexed bool
	// Drain keeps firing timer deadlines after the last arrival so results
	// suspended past the end of the stream are still delivered (DESIGN.md
	// §4). Off by default: the figure reproductions compare steady-state
	// overhead and stay bit-identical to the paper harness without it.
	Drain bool
	// DrainHorizon caps the drain when non-zero; zero drains to the natural
	// horizon (last arrival + window).
	DrainHorizon stream.Time
	// Shards, when above 1, runs the plan across key-partitioned engine
	// replicas (internal/shard, DESIGN.md §5) instead of one engine. The
	// merged result is returned; note that broadcast sources are ingested
	// once per shard, so Arrivals and the work counters include that
	// duplication. Drain is forced on — per-shard exact delivery is what
	// makes the shard union equal the single-engine multiset.
	Shards int
	// Adapt runs the engine under adaptive re-optimization (internal/adapt,
	// DESIGN.md §7): the plan may migrate between the bushy and left-deep
	// shapes mid-run on observed feedback. Drain is forced on — the
	// migration handoff requires exact delivery. In sharded runs the
	// replicas migrate in lockstep at epoch barriers.
	Adapt bool
	// AdaptEpoch is the decision-epoch length; zero means one window.
	AdaptEpoch stream.Time
	// AdaptLog, when non-nil, receives the re-optimizer's epoch decisions
	// and migration announcements.
	AdaptLog io.Writer
	// Zipf, when > 1, skews every source's value draws from uniform to a
	// Zipf distribution with this exponent over the same domain (rank 1
	// most frequent) — the hostile-stream skew mutator (DESIGN.md §8).
	// Values in (0, 1] are invalid (Go's Zipf sampler needs exponent > 1).
	Zipf float64
	// Burst, when > 1, runs every source on a regime-switching schedule:
	// rate·Burst during the first half of each BurstPeriod cycle, the base
	// rate during the second half.
	Burst float64
	// BurstPeriod is the burst cycle length; zero means one window.
	BurstPeriod stream.Time
	// Disorder, when > 0, delivers the stream out of timestamp order with
	// delays up to this bound, and gives the engine the same bound for its
	// watermark admission discipline — so the run is exactly equivalent to
	// its in-order sort, with late arrivals beyond the bound counted in
	// Counters.LateDropped (DESIGN.md §8).
	Disorder stream.Time
	// Band, when > 0, replaces every equi-join predicate with its band
	// counterpart |l - r| <= Band. Band joins defeat hash keying and
	// key-partitioned sharding: plans fall back to linear probes and
	// broadcast routing (DESIGN.md §8).
	Band stream.Value
	// KeepResults retains every delivered result in the sink so RunKeys can
	// return the delivery keys — the multiset-equivalence hook of the
	// scenario harness (internal/scenario). Costs O(results) memory.
	KeepResults bool
	// ObsAddr is the live ops endpoint address ("-obs-addr"); recorded here
	// only for flag-combination validation — the CLI owns binding the
	// listener (internal/obs.Serve).
	ObsAddr string
	// ObsAggregate opts a sharded run into per-replica series aggregation on
	// the ops endpoint ("-obs-aggregate"): one tracer per replica, per-shard
	// labels. Validate rejects ObsAddr on a sharded run when this is
	// explicitly off — a single tracer cannot observe N engines.
	ObsAggregate bool
	// Trace attaches an observability tracer to single-engine runs
	// (DESIGN.md §9). Nil (the default) leaves observation disabled — the
	// zero-overhead path.
	Trace *obs.Tracer
	// TraceFor supplies per-replica tracers for sharded runs (one tracer per
	// replica; nil returns leave that replica untraced). Ignored by
	// single-engine runs.
	TraceFor func(shard int) *obs.Tracer
}

// Validate rejects configurations the engine would otherwise accept
// silently or fail on obscurely; the CLI front-ends (jitrun, jitbench)
// surface the returned error before running anything.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("need at least 2 sources (N=%d)", p.N)
	case p.Rate <= 0:
		return fmt.Errorf("arrival rate must be positive (rate=%g)", p.Rate)
	case p.Window <= 0:
		return fmt.Errorf("window must be positive (window=%v)", p.Window)
	case p.DMax < 1:
		return fmt.Errorf("value domain must be at least 1 (dmax=%d)", p.DMax)
	case p.Horizon <= 0:
		return fmt.Errorf("horizon must be positive (horizon=%v)", p.Horizon)
	case p.Shards < 0:
		return fmt.Errorf("shard count cannot be negative (shards=%d)", p.Shards)
	case p.DrainHorizon < 0:
		return fmt.Errorf("drain horizon cannot be negative (%v)", p.DrainHorizon)
	case p.DrainHorizon > 0 && !p.Drain && p.Shards <= 1 && !p.Adapt:
		return fmt.Errorf("drain horizon set but the drain is off (enable -drain)")
	case p.AdaptEpoch < 0:
		return fmt.Errorf("adapt epoch cannot be negative (%v)", p.AdaptEpoch)
	case p.AdaptEpoch > 0 && !p.Adapt:
		return fmt.Errorf("adapt epoch set but adaptation is off (enable -adapt)")
	case p.Zipf != 0 && p.Zipf <= 1:
		return fmt.Errorf("zipf exponent must exceed 1 (zipf=%g)", p.Zipf)
	case p.Burst < 0 || (p.Burst > 0 && p.Burst < 1):
		return fmt.Errorf("burst factor must be at least 1 (burst=%g)", p.Burst)
	case p.BurstPeriod < 0:
		return fmt.Errorf("burst period cannot be negative (%v)", p.BurstPeriod)
	case p.BurstPeriod > 0 && p.Burst <= 1:
		return fmt.Errorf("burst period set but the burst factor is off (set -burst > 1)")
	case p.Disorder < 0:
		return fmt.Errorf("disorder bound cannot be negative (%v)", p.Disorder)
	case p.Band < 0:
		return fmt.Errorf("band tolerance cannot be negative (%d)", p.Band)
	case p.ObsAggregate && p.ObsAddr == "":
		return fmt.Errorf("replica aggregation set but the ops endpoint is off (set -obs-addr)")
	case p.ObsAddr != "" && p.Shards > 1 && !p.ObsAggregate:
		return fmt.Errorf("ops endpoint on a sharded run requires replica aggregation (enable -obs-aggregate)")
	}
	return nil
}

// adaptConfig resolves the re-optimizer configuration for the run.
func (p Params) adaptConfig() adapt.Config {
	epoch := p.AdaptEpoch
	if epoch == 0 {
		epoch = p.Window
	}
	return adapt.Config{Epoch: epoch, Log: p.AdaptLog}
}

// Run executes the configuration and returns the measured results. The
// workload is generated lazily (source.Stream) and ingested through
// engine.RunStream, so memory stays proportional to operator state rather
// than the arrival count. Note WallTime therefore includes tuple
// generation, which the historical materialize-then-run harness excluded;
// CostUnits — the paper's comparison metric — is unaffected. With Shards
// above 1 the run goes through the sharded runner and the merged result is
// returned (see RunSharded).
func (p Params) Run() engine.Result {
	if p.Shards > 1 {
		return p.RunSharded().Merged
	}
	r, _ := p.runSingle()
	return r
}

// RunKeys executes like Run but retains and returns the delivered result
// keys — the canonical per-result identities (stream.Composite.Key) in
// delivery order (the deterministic merge order for sharded runs) — for
// multiset-equivalence comparison across modes, shard counts and mutator
// stacks (internal/scenario, DESIGN.md §8).
func (p Params) RunKeys() (engine.Result, []string) {
	p.KeepResults = true
	if p.Shards > 1 {
		s := p.RunSharded()
		return s.Merged, s.ResultKeys()
	}
	r, b := p.runSingle()
	return r, b.Sink.ResultKeys()
}

// runSingle executes the single-engine form and returns the built plan
// alongside the result (the plan holds the sink's delivery log when
// KeepResults is set).
func (p Params) runSingle() (engine.Result, *plan.Built) {
	cat, cfg, b := p.build()
	if p.Trace != nil {
		b.SetTrace(p.Trace)
	}
	opts := engine.Options{Drain: p.Drain, Horizon: p.DrainHorizon, Disorder: p.Disorder}
	if p.Adapt {
		// Adaptive execution implies the drain: the migration handoff's
		// lossless-delivery argument rests on exact-delivery mode (§7).
		opts.Drain = true
		c := p.adaptConfig()
		opts.Reopt = adapt.New(c)
	}
	eng := engine.NewWithOptions(b, opts)
	return eng.RunStream(source.Stream(cat, cfg)), b
}

// RunSharded executes the configuration across Shards key-partitioned
// engine replicas (internal/shard, DESIGN.md §5) and returns the full
// sharded result — merged totals plus per-shard breakdown and routing
// counts. Drain is forced on: each shard sees only a key-slice of the
// stream, and per-shard exact delivery is what makes the union over
// shards equal the single-engine result multiset.
func (p Params) RunSharded() shard.Result {
	cat, cfg, b := p.build()
	opts := shard.Options{
		Shards:   p.Shards,
		Engine:   engine.Options{Drain: true, Horizon: p.DrainHorizon, Disorder: p.Disorder},
		TraceFor: p.TraceFor,
	}
	if p.Adapt {
		c := p.adaptConfig()
		opts.Adapt = &c
	}
	runner := shard.New(b, opts)
	return runner.RunStream(source.Stream(cat, cfg))
}

// build constructs the workload config and plan for the configuration,
// applying the hostile-stream mutators (Zipf, Burst, Disorder, Band) on top
// of the paper's uniform clique workload.
func (p Params) build() (*stream.Catalog, source.Config, *plan.Built) {
	cat, conj := predicate.Clique(p.N)
	if p.Band > 0 {
		conj = conj.WithTol(p.Band)
	}
	cfg := source.UniformConfig(p.N, p.Rate, p.DMax, p.Horizon, p.Seed)
	if p.Zipf > 1 || p.Burst > 1 {
		period := p.BurstPeriod
		if period == 0 {
			period = p.Window
		}
		for i := range cfg.Specs {
			if p.Zipf > 1 {
				cfg.Specs[i].Zipf = p.Zipf
			}
			if p.Burst > 1 {
				cfg.Specs[i].BurstFactor = p.Burst
				cfg.Specs[i].BurstPeriod = period
			}
		}
	}
	cfg.Disorder = p.Disorder
	if p.LastStreamFactor > 0 {
		last := p.N - 1
		spec := cfg.Specs[last]
		spec.DMaxByCol = map[int]int64{}
		for c := 0; c < p.N-1; c++ {
			spec.DMaxByCol[c] = p.DMax * p.LastStreamFactor
		}
		cfg.Specs[last] = spec
	}
	var shape *plan.Node
	if p.Bushy {
		shape = plan.Bushy(p.N)
	} else {
		shape = plan.LeftDeep(p.N)
	}
	b := plan.BuildTree(cat, conj, shape, plan.Options{
		Window: p.Window, Mode: p.Mode, NoStateIndex: !p.Indexed,
		KeepResults: p.KeepResults,
	})
	return cat, cfg, b
}

// Build exposes the configuration's catalog, workload config and wired plan
// without running anything — for harnesses that drive the plan directly
// (the checkpoint round-trip property test feeds prefixes and snapshots the
// cut itself).
func (p Params) Build() (*stream.Catalog, source.Config, *plan.Built) {
	return p.build()
}

// NamedMode pairs a label with an operator mode.
type NamedMode struct {
	Name string
	Mode core.Mode
}

// DefaultModes is the paper's comparison: JIT vs REF.
func DefaultModes() []NamedMode {
	return []NamedMode{{"JIT", core.JIT()}, {"REF", core.REF()}}
}

// AblationModes adds the DOE and Bloom-detection variants.
func AblationModes() []NamedMode {
	return []NamedMode{
		{"JIT", core.JIT()},
		{"REF", core.REF()},
		{"DOE", core.DOE()},
		{"Bloom", core.BloomJIT()},
	}
}

// Config drives a figure run.
type Config struct {
	// Scale shrinks the application-time horizon (see package doc).
	Scale float64
	// SizeScale, when in (0,1), scales the window AND dmax together. This
	// preserves the partners-per-tuple ratio λ·w/dmax exactly while
	// weakening demand rarity (λ·w/dmax²) by 1/SizeScale — acceptable down
	// to about 0.3, where suspended tuples still overwhelmingly stay
	// suspended. Used by the fast benchmark preset; full reproductions use
	// SizeScale=1. Zero means 1.
	SizeScale float64
	// DomainScale, when in (0,1], scales dmax independently; SizeScale then
	// scales only the windows. Zero follows SizeScale. Setting DomainScale
	// to √SizeScale preserves the demand-rarity ratio λ·w/dmax² exactly
	// while the partner count λ·w/dmax shrinks by √SizeScale — the scaling
	// the short report preset uses on the bushy figures (internal/report),
	// where distorted rarity, not the partner pool, is what flips the
	// JIT-vs-REF shape at quick sizes.
	DomainScale float64
	Seed        int64
	Modes       []NamedMode
	// Horizon overrides the default 5-hour (scaled) application time when
	// non-zero.
	Horizon stream.Time
	// Indexed runs every point with hash-indexed join states instead of
	// the paper's linear scans (see Params.Indexed).
	Indexed bool
	// Shards runs every point across key-partitioned engine replicas when
	// above 1 (see Params.Shards). Broadcast duplication then inflates the
	// work counters relative to the single-engine figures, so sharded
	// sweeps measure scaling, not the paper's JIT-vs-REF overhead shape.
	Shards int
	// Zipf, Burst, BurstPeriod, Disorder and Band apply the hostile-stream
	// mutators (DESIGN.md §8) to every point; see the Params fields of the
	// same names. Hostile sweeps probe robustness, not the paper's figure
	// shapes — expect CheckShape deviations under them.
	Zipf        float64
	Burst       float64
	BurstPeriod stream.Time
	Disorder    stream.Time
	Band        stream.Value
}

// DefaultConfig runs JIT vs REF at one-tenth horizon scale, seed 1.
func DefaultConfig() Config {
	return Config{Scale: 0.1, Seed: 1, Modes: DefaultModes()}
}

// QuickConfig is the fast preset used by the go-test benchmarks: windows
// and domains at 30% size, horizon floored at 2.5 windows.
func QuickConfig() Config {
	return Config{Scale: 0.001, SizeScale: 0.3, Seed: 1, Modes: DefaultModes()}
}

func (c Config) sizeScale() float64 {
	if c.SizeScale <= 0 || c.SizeScale > 1 {
		return 1
	}
	return c.SizeScale
}

// sizeW scales a window per SizeScale.
func (c Config) sizeW(w stream.Time) stream.Time {
	return stream.Time(math.Round(float64(w) * c.sizeScale()))
}

// sizeD scales a domain per DomainScale, falling back to SizeScale.
func (c Config) sizeD(d int64) int64 {
	scale := c.sizeScale()
	if c.DomainScale > 0 && c.DomainScale <= 1 {
		scale = c.DomainScale
	}
	s := int64(math.Round(float64(d) * scale))
	if s < 2 {
		s = 2
	}
	return s
}

// horizonFor computes the application-time horizon for a run with the given
// window: the scaled 5-hour horizon, floored at 2.5 windows so every run
// reaches steady state.
func (c Config) horizonFor(w stream.Time) stream.Time {
	if c.Horizon > 0 {
		return c.Horizon
	}
	h := stream.Time(math.Round(float64(5*stream.Hour) * c.Scale))
	if min := w*5/2 + 1; h < min {
		h = min
	}
	return h
}

// Point is one x-position of a figure with the per-mode results.
type Point struct {
	X       float64
	Results map[string]engine.Result
}

// Figure is a reproduced evaluation figure: CPU and memory as a function of
// one swept parameter, for each mode.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Modes  []string
	Points []Point
}

// bushyBase returns the bushy-plan defaults of Table III (w=20min, λ=1,
// N=6, dmax=200), scaled.
func (c Config) bushyBase() Params {
	return Params{
		N:      6,
		Bushy:  true,
		Window: 20 * stream.Minute,
		Rate:   1.0,
		DMax:   200,
	}
}

// leftDeepBase returns the left-deep defaults of Table III (w=10min, λ=1,
// N=4, dmax=50, last stream fed from [1..10²·dmax]), scaled.
func (c Config) leftDeepBase() Params {
	return Params{
		N:                4,
		Bushy:            false,
		Window:           10 * stream.Minute,
		Rate:             1.0,
		DMax:             50,
		LastStreamFactor: 100,
	}
}

// Render prints the figure in the paper's two-panel structure: CPU cost and
// peak memory per x-value and mode, plus the JIT/REF improvement factors.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, m := range f.Modes {
		fmt.Fprintf(w, " %14s %14s %12s", m+" cost", m+" cpu(ms)", m+" mem(KB)")
	}
	if f.hasModes("JIT", "REF") {
		fmt.Fprintf(w, " %10s %10s", "cost ratio", "mem ratio")
	}
	fmt.Fprintln(w)
	for _, pt := range f.Points {
		fmt.Fprintf(w, "%-12.1f", pt.X)
		for _, m := range f.Modes {
			r := pt.Results[m]
			fmt.Fprintf(w, " %14d %14.1f %12.1f", r.CostUnits, float64(r.WallTime.Microseconds())/1000, r.PeakMemKB)
		}
		if f.hasModes("JIT", "REF") {
			jit, ref := pt.Results["JIT"], pt.Results["REF"]
			fmt.Fprintf(w, " %10.2f %10.2f",
				ratio(float64(ref.CostUnits), float64(jit.CostUnits)),
				ratio(ref.PeakMemKB, jit.PeakMemKB))
		}
		fmt.Fprintln(w)
	}
}

func (f *Figure) hasModes(names ...string) bool {
	set := map[string]bool{}
	for _, m := range f.Modes {
		set[m] = true
	}
	for _, n := range names {
		if !set[n] {
			return false
		}
	}
	return true
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// CheckShape verifies the reproduction contract for a JIT-vs-REF figure:
// JIT never exceeds REF in cost units or peak memory, and both systems
// produce identical result counts at every point. It returns a list of
// violations (empty means the shape holds).
func (f *Figure) CheckShape() []string {
	var bad []string
	for _, pt := range f.Points {
		jit, okJ := pt.Results["JIT"]
		ref, okR := pt.Results["REF"]
		if !okJ || !okR {
			continue
		}
		if jit.Results != ref.Results {
			bad = append(bad, fmt.Sprintf("%s x=%.1f: result counts differ (JIT %d, REF %d)", f.ID, pt.X, jit.Results, ref.Results))
		}
		if jit.CostUnits > ref.CostUnits {
			bad = append(bad, fmt.Sprintf("%s x=%.1f: JIT cost %d > REF %d", f.ID, pt.X, jit.CostUnits, ref.CostUnits))
		}
		if jit.PeakMemKB > ref.PeakMemKB*1.02 {
			bad = append(bad, fmt.Sprintf("%s x=%.1f: JIT mem %.1f > REF %.1f", f.ID, pt.X, jit.PeakMemKB, ref.PeakMemKB))
		}
	}
	return bad
}

// DefaultBushyParams exposes the Table III bushy defaults for tests.
func DefaultBushyParams(cfg Config) Params { return cfg.bushyBase() }

// DefaultLeftDeepParams exposes the Table III left-deep defaults for tests.
func DefaultLeftDeepParams(cfg Config) Params { return cfg.leftDeepBase() }
