package exp_test

import (
	"fmt"

	"repro/internal/exp"
)

// ExampleByID resolves a figure runner and executes a miniature sweep: the
// Horizon override trades fidelity for speed, which is exactly how the
// quick presets and this example keep runs in the sub-second range.
func ExampleByID() {
	run, ok := exp.ByID(10)
	if !ok {
		panic("figure 10 missing")
	}
	cfg := exp.Config{
		Scale:     0.001,
		SizeScale: 0.1,
		Horizon:   30_000, // 30s of application time
		Seed:      1,
		Modes:     []exp.NamedMode{{Name: "REF", Mode: exp.DefaultModes()[1].Mode}},
	}
	fig := run(cfg)
	fmt.Println(fig.ID, "points:", len(fig.Points))
	fmt.Println("modes:", fig.Modes)
	// Output:
	// fig10 points: 5
	// modes: [REF]
}

// ExampleDefaultModes lists the paper's primary comparison.
func ExampleDefaultModes() {
	for _, nm := range exp.DefaultModes() {
		fmt.Println(nm.Name)
	}
	// Output:
	// JIT
	// REF
}
