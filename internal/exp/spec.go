package exp

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/stream"
)

// Spec declaratively describes one reproduced evaluation figure: which
// Table III base it starts from (bushy or left-deep), which parameter the
// figure sweeps, and the x-grid of Sec. VI. The figure runners (Fig10–
// Fig17, All, ByID) and the report harness (internal/report) both consume
// the same specs, so the sweep grid has exactly one definition.
type Spec struct {
	// ID is the paper's figure number (10..17).
	ID int
	// Name is the stable slug used in output artifacts ("fig10").
	Name string
	// Title and XLabel match the paper's axis captions.
	Title  string
	XLabel string
	// Xs is the full sweep grid of the swept parameter, in the paper's
	// order (ascending).
	Xs []float64
	// LeftDeep selects the left-deep Table III base; false means bushy.
	LeftDeep bool
	// Apply writes the swept x-value into the base parameters.
	Apply func(p *Params, x float64)
	// ShortSizeScale / ShortDomainScale, when non-zero, override the short
	// report preset's per-shape scaling for THIS figure (internal/report):
	// a figure whose suspension economics are distorted by the shape-wide
	// default can pin its own faithful-but-cheap point. Zero keeps the
	// preset default.
	ShortSizeScale   float64
	ShortDomainScale float64
	// ShortXs, when non-nil, overrides the short preset's first/middle/last
	// x-grid subset for this figure — e.g. trading an expensive extreme
	// point for a cheaper one the scaled workload reproduces faithfully.
	ShortXs []float64
}

func setWindowMin(p *Params, x float64) { p.Window = stream.Time(x * float64(stream.Minute)) }
func setRate(p *Params, x float64)      { p.Rate = x }
func setN(p *Params, x float64)         { p.N = int(x) }
func setDMax(p *Params, x float64)      { p.DMax = int64(x) }

// Specs returns the eight figure specifications of Sec. VI in ascending
// figure order. The slice is freshly allocated; callers may reorder it.
func Specs() []Spec {
	return []Spec{
		{ID: 10, Name: "fig10", Title: "Overhead vs window size w (bushy plan)",
			XLabel: "w (min)", Xs: []float64{10, 15, 20, 25, 30}, Apply: setWindowMin},
		{ID: 11, Name: "fig11", Title: "Overhead vs stream rate λ (bushy plan)",
			XLabel: "λ (tuples/sec)", Xs: []float64{0.4, 0.7, 1.0, 1.3, 1.6}, Apply: setRate},
		{ID: 12, Name: "fig12", Title: "Overhead vs number of sources N (bushy plan)",
			XLabel: "N", Xs: []float64{4, 5, 6, 7, 8}, Apply: setN},
		{ID: 13, Name: "fig13", Title: "Overhead vs max data value dmax (bushy plan)",
			XLabel: "dmax", Xs: []float64{100, 150, 200, 250, 300}, Apply: setDMax},
		{ID: 14, Name: "fig14", Title: "Overhead vs window size w (left-deep plan)",
			XLabel: "w (min)", Xs: []float64{5, 7.5, 10, 12.5, 15}, LeftDeep: true, Apply: setWindowMin},
		{ID: 15, Name: "fig15", Title: "Overhead vs stream rate λ (left-deep)",
			XLabel: "λ (tuples/sec)", Xs: []float64{0.4, 0.7, 1.0, 1.3, 1.6}, LeftDeep: true, Apply: setRate},
		{ID: 16, Name: "fig16", Title: "Overhead vs number of sources N (left-deep)",
			XLabel: "N", Xs: []float64{3, 4, 5, 6}, LeftDeep: true, Apply: setN,
			// The short preset keeps the two mid-grid points at a scaling
			// tuned for them: the N sweep's extremes invert JIT-vs-REF in
			// this reproduction even at paper-faithful sizes, so no shrink
			// can make them match — see RESULTS.md and the ROADMAP's
			// short-preset item. ×0.48 windows with ×0.40 domains keeps
			// N=4/5 faithful (JIT below REF, REF rising) and cheap.
			//
			// Root cause, measured (TestLeftDeepInversionStudy,
			// internal/scenario): at both extremes JIT's machinery cost is
			// 90–100% Identify_MNS lattice walks (share 0.90 at N=6), and
			// suspension never pays for itself on this workload — the probes
			// it suppresses save less than resumption catch-up joins add
			// back, so JIT's BASE join work exceeds REF's (3.7× at N=6
			// uniform; ~22k suspensions against ~21k MNS detections is
			// detection thrash, not savings). Zipf skew flattens the N=3
			// ratio (2.99 uniform → 1.82 at s=2.0) by collapsing detections
			// (30,781 → 2,882) and amortizing machinery over a hotter base —
			// not by turning the payback positive.
			ShortXs: []float64{4, 5}, ShortSizeScale: 0.48, ShortDomainScale: 0.40},
		{ID: 17, Name: "fig17", Title: "Overhead vs max data value dmax (left-deep)",
			XLabel: "dmax", Xs: []float64{30, 40, 50, 60, 70}, LeftDeep: true, Apply: setDMax},
	}
}

// SpecByID returns the spec for one figure number (10..17).
func SpecByID(id int) (Spec, bool) {
	specs := Specs()
	i := sort.Search(len(specs), func(i int) bool { return specs[i].ID >= id })
	if i < len(specs) && specs[i].ID == id {
		return specs[i], true
	}
	return Spec{}, false
}

// Base returns the spec's Table III defaults (unscaled, mode-less).
func (s Spec) Base(cfg Config) Params {
	if s.LeftDeep {
		return cfg.leftDeepBase()
	}
	return cfg.bushyBase()
}

// ParamsAt resolves one grid cell into fully-specified run parameters:
// base defaults, the swept x-value, the mode, and the config's seed,
// scaling and execution toggles.
func (s Spec) ParamsAt(cfg Config, nm NamedMode, x float64) Params {
	p := s.Base(cfg)
	s.Apply(&p, x)
	p.Mode = nm.Mode
	p.Seed = cfg.Seed
	p.Indexed = cfg.Indexed
	p.Shards = cfg.Shards
	p.Zipf = cfg.Zipf
	p.Burst = cfg.Burst
	p.BurstPeriod = cfg.BurstPeriod
	p.Disorder = cfg.Disorder
	p.Band = cfg.Band
	p.Window = cfg.sizeW(p.Window)
	p.DMax = cfg.sizeD(p.DMax)
	if p.Horizon == 0 {
		p.Horizon = cfg.horizonFor(p.Window)
	}
	return p
}

// Run executes the figure over its full x-grid.
func (s Spec) Run(cfg Config) *Figure { return s.RunXs(cfg, s.Xs) }

// RunXs executes the figure over an explicit x-grid (a subset of Xs for
// quick presets; any grid is legal).
func (s Spec) RunXs(cfg Config, xs []float64) *Figure {
	fig := &Figure{ID: s.Name, Title: s.Title, XLabel: s.XLabel}
	for _, nm := range cfg.Modes {
		fig.Modes = append(fig.Modes, nm.Name)
	}
	for _, x := range xs {
		pt := Point{X: x, Results: make(map[string]engine.Result, len(cfg.Modes))}
		for _, nm := range cfg.Modes {
			pt.Results[nm.Name] = s.ParamsAt(cfg, nm, x).Run()
		}
		fig.Points = append(fig.Points, pt)
	}
	return fig
}

// Fig10 reproduces Figure 10: overhead vs window size w (bushy plan).
func Fig10(cfg Config) *Figure { return mustSpec(10).Run(cfg) }

// Fig11 reproduces Figure 11: overhead vs stream rate λ (bushy plan).
func Fig11(cfg Config) *Figure { return mustSpec(11).Run(cfg) }

// Fig12 reproduces Figure 12: overhead vs number of sources N (bushy plan).
func Fig12(cfg Config) *Figure { return mustSpec(12).Run(cfg) }

// Fig13 reproduces Figure 13: overhead vs max data value dmax (bushy plan).
func Fig13(cfg Config) *Figure { return mustSpec(13).Run(cfg) }

// Fig14 reproduces Figure 14: overhead vs window size w (left-deep plan).
func Fig14(cfg Config) *Figure { return mustSpec(14).Run(cfg) }

// Fig15 reproduces Figure 15: overhead vs stream rate λ (left-deep plan).
func Fig15(cfg Config) *Figure { return mustSpec(15).Run(cfg) }

// Fig16 reproduces Figure 16: overhead vs number of sources N (left-deep).
func Fig16(cfg Config) *Figure { return mustSpec(16).Run(cfg) }

// Fig17 reproduces Figure 17: overhead vs max data value dmax (left-deep).
func Fig17(cfg Config) *Figure { return mustSpec(17).Run(cfg) }

func mustSpec(id int) Spec {
	s, ok := SpecByID(id)
	if !ok {
		panic("exp: unknown figure spec")
	}
	return s
}

// All runs every figure.
func All(cfg Config) []*Figure {
	var figs []*Figure
	for _, s := range Specs() {
		figs = append(figs, s.Run(cfg))
	}
	return figs
}

// ByID returns the runner for one figure id (10..17).
func ByID(id int) (func(Config) *Figure, bool) {
	s, ok := SpecByID(id)
	if !ok {
		return nil, false
	}
	return s.Run, true
}
