// Package state implements sliding-window operator states: the S_A, S_B,
// S_AB, ... rectangles of the paper's execution plans. A State stores live
// composites in arrival order, purges them when their oldest component
// leaves the window, and hands out *stable sequence numbers* that the JIT
// resumption protocol uses as exact "already joined up to here" cursors.
//
// Sequence discipline (see DESIGN.md §2): every tuple entering one side of a
// join — whether it lands in the active state or is diverted to a blacklist
// — draws a sequence number from that side's single monotonic counter and
// keeps it for life. A suspended tuple's cursor is the opposite side's
// watermark at deactivation; resumption joins it with opposite tuples whose
// sequence exceeds the cursor. This reproduces the paper's worked example
// (a1 re-joined with b2–b4, a2 with b1–b4) and guarantees exactly-once
// result generation.
//
// Hash index (see DESIGN.md §3): a State may additionally be keyed on the
// exact-equi columns of the crossing predicates (SetKey). Entries then live
// both in the arrival-order slice and in per-key-hash buckets, each kept in
// ascending sequence order, so a probe visits only the entries sharing the
// probing tuple's key values (plus hash collisions, which the caller's
// predicate evaluation rejects) via ProbeNext instead of scanning the whole
// state. Entries whose composite lacks a key component fall into a loose
// overflow list that every probe also visits, preserving the vacuous-truth
// semantics of predicate.Eq.Holds.
//
// Band predicates (predicate.Eq.Tol > 0, DESIGN.md §8) never enter a key:
// hash equality would wrongly reject within-band pairs. A mixed conjunction
// keys on its exact-equi subset — the index then over-approximates the
// candidate set and the caller's full predicate evaluation (band atoms
// included) does the final filtering — while a pure-band conjunction yields
// no key at all, leaving the state scan-only. Correctness is unaffected
// either way; only the probe's candidate count degrades, which is exactly
// the degradation BENCH_hostile.json measures.
package state

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// Key is the ordered list of columns whose values form a State's equi-join
// index key. Probing and stored sides use aligned keys (the two halves of
// predicate.Conj.EquiKeyCols), so equal value vectors — exactly the pairs
// satisfying every crossing equi predicate — produce equal hashes.
type Key []predicate.Attr

// FNV-1a constants (64-bit).
const (
	// FNVOffset seeds the value-hash fold (FoldValue).
	FNVOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// FoldValue folds one column value into a running 64-bit FNV-1a hash;
// seed with FNVOffset. It is the single definition of the value hash,
// shared by the §3 state index and the §5 shard router, so a stored
// composite and a routed tuple always hash a value identically.
func FoldValue(h uint64, v stream.Value) uint64 {
	u := uint64(v)
	for i := 0; i < 64; i += 8 {
		h ^= (u >> uint(i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// Hash folds the composite's values at the key columns into a 64-bit FNV-1a
// hash. ok is false when the composite lacks one of the key sources; such
// composites cannot be keyed and take the linear fallback paths (a stored
// one goes to the loose list, a probing one falls back to a full scan).
func (k Key) Hash(c *stream.Composite) (h uint64, ok bool) {
	h = FNVOffset
	for _, a := range k {
		t := c.Comp(a.Source)
		if t == nil {
			return 0, false
		}
		h = FoldValue(h, t.Vals[a.Col])
	}
	return h, true
}

// Entry is a stored composite together with its stable sequence number.
type Entry struct {
	C   *stream.Composite
	Seq uint64
}

// Side is the shared sequence space for one input side of a join: the
// active State and any blacklist entries on that side draw from the same
// counter, so cursors are totally ordered across both.
type Side struct {
	seq uint64
}

// Next draws the next sequence number.
func (s *Side) Next() uint64 {
	s.seq++
	return s.seq
}

// Watermark returns the highest sequence number issued so far.
func (s *Side) Watermark() uint64 { return s.seq }

// State is one sliding-window operator state.
type State struct {
	name    string
	side    *Side
	acct    *metrics.Account
	entries []Entry // arrival order == ascending Seq
	version uint64  // incremented on every mutation (probe-loop resync)
	// Hash index over the equi-join key (nil when the state is scan-only).
	// Buckets and the loose overflow are each kept in ascending Seq order,
	// mirroring the entries slice.
	key     Key
	buckets map[uint64][]Entry
	loose   []Entry // entries whose composite lacks a key component
	// Min-expiry tracking (DESIGN.md §4): minTS caches the smallest MinTS
	// among live entries so the engine's deadline scheduler can ask "when
	// does the next tuple expire" in O(1). The cache is maintained exactly on
	// insertion and recomputed lazily (minDirty) after removals, which only
	// ever raise the true minimum — a stale cache is a safe lower bound.
	minTS    stream.Time
	minDirty bool
}

// New creates a state drawing sequence numbers from side and charging
// memory to acct. Both may be shared with blacklists on the same join side.
func New(name string, side *Side, acct *metrics.Account) *State {
	return &State{name: name, side: side, acct: acct}
}

// Name returns the state's label (e.g. "S_AB").
func (s *State) Name() string { return s.name }

// SetKey configures the hash index over the given key columns. It must be
// called before any entry is inserted; an empty key leaves the state
// scan-only.
func (s *State) SetKey(k Key) {
	if len(s.entries) > 0 {
		panic(fmt.Sprintf("state: SetKey on non-empty state %s", s.name))
	}
	if len(k) == 0 {
		return
	}
	s.key = append(Key(nil), k...)
	s.buckets = make(map[uint64][]Entry)
}

// Indexed reports whether the state maintains a hash index.
func (s *State) Indexed() bool { return s.buckets != nil }

// IndexKey returns the key columns the index is built on (nil if scan-only).
func (s *State) IndexKey() Key { return s.key }

// Side returns the sequence space the state draws from.
func (s *State) Side() *Side { return s.side }

// Len returns the number of live entries.
func (s *State) Len() int { return len(s.entries) }

// Empty reports whether the state holds no live tuples.
func (s *State) Empty() bool { return len(s.entries) == 0 }

// Insert appends a fresh composite, drawing a new sequence number.
func (s *State) Insert(c *stream.Composite) Entry {
	e := Entry{C: c, Seq: s.side.Next()}
	s.version++
	s.noteInsert(e)
	s.entries = append(s.entries, e)
	s.indexInsert(e)
	s.acct.Alloc(c.DeepSizeBytes())
	return e
}

// InvalidateMinCache forces the next MinTS read to recompute exactly (see
// feedback.Blacklist.InvalidateMinCaches for the shared-descriptor rationale
// behind deadline-cache flushing).
func (s *State) InvalidateMinCache() { s.minDirty = len(s.entries) > 0 }

// MinTS returns the smallest MinTS among live entries; ok is false when the
// state is empty. The earliest window-expiry deadline of the state is
// MinTS() + window (see JoinOp.NextDeadline, DESIGN.md §4).
func (s *State) MinTS() (stream.Time, bool) {
	if len(s.entries) == 0 {
		return 0, false
	}
	if s.minDirty {
		s.recomputeMin()
	}
	return s.minTS, true
}

// noteInsert folds a new entry into the min cache.
func (s *State) noteInsert(e Entry) {
	if len(s.entries) == 0 {
		s.minTS, s.minDirty = e.C.MinTS, false
		return
	}
	if !s.minDirty && e.C.MinTS < s.minTS {
		s.minTS = e.C.MinTS
	}
}

// noteRemove invalidates the min cache when the removed entry could be the
// minimum.
func (s *State) noteRemove(e Entry) {
	if !s.minDirty && e.C.MinTS <= s.minTS {
		s.minDirty = true
	}
}

func (s *State) recomputeMin() {
	s.minDirty = false
	for i, e := range s.entries {
		if i == 0 || e.C.MinTS < s.minTS {
			s.minTS = e.C.MinTS
		}
	}
}

// Reinsert places an entry with a pre-drawn sequence number into the state,
// preserving ascending-seq order. Used both for fresh inputs (whose sequence
// is drawn at probe start, before insertion) and for tuples reactivated out
// of a blacklist (which keep their original sequence for life).
func (s *State) Reinsert(e Entry) {
	s.version++
	s.noteInsert(e)
	s.acct.Alloc(e.C.DeepSizeBytes())
	s.entries = insertBySeq(s.entries, e)
	s.indexInsert(e)
}

// insertBySeq places e into the ascending-Seq slice. The common case —
// reactivated tuples are older than the newest live ones — walks back from
// the end to find the insertion point.
func insertBySeq(list []Entry, e Entry) []Entry {
	i := len(list)
	for i > 0 && list[i-1].Seq > e.Seq {
		i--
	}
	list = append(list, Entry{})
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

// seqIndexAfter returns the index of the first entry in the ascending-Seq
// list with sequence strictly greater than seq (binary search).
func seqIndexAfter(list []Entry, seq uint64) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].Seq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// indexInsert mirrors an insertion into the hash index.
func (s *State) indexInsert(e Entry) {
	if s.buckets == nil {
		return
	}
	if h, ok := s.key.Hash(e.C); ok {
		s.buckets[h] = insertBySeq(s.buckets[h], e)
	} else {
		s.loose = insertBySeq(s.loose, e)
	}
}

// indexRemove mirrors a removal. The entry's bucket is recomputed from its
// composite; key values are immutable while stored, so the hash is stable.
func (s *State) indexRemove(e Entry) {
	if s.buckets == nil {
		return
	}
	h, ok := s.key.Hash(e.C)
	if !ok {
		s.loose = removeSeq(s.loose, e.Seq)
		return
	}
	b := removeSeq(s.buckets[h], e.Seq)
	if len(b) == 0 {
		delete(s.buckets, h)
	} else {
		s.buckets[h] = b
	}
}

// removeSeq deletes the entry with the given sequence from an ascending-Seq
// list, if present.
func removeSeq(list []Entry, seq uint64) []Entry {
	i := seqIndexAfter(list, seq-1) // first index with Seq >= seq
	if i < len(list) && list[i].Seq == seq {
		copy(list[i:], list[i+1:])
		list[len(list)-1] = Entry{}
		list = list[:len(list)-1]
	}
	return list
}

// ProbeNext returns the live entry with the lowest sequence number strictly
// greater than after, among the bucket for key hash h and the loose
// (unkeyable) overflow. It re-reads the index on every call, so probe loops
// built on it are resilient to re-entrant insertions and removals without
// version bookkeeping: the next call simply resumes after the last sequence
// processed. Bucket entries may be hash collisions; callers re-evaluate the
// join predicates on every returned entry (DESIGN.md §3).
func (s *State) ProbeNext(h uint64, after uint64) (Entry, bool) {
	var best Entry
	found := false
	if b := s.buckets[h]; len(b) > 0 {
		if i := seqIndexAfter(b, after); i < len(b) {
			best, found = b[i], true
		}
	}
	if len(s.loose) > 0 {
		if i := seqIndexAfter(s.loose, after); i < len(s.loose) && (!found || s.loose[i].Seq < best.Seq) {
			best, found = s.loose[i], true
		}
	}
	return best, found
}

// Purge removes entries whose oldest component has expired: MinTS + w <= now.
// It returns the number purged. Entries are in arrival order but MinTS is
// not monotone in general (a composite's MinTS can predate its arrival), so
// the scan filters rather than truncates a prefix.
func (s *State) Purge(now, window stream.Time) int {
	return s.PurgeRetired(now, window, nil)
}

// PurgeRetired is Purge with a retirement hook: each removed entry is passed
// to retire (when non-nil) before it is dropped. core's exact-delivery mode
// uses it to keep expired entries reachable for late recovery probes — a
// composite released by an upstream resumption can still form pairs REF
// formed live with partners this state has already expired (DESIGN.md §4).
func (s *State) PurgeRetired(now, window stream.Time, retire func(Entry)) int {
	kept := s.entries[:0]
	purged := 0
	s.minDirty = false
	for _, e := range s.entries {
		if e.C.MinTS+window <= now {
			if retire != nil {
				retire(e)
			}
			s.acct.Free(e.C.DeepSizeBytes())
			s.indexRemove(e)
			purged++
			continue
		}
		if len(kept) == 0 || e.C.MinTS < s.minTS {
			s.minTS = e.C.MinTS
		}
		kept = append(kept, e)
	}
	if purged > 0 {
		s.version++
	}
	// Zero the tail so purged composites are collectable.
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = Entry{}
	}
	s.entries = kept
	return purged
}

// Remove deletes the entry holding exactly this composite and returns it
// (with its sequence number) for transfer into a blacklist. The boolean is
// false when the composite is not present.
func (s *State) Remove(c *stream.Composite) (Entry, bool) {
	for i, e := range s.entries {
		if e.C == c {
			s.version++
			s.noteRemove(e)
			s.acct.Free(c.DeepSizeBytes())
			s.indexRemove(e)
			copy(s.entries[i:], s.entries[i+1:])
			s.entries[len(s.entries)-1] = Entry{}
			s.entries = s.entries[:len(s.entries)-1]
			return e, true
		}
	}
	return Entry{}, false
}

// RemoveIf extracts every entry for which pred returns true, preserving
// order among both kept and removed entries.
func (s *State) RemoveIf(pred func(*stream.Composite) bool) []Entry {
	var removed []Entry
	kept := s.entries[:0]
	s.minDirty = false
	for _, e := range s.entries {
		if pred(e.C) {
			removed = append(removed, e)
			s.acct.Free(e.C.DeepSizeBytes())
			s.indexRemove(e)
			continue
		}
		if len(kept) == 0 || e.C.MinTS < s.minTS {
			s.minTS = e.C.MinTS
		}
		kept = append(kept, e)
	}
	if len(removed) > 0 {
		s.version++
	}
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = Entry{}
	}
	s.entries = kept
	return removed
}

// Scan visits every live entry in arrival order. The visitor returns false
// to stop early (used when a suspension feedback aborts an in-progress
// probe, Sec. III-B).
func (s *State) Scan(visit func(Entry) bool) {
	for _, e := range s.entries {
		if !visit(e) {
			return
		}
	}
}

// ScanAfter visits live entries with sequence numbers strictly greater than
// cursor, in arrival order — the resumption catch-up scan.
func (s *State) ScanAfter(cursor uint64, visit func(Entry) bool) {
	for _, e := range s.entries {
		if e.Seq <= cursor {
			continue
		}
		if !visit(e) {
			return
		}
	}
}

// Entries returns a snapshot copy of the live entries, for tests and debug
// dumps.
func (s *State) Entries() []Entry {
	return append([]Entry(nil), s.entries...)
}

// SnapshotLive exports the entries still inside the window at the given cut
// time, in arrival order — the state half of the §2 snapshot cut (DESIGN.md
// §7): a checkpoint or plan migration taken between arrivals needs exactly
// the composites a purge at the cut would keep, and nothing a purge would
// drop. The returned slice is a copy; the composites are shared.
func (s *State) SnapshotLive(cut, window stream.Time) []Entry {
	var out []Entry
	for _, e := range s.entries {
		if e.C.MinTS+window > cut {
			out = append(out, e)
		}
	}
	return out
}

// Version returns the mutation counter. Probe loops snapshot it and, when it
// changes mid-scan (a feedback removed or added entries re-entrantly),
// re-synchronize via IndexAfter on the last processed sequence number.
func (s *State) Version() uint64 { return s.version }

// At returns the i-th live entry in arrival order.
func (s *State) At(i int) Entry { return s.entries[i] }

// IndexAfter returns the index of the first entry with sequence strictly
// greater than seq (binary search over the ascending-seq slice).
func (s *State) IndexAfter(seq uint64) int {
	return seqIndexAfter(s.entries, seq)
}

func (s *State) String() string {
	return fmt.Sprintf("%s[%d]", s.name, len(s.entries))
}
