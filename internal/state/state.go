// Package state implements sliding-window operator states: the S_A, S_B,
// S_AB, ... rectangles of the paper's execution plans. A State stores live
// composites in arrival order, purges them when their oldest component
// leaves the window, and hands out *stable sequence numbers* that the JIT
// resumption protocol uses as exact "already joined up to here" cursors.
//
// Sequence discipline (see DESIGN.md §2): every tuple entering one side of a
// join — whether it lands in the active state or is diverted to a blacklist
// — draws a sequence number from that side's single monotonic counter and
// keeps it for life. A suspended tuple's cursor is the opposite side's
// watermark at deactivation; resumption joins it with opposite tuples whose
// sequence exceeds the cursor. This reproduces the paper's worked example
// (a1 re-joined with b2–b4, a2 with b1–b4) and guarantees exactly-once
// result generation.
package state

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/stream"
)

// Entry is a stored composite together with its stable sequence number.
type Entry struct {
	C   *stream.Composite
	Seq uint64
}

// Side is the shared sequence space for one input side of a join: the
// active State and any blacklist entries on that side draw from the same
// counter, so cursors are totally ordered across both.
type Side struct {
	seq uint64
}

// Next draws the next sequence number.
func (s *Side) Next() uint64 {
	s.seq++
	return s.seq
}

// Watermark returns the highest sequence number issued so far.
func (s *Side) Watermark() uint64 { return s.seq }

// State is one sliding-window operator state.
type State struct {
	name    string
	side    *Side
	acct    *metrics.Account
	entries []Entry // arrival order == ascending Seq
	version uint64  // incremented on every mutation (probe-loop resync)
}

// New creates a state drawing sequence numbers from side and charging
// memory to acct. Both may be shared with blacklists on the same join side.
func New(name string, side *Side, acct *metrics.Account) *State {
	return &State{name: name, side: side, acct: acct}
}

// Name returns the state's label (e.g. "S_AB").
func (s *State) Name() string { return s.name }

// Side returns the sequence space the state draws from.
func (s *State) Side() *Side { return s.side }

// Len returns the number of live entries.
func (s *State) Len() int { return len(s.entries) }

// Empty reports whether the state holds no live tuples.
func (s *State) Empty() bool { return len(s.entries) == 0 }

// Insert appends a fresh composite, drawing a new sequence number.
func (s *State) Insert(c *stream.Composite) Entry {
	e := Entry{C: c, Seq: s.side.Next()}
	s.version++
	s.entries = append(s.entries, e)
	s.acct.Alloc(c.DeepSizeBytes())
	return e
}

// Reinsert places an entry with a pre-drawn sequence number into the state,
// preserving ascending-seq order. Used both for fresh inputs (whose sequence
// is drawn at probe start, before insertion) and for tuples reactivated out
// of a blacklist (which keep their original sequence for life).
func (s *State) Reinsert(e Entry) {
	s.version++
	s.acct.Alloc(e.C.DeepSizeBytes())
	// Common case: reactivated tuples are older than the newest live ones,
	// so walk back from the end to find the insertion point.
	i := len(s.entries)
	for i > 0 && s.entries[i-1].Seq > e.Seq {
		i--
	}
	s.entries = append(s.entries, Entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
}

// Purge removes entries whose oldest component has expired: MinTS + w <= now.
// It returns the number purged. Entries are in arrival order but MinTS is
// not monotone in general (a composite's MinTS can predate its arrival), so
// the scan filters rather than truncates a prefix.
func (s *State) Purge(now, window stream.Time) int {
	kept := s.entries[:0]
	purged := 0
	for _, e := range s.entries {
		if e.C.MinTS+window <= now {
			s.acct.Free(e.C.DeepSizeBytes())
			purged++
			continue
		}
		kept = append(kept, e)
	}
	if purged > 0 {
		s.version++
	}
	// Zero the tail so purged composites are collectable.
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = Entry{}
	}
	s.entries = kept
	return purged
}

// Remove deletes the entry holding exactly this composite and returns it
// (with its sequence number) for transfer into a blacklist. The boolean is
// false when the composite is not present.
func (s *State) Remove(c *stream.Composite) (Entry, bool) {
	for i, e := range s.entries {
		if e.C == c {
			s.version++
			s.acct.Free(c.DeepSizeBytes())
			copy(s.entries[i:], s.entries[i+1:])
			s.entries[len(s.entries)-1] = Entry{}
			s.entries = s.entries[:len(s.entries)-1]
			return e, true
		}
	}
	return Entry{}, false
}

// RemoveIf extracts every entry for which pred returns true, preserving
// order among both kept and removed entries.
func (s *State) RemoveIf(pred func(*stream.Composite) bool) []Entry {
	var removed []Entry
	kept := s.entries[:0]
	for _, e := range s.entries {
		if pred(e.C) {
			removed = append(removed, e)
			s.acct.Free(e.C.DeepSizeBytes())
			continue
		}
		kept = append(kept, e)
	}
	if len(removed) > 0 {
		s.version++
	}
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = Entry{}
	}
	s.entries = kept
	return removed
}

// Scan visits every live entry in arrival order. The visitor returns false
// to stop early (used when a suspension feedback aborts an in-progress
// probe, Sec. III-B).
func (s *State) Scan(visit func(Entry) bool) {
	for _, e := range s.entries {
		if !visit(e) {
			return
		}
	}
}

// ScanAfter visits live entries with sequence numbers strictly greater than
// cursor, in arrival order — the resumption catch-up scan.
func (s *State) ScanAfter(cursor uint64, visit func(Entry) bool) {
	for _, e := range s.entries {
		if e.Seq <= cursor {
			continue
		}
		if !visit(e) {
			return
		}
	}
}

// Entries returns a snapshot copy of the live entries, for tests and debug
// dumps.
func (s *State) Entries() []Entry {
	return append([]Entry(nil), s.entries...)
}

// Version returns the mutation counter. Probe loops snapshot it and, when it
// changes mid-scan (a feedback removed or added entries re-entrantly),
// re-synchronize via IndexAfter on the last processed sequence number.
func (s *State) Version() uint64 { return s.version }

// At returns the i-th live entry in arrival order.
func (s *State) At(i int) Entry { return s.entries[i] }

// IndexAfter returns the index of the first entry with sequence strictly
// greater than seq (binary search over the ascending-seq slice).
func (s *State) IndexAfter(seq uint64) int {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.entries[mid].Seq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (s *State) String() string {
	return fmt.Sprintf("%s[%d]", s.name, len(s.entries))
}
