package state

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// kcomp builds a single-source composite over a 2-source catalog with the
// given key value in column 0.
func kcomp(id uint64, ts stream.Time, val stream.Value) *stream.Composite {
	return stream.NewComposite(2, &stream.Tuple{ID: id, Source: 0, TS: ts, Vals: []stream.Value{val}})
}

// otherComp builds a composite from source 1 — it lacks the key source and
// must land in the loose overflow.
func otherComp(id uint64, ts stream.Time) *stream.Composite {
	return stream.NewComposite(2, &stream.Tuple{ID: id, Source: 1, TS: ts, Vals: []stream.Value{0}})
}

func key0() Key { return Key{{Source: 0, Col: 0}} }

// probeAll drains ProbeNext from cursor 0 and returns the visited seqs.
func probeAll(st *State, h uint64) []uint64 {
	var seqs []uint64
	after := uint64(0)
	for {
		e, ok := st.ProbeNext(h, after)
		if !ok {
			return seqs
		}
		seqs = append(seqs, e.Seq)
		after = e.Seq
	}
}

func TestKeyHash(t *testing.T) {
	k := key0()
	a := kcomp(1, 0, 7)
	b := kcomp(2, 0, 7)
	c := kcomp(3, 0, 8)
	ha, ok := k.Hash(a)
	if !ok {
		t.Fatal("hash of keyed composite failed")
	}
	hb, _ := k.Hash(b)
	hc, _ := k.Hash(c)
	if ha != hb {
		t.Fatal("equal key values must hash equal")
	}
	if ha == hc {
		t.Fatal("distinct key values should hash apart (FNV over distinct int64s)")
	}
	if _, ok := k.Hash(otherComp(4, 0)); ok {
		t.Fatal("hash must fail when the key source is absent")
	}
}

func TestIndexedProbeVisitsBucketInSeqOrder(t *testing.T) {
	st := New("S", &Side{}, &metrics.Account{})
	st.SetKey(key0())
	if !st.Indexed() {
		t.Fatal("SetKey did not enable the index")
	}
	// Interleave two key values plus a loose entry.
	e1 := st.Insert(kcomp(1, 1, 7))
	st.Insert(kcomp(2, 2, 9))
	loose := st.Insert(otherComp(3, 3))
	e4 := st.Insert(kcomp(4, 4, 7))
	h, _ := key0().Hash(kcomp(99, 0, 7))
	got := probeAll(st, h)
	// Bucket for 7 plus the loose entry, ascending seq.
	want := []uint64{e1.Seq, loose.Seq, e4.Seq}
	if len(got) != len(want) {
		t.Fatalf("probe visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probe visited %v, want %v", got, want)
		}
	}
	// Cursor filtering: start after e1.
	if e, ok := st.ProbeNext(h, e1.Seq); !ok || e.Seq != loose.Seq {
		t.Fatalf("ProbeNext after cursor wrong: %v %v", e, ok)
	}
}

func TestIndexMaintenanceOnRemovePurgeReinsert(t *testing.T) {
	st := New("S", &Side{}, &metrics.Account{})
	st.SetKey(key0())
	a := st.Insert(kcomp(1, 10, 7))
	b := st.Insert(kcomp(2, 20, 7))
	h, _ := key0().Hash(a.C)

	// Remove a, probe must only see b.
	if _, ok := st.Remove(a.C); !ok {
		t.Fatal("remove failed")
	}
	if got := probeAll(st, h); len(got) != 1 || got[0] != b.Seq {
		t.Fatalf("after remove: %v", got)
	}
	// Reinsert a with its original seq: probe sees both, in seq order.
	st.Reinsert(a)
	if got := probeAll(st, h); len(got) != 2 || got[0] != a.Seq || got[1] != b.Seq {
		t.Fatalf("after reinsert: %v", got)
	}
	// Purge everything: the bucket must drain with the state.
	st.Purge(10000, 1)
	if got := probeAll(st, h); len(got) != 0 {
		t.Fatalf("ghost entries after purge: %v", got)
	}
}

// TestIndexMatchesScan cross-checks ProbeNext against a filtered ScanAfter
// under randomized insert / remove / purge / reinsert traffic: for every
// key value, the indexed walk must visit exactly the entries a linear scan
// would match, in the same order.
func TestIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := New("S", &Side{}, &metrics.Account{})
	st.SetKey(key0())
	now := stream.Time(0)
	var parked []Entry
	for i := 0; i < 3000; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			now += stream.Time(rng.Intn(3))
			if rng.Intn(10) == 0 {
				st.Insert(otherComp(uint64(i), now))
			} else {
				st.Insert(kcomp(uint64(i), now, stream.Value(rng.Intn(5)+1)))
			}
		case 2:
			st.Purge(now, 40)
		case 3:
			removed := st.RemoveIf(func(c *stream.Composite) bool {
				t := c.Comp(0)
				return t != nil && t.Vals[0] == stream.Value(rng.Intn(5)+1) && rng.Intn(3) == 0
			})
			parked = append(parked, removed...)
		case 4:
			for len(parked) > 0 {
				e := parked[len(parked)-1]
				parked = parked[:len(parked)-1]
				if e.C.MinTS+40 > now {
					st.Reinsert(e)
					break
				}
			}
		}
		if i%100 != 0 {
			continue
		}
		for v := stream.Value(1); v <= 5; v++ {
			probe := kcomp(0, 0, v)
			h, _ := key0().Hash(probe)
			got := probeAll(st, h)
			var want []uint64
			st.Scan(func(e Entry) bool {
				c := e.C.Comp(0)
				if c == nil || c.Vals[0] == v {
					want = append(want, e.Seq)
				}
				return true
			})
			if len(got) < len(want) {
				t.Fatalf("step %d v=%d: indexed walk missed entries: got %v want %v", i, v, got, want)
			}
			// got may contain hash collisions (superset), but must contain
			// want as a subsequence in order; with 5 values collisions are
			// effectively impossible, so demand equality.
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("step %d v=%d: order diverged: got %v want %v", i, v, got, want)
				}
			}
		}
	}
}

func TestSetKeyGuards(t *testing.T) {
	st := New("S", &Side{}, &metrics.Account{})
	st.Insert(kcomp(1, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("SetKey on non-empty state must panic")
		}
	}()
	st.SetKey(key0())
}

func TestSetKeyEmptyLeavesScanOnly(t *testing.T) {
	st := New("S", &Side{}, &metrics.Account{})
	st.SetKey(nil)
	if st.Indexed() {
		t.Fatal("nil key must leave the state scan-only")
	}
	if st.IndexKey() != nil {
		t.Fatal("IndexKey must be nil for scan-only state")
	}
	_ = predicate.Attr{}
}
