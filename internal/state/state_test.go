package state

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stream"
)

func comp(id uint64, ts stream.Time) *stream.Composite {
	return stream.NewComposite(1, &stream.Tuple{ID: id, Source: 0, TS: ts, Vals: []stream.Value{1}})
}

func TestInsertPurge(t *testing.T) {
	acct := &metrics.Account{}
	side := &Side{}
	st := New("S", side, acct)
	for i := 1; i <= 5; i++ {
		st.Insert(comp(uint64(i), stream.Time(i*100)))
	}
	if st.Len() != 5 || acct.Live() == 0 {
		t.Fatalf("len=%d live=%d", st.Len(), acct.Live())
	}
	// window 250: at now=500, tuples with ts <= 250 expire (ts+w <= now).
	purged := st.Purge(500, 250)
	if purged != 2 || st.Len() != 3 {
		t.Fatalf("purged=%d len=%d", purged, st.Len())
	}
	// Accounting balances when everything is purged.
	st.Purge(10000, 1)
	if acct.Live() != 0 {
		t.Fatalf("leaked %d bytes", acct.Live())
	}
}

func TestSequenceStability(t *testing.T) {
	acct := &metrics.Account{}
	side := &Side{}
	st := New("S", side, acct)
	e1 := st.Insert(comp(1, 10))
	e2 := st.Insert(comp(2, 20))
	if e1.Seq >= e2.Seq {
		t.Fatal("sequence not monotonic")
	}
	if side.Watermark() != e2.Seq {
		t.Fatal("watermark wrong")
	}
	// Remove and reinsert preserves seq and order.
	got, ok := st.Remove(e1.C)
	if !ok || got.Seq != e1.Seq {
		t.Fatal("remove lost the seq")
	}
	st.Reinsert(got)
	entries := st.Entries()
	if len(entries) != 2 || entries[0].Seq != e1.Seq || entries[1].Seq != e2.Seq {
		t.Fatalf("reinsert broke order: %v", entries)
	}
}

func TestScanAfterAndIndexAfter(t *testing.T) {
	acct := &metrics.Account{}
	st := New("S", &Side{}, acct)
	var seqs []uint64
	for i := 1; i <= 10; i++ {
		e := st.Insert(comp(uint64(i), stream.Time(i)))
		seqs = append(seqs, e.Seq)
	}
	var got []uint64
	st.ScanAfter(seqs[4], func(e Entry) bool {
		got = append(got, e.Seq)
		return true
	})
	if len(got) != 5 || got[0] != seqs[5] {
		t.Fatalf("ScanAfter wrong: %v", got)
	}
	if st.IndexAfter(seqs[4]) != 5 || st.IndexAfter(0) != 0 || st.IndexAfter(seqs[9]) != 10 {
		t.Fatal("IndexAfter wrong")
	}
	// Early stop.
	n := 0
	st.Scan(func(Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("scan did not stop early: %d", n)
	}
}

func TestRemoveIfAndVersion(t *testing.T) {
	acct := &metrics.Account{}
	st := New("S", &Side{}, acct)
	for i := 1; i <= 6; i++ {
		st.Insert(comp(uint64(i), stream.Time(i)))
	}
	v := st.Version()
	removed := st.RemoveIf(func(c *stream.Composite) bool { return c.Comp(0).ID%2 == 0 })
	if len(removed) != 3 || st.Len() != 3 {
		t.Fatalf("removed=%d len=%d", len(removed), st.Len())
	}
	if st.Version() == v {
		t.Fatal("version not bumped")
	}
	// Order preserved among both.
	for i := 1; i < len(removed); i++ {
		if removed[i-1].Seq >= removed[i].Seq {
			t.Fatal("removed order broken")
		}
	}
}

// TestRandomizedAccounting stresses insert/remove/purge cycles and checks
// the byte accounting never drifts.
func TestRandomizedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	acct := &metrics.Account{}
	st := New("S", &Side{}, acct)
	live := map[*stream.Composite]bool{}
	now := stream.Time(0)
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0:
			now += stream.Time(rng.Intn(5))
			c := comp(uint64(i), now)
			st.Insert(c)
			live[c] = true
		case 1:
			st.Purge(now, 50)
		case 2:
			for c := range live {
				st.Remove(c)
				delete(live, c)
				break
			}
		}
	}
	st.Purge(now+10000, 1)
	if acct.Live() != 0 {
		t.Fatalf("accounting drifted: %d bytes live", acct.Live())
	}
}
