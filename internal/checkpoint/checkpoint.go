// Package checkpoint serializes the §7 snapshot cut to disk and restores it
// — the durability layer under cmd/jitserver (DESIGN.md §10).
//
// A checkpoint is the quiescent-cut state the adaptive re-optimizer already
// computes in memory (plan.Built.SnapshotInWindow, DESIGN.md §7), made
// durable: the plain (ID, source, TS, values) rows of every base tuple still
// inside the window at the cut, plus the two high-water marks recovery needs
// for exactly-once resumption — the last ingested tuple ID (the ingest HWM:
// everything at or below it is already inside this state or expired out of
// it) and the delivered-result count (the delivery HWM: results with
// sequence numbers at or below it are committed and must never be delivered
// again). Alongside the marks it carries the dedup seed: the canonical keys
// of delivered results whose oldest constituent is still in-window at the
// cut — exactly the results a replay can regenerate (anything older lost a
// constituent to expiry and is unreproducible by construction, so the seed
// set is bounded by one window of deliveries, not the run's history).
//
// The same (ID, source, TS, values) serialization doubles as a spill format
// for out-of-core state (PJoin's lineage argument, PAPERS.md): rows are
// self-describing and ordered, so a partial read is a usable prefix.
//
// The encoding is a deterministic line-oriented text format with a CRC-32
// trailer. Determinism matters twice: the round-trip property test compares
// encodings byte-for-byte, and two replicas of the same run write identical
// files. The CRC turns a torn write (a crash mid-checkpoint) into a typed
// decode error instead of silently half-restored state; Store.Save never
// exposes a torn file in the first place (write-tmp, sync, rename), so the
// CRC is the second line of defense, for files damaged after the rename.
package checkpoint

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stream"
)

// Errors returned by Decode; match with errors.Is.
var (
	// ErrCorrupt marks a checkpoint that fails structural or CRC
	// validation — a torn write or bit rot. Store.Latest skips such files
	// and falls back to the previous checkpoint.
	ErrCorrupt = fmt.Errorf("checkpoint: corrupt")
	// ErrVersion marks a checkpoint written by an incompatible format
	// version.
	ErrVersion = fmt.Errorf("checkpoint: unsupported version")
)

// DeliveredKey is one entry of the recovery dedup seed: a delivered result
// that a snapshot replay could regenerate, with the minimum constituent
// timestamp that decides when it ages out of the seed (MinTS + window <= cut
// means no future replay can rebuild it).
type DeliveredKey struct {
	MinTS stream.Time
	Key   string
}

// TailEntry is one retained delivery of the subscriber ring at the cut:
// sequence number, result timestamp, canonical key. The tail is what lets a
// subscriber that had not yet read a committed delivery when the process was
// killed re-read it from the restarted server — without it, a SIGKILL
// between publish and the subscriber's socket read would lose the delivery
// forever (committed in the checkpoint, never received by anyone).
type TailEntry struct {
	Seq uint64
	TS  stream.Time
	Key string
}

// Checkpoint is one durable snapshot cut.
type Checkpoint struct {
	// Cut is the application time of the quiescent cut the snapshot was
	// taken at (between arrivals, deadlines drained to the cut).
	Cut stream.Time
	// IngestHWM is the highest tuple ID ingested before the cut. Recovery
	// skips re-sent tuples at or below it; the ingest greeting tells
	// clients to resume past it.
	IngestHWM uint64
	// Delivered is the number of results delivered to subscribers before
	// the cut — the delivery high-water mark. Sequence numbers at or below
	// it are committed.
	Delivered uint64
	// Config identifies the plan the snapshot belongs to (topology, mode,
	// window, predicates). Restore refuses a checkpoint whose config does
	// not match the server's — replaying rows into a different plan would
	// silently produce wrong state.
	Config string
	// Keys is the recovery dedup seed (see DeliveredKey). Sorted by
	// (MinTS, Key) in the encoding for determinism.
	Keys []DeliveredKey
	// Tail is the subscriber delivery ring at the cut, oldest first, with
	// contiguous sequence numbers ending at Delivered (see TailEntry). The
	// restored server re-seeds its ring from it so committed deliveries stay
	// re-readable across a kill.
	Tail []TailEntry
	// Rows are the in-window base tuples at the cut, in global arrival
	// order — plan.Built.SnapshotInWindow's output, verbatim.
	Rows []*stream.Tuple
}

const header = "jitckpt v1"

// Encode renders the checkpoint in the deterministic text format.
func Encode(c *Checkpoint) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", header)
	fmt.Fprintf(&b, "cut %d\n", c.Cut)
	fmt.Fprintf(&b, "hwm %d\n", c.IngestHWM)
	fmt.Fprintf(&b, "delivered %d\n", c.Delivered)
	fmt.Fprintf(&b, "config %s\n", c.Config)
	keys := append([]DeliveredKey(nil), c.Keys...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].MinTS != keys[j].MinTS {
			return keys[i].MinTS < keys[j].MinTS
		}
		return keys[i].Key < keys[j].Key
	})
	fmt.Fprintf(&b, "keys %d\n", len(keys))
	for _, k := range keys {
		fmt.Fprintf(&b, "k %d %s\n", k.MinTS, k.Key)
	}
	fmt.Fprintf(&b, "tail %d\n", len(c.Tail))
	for _, d := range c.Tail {
		fmt.Fprintf(&b, "d %d %d %s\n", d.Seq, d.TS, d.Key)
	}
	fmt.Fprintf(&b, "rows %d\n", len(c.Rows))
	for _, t := range c.Rows {
		fmt.Fprintf(&b, "r %d %d %d %s\n", t.ID, t.Source, t.TS, encodeVals(t.Vals))
	}
	fmt.Fprintf(&b, "end\n")
	fmt.Fprintf(&b, "crc %08x\n", crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

func encodeVals(vals []stream.Value) string {
	if len(vals) == 0 {
		return "-"
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatInt(int64(v), 10)
	}
	return strings.Join(parts, ",")
}

// Decode parses an encoded checkpoint, validating structure and CRC.
func Decode(data []byte) (*Checkpoint, error) {
	// The CRC line covers every byte before it, including the final
	// newline of "end".
	idx := bytes.LastIndex(data, []byte("\ncrc "))
	if idx < 0 {
		return nil, fmt.Errorf("%w: missing crc trailer", ErrCorrupt)
	}
	body, trailer := data[:idx+1], data[idx+1:]
	var want uint32
	if _, err := fmt.Sscanf(string(trailer), "crc %08x\n", &want); err != nil {
		return nil, fmt.Errorf("%w: malformed crc trailer", ErrCorrupt)
	}
	// The trailer must be exactly the crc line: data appended after it is
	// corruption, not slack.
	if string(trailer) != fmt.Sprintf("crc %08x\n", want) {
		return nil, fmt.Errorf("%w: trailing data after crc trailer", ErrCorrupt)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	lines := strings.Split(string(body), "\n")
	// Split leaves a trailing empty element after the final newline.
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	p := &parser{lines: lines}
	if v := p.next(); v != header {
		return nil, fmt.Errorf("%w: header %q", ErrVersion, v)
	}
	c := &Checkpoint{}
	var err error
	if c.Cut, err = p.timeField("cut"); err != nil {
		return nil, err
	}
	if c.IngestHWM, err = p.uintField("hwm"); err != nil {
		return nil, err
	}
	if c.Delivered, err = p.uintField("delivered"); err != nil {
		return nil, err
	}
	cfg := p.next()
	if !strings.HasPrefix(cfg, "config ") {
		return nil, fmt.Errorf("%w: missing config line", ErrCorrupt)
	}
	c.Config = strings.TrimPrefix(cfg, "config ")
	nk, err := p.uintField("keys")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nk; i++ {
		line := p.next()
		var k DeliveredKey
		rest, ok := strings.CutPrefix(line, "k ")
		if !ok {
			return nil, fmt.Errorf("%w: key line %q", ErrCorrupt, line)
		}
		ts, key, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, fmt.Errorf("%w: key line %q", ErrCorrupt, line)
		}
		n, err := strconv.ParseInt(ts, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: key minTS %q", ErrCorrupt, ts)
		}
		k.MinTS, k.Key = stream.Time(n), key
		c.Keys = append(c.Keys, k)
	}
	nt, err := p.uintField("tail")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nt; i++ {
		line := p.next()
		rest, ok := strings.CutPrefix(line, "d ")
		if !ok {
			return nil, fmt.Errorf("%w: tail line %q", ErrCorrupt, line)
		}
		seqStr, rest, ok1 := strings.Cut(rest, " ")
		tsStr, key, ok2 := strings.Cut(rest, " ")
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%w: tail line %q", ErrCorrupt, line)
		}
		seq, err1 := strconv.ParseUint(seqStr, 10, 64)
		ts, err2 := strconv.ParseInt(tsStr, 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: tail line %q", ErrCorrupt, line)
		}
		c.Tail = append(c.Tail, TailEntry{Seq: seq, TS: stream.Time(ts), Key: key})
	}
	nr, err := p.uintField("rows")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nr; i++ {
		t, err := decodeRow(p.next())
		if err != nil {
			return nil, err
		}
		c.Rows = append(c.Rows, t)
	}
	if v := p.next(); v != "end" {
		return nil, fmt.Errorf("%w: missing end marker (got %q)", ErrCorrupt, v)
	}
	if !p.done() {
		return nil, fmt.Errorf("%w: trailing data after end marker", ErrCorrupt)
	}
	return c, nil
}

func decodeRow(line string) (*stream.Tuple, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[0] != "r" {
		return nil, fmt.Errorf("%w: row line %q", ErrCorrupt, line)
	}
	id, err1 := strconv.ParseUint(fields[1], 10, 64)
	src, err2 := strconv.ParseInt(fields[2], 10, 32)
	ts, err3 := strconv.ParseInt(fields[3], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("%w: row line %q", ErrCorrupt, line)
	}
	t := &stream.Tuple{ID: id, Source: stream.SourceID(src), TS: stream.Time(ts)}
	if fields[4] != "-" {
		parts := strings.Split(fields[4], ",")
		t.Vals = make([]stream.Value, len(parts))
		for i, s := range parts {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: row value %q", ErrCorrupt, s)
			}
			t.Vals[i] = stream.Value(v)
		}
	}
	return t, nil
}

// parser walks the header/keys/rows lines with graceful underflow.
type parser struct {
	lines []string
	i     int
}

func (p *parser) next() string {
	if p.i >= len(p.lines) {
		return ""
	}
	l := p.lines[p.i]
	p.i++
	return l
}

func (p *parser) done() bool { return p.i >= len(p.lines) }

func (p *parser) uintField(name string) (uint64, error) {
	line := p.next()
	rest, ok := strings.CutPrefix(line, name+" ")
	if !ok {
		return 0, fmt.Errorf("%w: expected %q line, got %q", ErrCorrupt, name, line)
	}
	v, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s value %q", ErrCorrupt, name, rest)
	}
	return v, nil
}

func (p *parser) timeField(name string) (stream.Time, error) {
	line := p.next()
	rest, ok := strings.CutPrefix(line, name+" ")
	if !ok {
		return 0, fmt.Errorf("%w: expected %q line, got %q", ErrCorrupt, name, line)
	}
	v, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s value %q", ErrCorrupt, name, rest)
	}
	return stream.Time(v), nil
}
