package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stream"
)

func sample() *Checkpoint {
	return &Checkpoint{
		Cut:       1234 * stream.Second,
		IngestHWM: 99,
		Delivered: 41,
		Config:    "n=3 shape=bushy window=90000 mode={true false false false 0} indexed=false band=0",
		Keys: []DeliveredKey{
			{MinTS: 7 * stream.Second, Key: "5|9|12"},
			{MinTS: 3 * stream.Second, Key: "1|2|4"},
		},
		Tail: []TailEntry{
			{Seq: 40, TS: 8 * stream.Second, Key: "1|2|4"},
			{Seq: 41, TS: 9 * stream.Second, Key: "5|9|12"},
		},
		Rows: []*stream.Tuple{
			{ID: 1, Source: 0, TS: 3 * stream.Second, Vals: []stream.Value{4, 5}},
			{ID: 2, Source: 1, TS: 4 * stream.Second, Vals: []stream.Value{-6}},
			{ID: 3, Source: 2, TS: 5 * stream.Second}, // no values
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := sample()
	data := Encode(c)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Cut != c.Cut || got.IngestHWM != c.IngestHWM || got.Delivered != c.Delivered || got.Config != c.Config {
		t.Fatalf("header fields mismatch: %+v vs %+v", got, c)
	}
	// Keys are canonically sorted by (MinTS, Key) in the encoding.
	if len(got.Keys) != 2 || got.Keys[0].Key != "1|2|4" || got.Keys[1].Key != "5|9|12" {
		t.Fatalf("keys not canonical: %+v", got.Keys)
	}
	if !reflect.DeepEqual(got.Tail, c.Tail) {
		t.Fatalf("tail mismatch:\ngot  %+v\nwant %+v", got.Tail, c.Tail)
	}
	if !reflect.DeepEqual(got.Rows, c.Rows) {
		t.Fatalf("rows mismatch:\ngot  %+v\nwant %+v", got.Rows, c.Rows)
	}
	// Re-encoding the decoded checkpoint must be byte-identical — the
	// determinism the round-trip property test and replica comparison rely on.
	if !bytes.Equal(Encode(got), data) {
		t.Fatalf("re-encoding is not byte-identical")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	c := sample()
	a := Encode(c)
	// Shuffle the key order: the encoding sorts, so bytes must not change.
	c.Keys[0], c.Keys[1] = c.Keys[1], c.Keys[0]
	b := Encode(c)
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding depends on key order")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := Encode(sample())
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, ErrCorrupt},
		{"empty", func(b []byte) []byte { return nil }, ErrCorrupt},
		{"flipped-byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)/3] ^= 0x40
			return out
		}, ErrCorrupt},
		{"bad-crc", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-2] = 'f' // inside the hex crc digits
			return out
		}, ErrCorrupt},
		{"trailing-garbage", func(b []byte) []byte {
			// Appending after the crc trailer breaks trailer parsing.
			return append(append([]byte(nil), b...), []byte("extra\n")...)
		}, ErrCorrupt},
		{"wrong-version", func(b []byte) []byte {
			out := bytes.Replace(b, []byte("jitckpt v1"), []byte("jitckpt v9"), 1)
			return fixCRC(out)
		}, ErrVersion},
		{"missing-end", func(b []byte) []byte {
			out := bytes.Replace(b, []byte("\nend\n"), []byte("\n"), 1)
			return fixCRC(out)
		}, ErrCorrupt},
		{"mangled-row", func(b []byte) []byte {
			out := bytes.Replace(b, []byte("\nr 2 "), []byte("\nr x "), 1)
			return fixCRC(out)
		}, ErrCorrupt},
		{"mangled-tail", func(b []byte) []byte {
			out := bytes.Replace(b, []byte("\nd 40 "), []byte("\nd xx "), 1)
			return fixCRC(out)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.mutate(valid))
			if err == nil {
				t.Fatalf("corrupt input accepted")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// fixCRC recomputes the trailer so structural mutations are tested on their
// own merits rather than being caught by the checksum first.
func fixCRC(data []byte) []byte {
	idx := bytes.LastIndex(data, []byte("\ncrc "))
	if idx < 0 {
		return data
	}
	body := append([]byte(nil), data[:idx+1]...)
	return append(body, []byte(fmt.Sprintf("crc %08x\n", crc32.ChecksumIEEE(body)))...)
}

func TestStoreSaveLatest(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c := sample()
	p, err := st.Save(c)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if filepath.Dir(p) != dir {
		t.Fatalf("saved outside the store dir: %s", p)
	}
	got, gotPath, err := st.Latest()
	if err != nil || got == nil {
		t.Fatalf("latest: %v %v", got, err)
	}
	if gotPath != p {
		t.Fatalf("latest path %s, want %s", gotPath, p)
	}
	if !bytes.Equal(Encode(got), Encode(c)) {
		t.Fatalf("latest does not round-trip the saved checkpoint")
	}
}

func TestStoreRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c := sample()
	for i := 0; i < 5; i++ {
		c.Cut = stream.Time(i) * stream.Second
		if _, err := st.Save(c); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if n := st.Count(); n != 2 {
		t.Fatalf("retention keep=2 left %d files", n)
	}
	got, _, err := st.Latest()
	if err != nil || got == nil {
		t.Fatalf("latest: %v %v", got, err)
	}
	if got.Cut != 4*stream.Second {
		t.Fatalf("latest cut %d, want the newest (4s)", got.Cut)
	}
}

func TestStoreSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c := sample()
	c.Cut = 1 * stream.Second
	if _, err := st.Save(c); err != nil {
		t.Fatalf("save: %v", err)
	}
	c.Cut = 2 * stream.Second
	p2, err := st.Save(c)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	// Damage the newest file after the rename (the CRC's job, not Save's).
	data, err := os.ReadFile(p2)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(p2, data[:len(data)-8], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	got, gotPath, err := st.Latest()
	if err != nil || got == nil {
		t.Fatalf("latest after corruption: %v %v", got, err)
	}
	if got.Cut != 1*stream.Second {
		t.Fatalf("latest fell back to cut %d, want 1s", got.Cut)
	}
	if gotPath == p2 {
		t.Fatalf("latest returned the corrupt file's path")
	}
}

func TestStoreCleansTemporaries(t *testing.T) {
	dir := t.TempDir()
	// A crashed writer left a stale temporary behind.
	stale := filepath.Join(dir, prefix+"00000042"+suffix+".tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatalf("plant tmp: %v", err)
	}
	st, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temporary survived OpenStore")
	}
	if n := st.Count(); n != 0 {
		t.Fatalf("temporary counted as a checkpoint: %d", n)
	}
}

func TestStoreResumesSequence(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 10)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c := sample()
	if _, err := st.Save(c); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := st.Save(c); err != nil {
		t.Fatalf("save: %v", err)
	}
	// A reopened store continues the numbering instead of colliding.
	st2, err := OpenStore(dir, 10)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	p, err := st2.Save(c)
	if err != nil {
		t.Fatalf("save after reopen: %v", err)
	}
	if !strings.Contains(p, "00000003") {
		t.Fatalf("sequence did not resume: %s", p)
	}
	if st2.Count() != 3 {
		t.Fatalf("count %d, want 3", st2.Count())
	}
}

func TestLatestEmptyStore(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c, p, err := st.Latest()
	if err != nil {
		t.Fatalf("latest: %v", err)
	}
	if c != nil || p != "" {
		t.Fatalf("empty store produced a checkpoint: %v %q", c, p)
	}
}
