package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store manages a directory of numbered checkpoint files with atomic writes
// and bounded retention. File names are ck-<seq>.jck with a monotonically
// increasing sequence; Save writes to a temporary file, syncs, and renames,
// so a crash at any instant leaves either the previous checkpoint set or
// the previous set plus one complete new file — never a torn visible file.
// Leftover temporaries from a crashed writer are removed on Open.
type Store struct {
	dir  string
	keep int
	seq  uint64
}

const (
	prefix = "ck-"
	suffix = ".jck"
)

// OpenStore opens (creating if needed) a checkpoint directory. keep bounds
// how many checkpoints are retained; values below 1 mean 2 — the newest
// plus one fallback in case the newest is later found corrupt.
func OpenStore(dir string, keep int) (*Store, error) {
	if keep < 1 {
		keep = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	s := &Store{dir: dir, keep: keep}
	seqs, err := s.scan()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		s.seq = seqs[len(seqs)-1]
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// scan lists the checkpoint sequence numbers in ascending order and removes
// stale temporaries from crashed writers.
func (s *Store) scan() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		rest, ok := strings.CutPrefix(name, prefix)
		if !ok {
			continue
		}
		numStr, ok := strings.CutSuffix(rest, suffix)
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(numStr, 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (s *Store) path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", prefix, seq, suffix))
}

// Save atomically writes the checkpoint as the next sequence number and
// prunes files beyond the retention bound. It returns the written path.
func (s *Store) Save(c *Checkpoint) (string, error) {
	data := Encode(c)
	s.seq++
	final := s.path(s.seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("checkpoint: save: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: save: %w", err)
	}
	// Sync before rename: the rename must never become visible ahead of
	// the data it names (the torn-write discipline the kill-point harness
	// relies on).
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: save: %w", err)
	}
	s.prune()
	return final, nil
}

// prune removes checkpoints beyond the retention bound, oldest first.
// Errors are ignored — retention is best-effort hygiene, not correctness.
func (s *Store) prune() {
	seqs, err := s.scan()
	if err != nil {
		return
	}
	for len(seqs) > s.keep {
		os.Remove(s.path(seqs[0]))
		seqs = seqs[1:]
	}
}

// Latest decodes the newest valid checkpoint, skipping corrupt files (a
// torn or damaged newest file falls back to its predecessor). It returns
// (nil, "", nil) when no valid checkpoint exists — a fresh start.
func (s *Store) Latest() (*Checkpoint, string, error) {
	seqs, err := s.scan()
	if err != nil {
		return nil, "", err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		p := s.path(seqs[i])
		data, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		c, err := Decode(data)
		if err != nil {
			// Corrupt or incompatible: fall back to the previous one.
			continue
		}
		return c, p, nil
	}
	return nil, "", nil
}

// Count returns how many checkpoint files are currently on disk.
func (s *Store) Count() int {
	seqs, _ := s.scan()
	return len(seqs)
}
