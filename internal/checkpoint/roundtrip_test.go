package checkpoint

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/source"
	"repro/internal/stream"
)

// TestSnapshotRoundTripProperty is satellite 3: for every plan topology ×
// mode of the scenario matrix, under every in-order hostile-stream mutator
// stack, at several cut points — serialize the §7 snapshot cut, decode it
// into a fresh replica, replay, and snapshot again. The second snapshot (and
// therefore its encoding) must be byte-identical to the first: the durable
// format plus ReplayInWindow is a lossless fixed point of SnapshotInWindow.
//
// Disordered scenarios are excluded deliberately: the durable path refuses
// them (serve.Config.Validate) because the engine's reorder buffer sits
// outside the snapshot cut, and feeding a raw disordered trace directly into
// a plan is not the arrival discipline the snapshot contract is defined over.
func TestSnapshotRoundTripProperty(t *testing.T) {
	// The matrix cells contribute topology × mode; shards and adaptivity are
	// engine-level concerns with no plan-state of their own, so dedupe.
	type topo struct {
		bushy bool
		mode  string
	}
	seen := map[topo]bool{}
	for _, cell := range scenario.Matrix(true) {
		key := topo{cell.Bushy, cell.Mode.Name}
		if seen[key] {
			continue
		}
		seen[key] = true
		for _, sc := range scenario.Suite(true) {
			if sc.Disorder > 0 {
				continue
			}
			name := fmt.Sprintf("%s/%s", cell.String(), sc.Name)
			t.Run(name, func(t *testing.T) {
				p := cell.Apply(sc.Apply(scenario.Base(true)))
				p.Shards, p.Adapt = 1, false
				cat, cfg, b := p.Build()
				tuples := source.Generate(cat, cfg)
				if len(tuples) < 10 {
					t.Fatalf("degenerate workload: %d tuples", len(tuples))
				}
				for _, frac := range []int{3, 2} { // cuts at 1/3 and 1/2
					k := len(tuples) / frac
					cut := tuples[k-1].TS
					// Feed the prefix with the engine's arrival discipline.
					live := b.Replicate()
					live.ReplayInWindow(tuples[:k])
					ck := &Checkpoint{
						Cut:       cut,
						IngestHWM: tuples[k-1].ID,
						Delivered: 7,
						Config:    "roundtrip-property",
						Rows:      live.SnapshotInWindow(cut),
					}
					data := Encode(ck)
					got, err := Decode(data)
					if err != nil {
						t.Fatalf("cut %d/%d: decode: %v", k, len(tuples), err)
					}
					restored := b.Replicate()
					restored.ReplayInWindow(got.Rows)
					again := restored.SnapshotInWindow(cut)
					if !reflect.DeepEqual(again, ck.Rows) {
						t.Fatalf("cut %d/%d: restored snapshot diverges (%d rows vs %d)",
							k, len(tuples), len(again), len(ck.Rows))
					}
					ck2 := &Checkpoint{
						Cut: ck.Cut, IngestHWM: ck.IngestHWM, Delivered: ck.Delivered,
						Config: ck.Config, Rows: again,
					}
					if !bytes.Equal(Encode(ck2), data) {
						t.Fatalf("cut %d/%d: re-encoding is not byte-identical", k, len(tuples))
					}
				}
			})
		}
	}
}

// TestSnapshotReplayWindowEquivalence pins the window-shift form of the same
// contract: a replica restored from a cut snapshot and a plan that has run
// the whole prefix from scratch hold identical in-window state at every
// later cut — the restored server's future is the crashed server's future.
func TestSnapshotReplayWindowEquivalence(t *testing.T) {
	p := scenario.Base(true)
	cat, cfg, b := p.Build()
	tuples := source.Generate(cat, cfg)
	k := len(tuples) / 2
	cut := tuples[k-1].TS

	full := b.Replicate()
	full.ReplayInWindow(tuples[:k])

	restored := b.Replicate()
	restored.ReplayInWindow(full.SnapshotInWindow(cut))

	// Both now consume the identical suffix; their snapshots must stay in
	// lockstep at every subsequent window boundary.
	step := p.Window / 2
	next := cut + step
	for i := k; i < len(tuples); i++ {
		tp := tuples[i]
		full.ReplayInWindow([]*stream.Tuple{tp})
		restored.ReplayInWindow([]*stream.Tuple{tp})
		if tp.TS >= next {
			next = tp.TS + step
			a, bb := full.SnapshotInWindow(tp.TS), restored.SnapshotInWindow(tp.TS)
			if !reflect.DeepEqual(a, bb) {
				t.Fatalf("state diverged at ts=%d: %d rows vs %d", tp.TS, len(a), len(bb))
			}
		}
	}
}
