package engine

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// roadmapWorkload is the dense end-of-stream workload family from the
// ROADMAP open item: N=4, λ=8, dmax=100, w=2min, h=3min. The horizon sits
// close enough to the window that suspended results routinely have
// resumption triggers or anchor expiries past the last arrival — without
// the drain phase JIT delivers fewer finals than REF.
func roadmapWorkload(t *testing.T, seed int64) (*stream.Catalog, predicate.Conj, []*stream.Tuple) {
	t.Helper()
	cat, conj := predicate.Clique(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, 8, 100, 3*stream.Minute, seed))
	return cat, conj, arrivals
}

func runDrained(t *testing.T, cat *stream.Catalog, conj predicate.Conj, arrivals []*stream.Tuple, shape *plan.Node, mode core.Mode) (Result, []string) {
	t.Helper()
	b := plan.BuildTree(cat, conj, shape, plan.Options{
		Window: 2 * stream.Minute, Mode: mode, KeepResults: true,
	})
	r := NewWithOptions(b, Options{Drain: true}).Run(arrivals)
	return r, b.Sink.ResultKeys()
}

// TestEndOfStreamDrain asserts the drain-at-horizon invariant across a
// seed × topology sweep of the ROADMAP workload family, so the invariant
// isn't pinned to one lucky stream: with Options.Drain every mode
// delivers exactly REF's final-result multiset. Exact sink-order equality
// is asserted only on the canonical seed-1 bushy point (the historical
// ROADMAP regression): drain-phase recoveries fire in deadline order —
// the recovering tuple's window close — not result-timestamp order, so
// two drain-recovered results can legitimately swap relative to REF's
// live order (the documented late-recovery timestamp inversions, DESIGN.md
// §2; seed 3 bushy hits one). The short/full split mirrors jitreport's
// presets: -short keeps the canonical point and the JIT/REF pair; the full
// sweep (three seeds, both plan shapes, the DOE and Bloom ablations) runs
// in the non-short suite and the nightly job.
func TestEndOfStreamDrain(t *testing.T) {
	seeds := []int64{1, 2, 3}
	shapes := []struct {
		name string
		node *plan.Node
	}{
		{"bushy", plan.Bushy(4)},
		{"leftdeep", plan.LeftDeep(4)},
	}
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"JIT", core.JIT()},
		{"DOE", core.DOE()},
		{"Bloom", core.BloomJIT()},
	}
	if testing.Short() {
		seeds = seeds[:1]
		shapes = shapes[:1]
		modes = modes[:1]
	}
	for _, seed := range seeds {
		cat, conj, arrivals := roadmapWorkload(t, seed)
		for si, sh := range shapes {
			canonical := seed == 1 && si == 0
			t.Run(fmt.Sprintf("seed=%d/%s", seed, sh.name), func(t *testing.T) {
				ref, refKeys := runDrained(t, cat, conj, arrivals, sh.node, core.REF())
				if ref.Counters.FinalResults == 0 {
					t.Fatalf("degenerate workload, REF delivered nothing")
				}
				for _, m := range modes {
					r, keys := runDrained(t, cat, conj, arrivals, sh.node, m.mode)
					if r.Counters.FinalResults != ref.Counters.FinalResults {
						t.Errorf("%s: %d finals vs REF %d", m.name,
							r.Counters.FinalResults, ref.Counters.FinalResults)
					}
					if len(keys) != len(refKeys) {
						t.Errorf("%s: sink kept %d results vs REF %d", m.name, len(keys), len(refKeys))
						continue
					}
					if !canonical {
						// Multiset equality only: order may differ by the
						// documented late-recovery inversions.
						want := make(map[string]int, len(refKeys))
						for _, k := range refKeys {
							want[k]++
						}
						for _, k := range keys {
							want[k]--
						}
						for k, n := range want {
							if n != 0 {
								t.Errorf("%s: result %s off by %+d vs REF", m.name, k, -n)
							}
						}
						continue
					}
					if r.OrderViolations != 0 {
						t.Errorf("%s: %d order violations", m.name, r.OrderViolations)
					}
					for i := range keys {
						if keys[i] != refKeys[i] {
							t.Errorf("%s: sink order diverges at %d: %s vs REF %s",
								m.name, i, keys[i], refKeys[i])
							break
						}
					}
				}
			})
		}
	}
}

// TestDrainlessRunDropsFinals pins the gap the drain exists to close: on the
// same workload a drain-less JIT run delivers strictly fewer finals than
// REF. If this ever starts passing without the drain, the workload no
// longer exercises the end-of-stream case and should be retuned. It is a
// workload-tuning canary, not an equivalence gate, so it runs only in the
// full suite (two more dense drain-less runs the short budget can't afford).
func TestDrainlessRunDropsFinals(t *testing.T) {
	if testing.Short() {
		t.Skip("workload-tuning canary on the dense workload; full suite only")
	}
	cat, conj, arrivals := roadmapWorkload(t, 1)
	build := func(mode core.Mode) *plan.Built {
		return plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
			Window: 2 * stream.Minute, Mode: mode,
		})
	}
	refB := build(core.REF())
	New(refB).Run(arrivals)
	jitB := build(core.JIT())
	New(jitB).Run(arrivals)
	if jitB.Counters.FinalResults >= refB.Counters.FinalResults {
		t.Fatalf("drain-less JIT delivered %d finals, REF %d — workload no longer exercises the end-of-stream gap",
			jitB.Counters.FinalResults, refB.Counters.FinalResults)
	}
}
