package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// roadmapWorkload is the dense end-of-stream workload from the ROADMAP open
// item: N=4, λ=8, dmax=100, w=2min, h=3min, seed 1. The horizon sits close
// enough to the window that suspended results routinely have resumption
// triggers or anchor expiries past the last arrival — without the drain
// phase JIT delivers fewer finals than REF.
func roadmapWorkload(t *testing.T) (*stream.Catalog, predicate.Conj, []*stream.Tuple) {
	t.Helper()
	cat, conj := predicate.Clique(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, 8, 100, 3*stream.Minute, 1))
	return cat, conj, arrivals
}

func runDrained(t *testing.T, cat *stream.Catalog, conj predicate.Conj, arrivals []*stream.Tuple, shape *plan.Node, mode core.Mode) (Result, []string) {
	t.Helper()
	b := plan.BuildTree(cat, conj, shape, plan.Options{
		Window: 2 * stream.Minute, Mode: mode, KeepResults: true,
	})
	r := NewWithOptions(b, Options{Drain: true}).Run(arrivals)
	return r, b.Sink.ResultKeys()
}

// TestEndOfStreamDrain asserts the drain-at-horizon invariant on the exact
// ROADMAP workload: with Options.Drain every mode delivers the same finals
// as REF, in the same sink order, on both plan shapes.
func TestEndOfStreamDrain(t *testing.T) {
	cat, conj, arrivals := roadmapWorkload(t)
	shapes := []struct {
		name string
		node *plan.Node
	}{
		{"bushy", plan.Bushy(4)},
	}
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"JIT", core.JIT()},
		{"DOE", core.DOE()},
		{"Bloom", core.BloomJIT()},
	}
	for _, sh := range shapes {
		ref, refKeys := runDrained(t, cat, conj, arrivals, sh.node, core.REF())
		if ref.Counters.FinalResults == 0 {
			t.Fatalf("%s: degenerate workload, REF delivered nothing", sh.name)
		}
		for _, m := range modes {
			r, keys := runDrained(t, cat, conj, arrivals, sh.node, m.mode)
			if r.Counters.FinalResults != ref.Counters.FinalResults {
				t.Errorf("%s %s: %d finals vs REF %d", sh.name, m.name,
					r.Counters.FinalResults, ref.Counters.FinalResults)
			}
			if r.OrderViolations != 0 {
				t.Errorf("%s %s: %d order violations", sh.name, m.name, r.OrderViolations)
			}
			if len(keys) != len(refKeys) {
				t.Errorf("%s %s: sink kept %d results vs REF %d", sh.name, m.name, len(keys), len(refKeys))
				continue
			}
			for i := range keys {
				if keys[i] != refKeys[i] {
					t.Errorf("%s %s: sink order diverges at %d: %s vs REF %s",
						sh.name, m.name, i, keys[i], refKeys[i])
					break
				}
			}
		}
	}
}

// TestDrainlessRunDropsFinals pins the gap the drain exists to close: on the
// same workload a drain-less JIT run delivers strictly fewer finals than
// REF. If this ever starts passing without the drain, the workload no
// longer exercises the end-of-stream case and should be retuned.
func TestDrainlessRunDropsFinals(t *testing.T) {
	cat, conj, arrivals := roadmapWorkload(t)
	build := func(mode core.Mode) *plan.Built {
		return plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
			Window: 2 * stream.Minute, Mode: mode,
		})
	}
	refB := build(core.REF())
	New(refB).Run(arrivals)
	jitB := build(core.JIT())
	New(jitB).Run(arrivals)
	if jitB.Counters.FinalResults >= refB.Counters.FinalResults {
		t.Fatalf("drain-less JIT delivered %d finals, REF %d — workload no longer exercises the end-of-stream gap",
			jitB.Counters.FinalResults, refB.Counters.FinalResults)
	}
}
