// Package engine drives a built plan over an arrival sequence. The
// deterministic engine processes arrivals in timestamp order; before each
// arrival it runs the expiry sweep over every operator (DESIGN.md §2) and
// then pushes the tuple into its feed operator, which recursively drives
// the pipelined plan to quiescence — the synchronous equivalent of the
// pre-emptive scheduling policies of Sec. III-B/C.
package engine

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/stream"
)

// Result summarizes one run.
type Result struct {
	// Results is the number of final results delivered to the sink.
	Results uint64
	// CostUnits is the deterministic work figure (CPU-time analogue).
	CostUnits uint64
	// WallTime is the host CPU time actually spent.
	WallTime time.Duration
	// PeakMemKB is the peak accounted live bytes in kilobytes.
	PeakMemKB float64
	// Counters is the full counter breakdown.
	Counters metrics.Counters
	// OrderViolations counts out-of-order sink deliveries (must be 0 except
	// for documented expiry-sweep late recoveries).
	OrderViolations uint64
	// Arrivals is the number of input tuples processed.
	Arrivals int
}

// Engine executes one plan over one arrival sequence.
type Engine struct {
	built *plan.Built
}

// New creates an engine for a built plan.
func New(b *plan.Built) *Engine { return &Engine{built: b} }

// Built exposes the underlying plan.
func (e *Engine) Built() *plan.Built { return e.built }

// Run processes the arrivals and returns the run summary.
func (e *Engine) Run(arrivals []*stream.Tuple) Result {
	b := e.built
	start := time.Now()
	n := b.Catalog.NumSources()
	for _, t := range arrivals {
		b.Sweep(t.TS)
		feed, ok := b.Feeds[t.Source]
		if !ok {
			panic(fmt.Sprintf("engine: no feed for source %d", t.Source))
		}
		c := stream.NewComposite(n, t)
		feed.Op.Consume(c, feed.Port)
	}
	wall := time.Since(start)
	return Result{
		Results:         b.Sink.Count(),
		CostUnits:       b.Counters.CostUnits(),
		WallTime:        wall,
		PeakMemKB:       b.Account.PeakKB(),
		Counters:        *b.Counters,
		OrderViolations: b.Sink.OrderViolations,
		Arrivals:        len(arrivals),
	}
}
