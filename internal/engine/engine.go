// Package engine drives a built plan as an event loop over two kinds of
// events: tuple arrivals, pulled lazily from a streaming source, and timer
// deadlines, announced by the operators themselves (core.JoinOp.NextDeadline)
// and merged with the arrival sequence through a binary min-heap.
//
// Each arrival first fires the expiry sweep on exactly the operators whose
// deadline has passed (DESIGN.md §4; a sweep below an operator's deadline is
// provably a no-op, so skipping it changes nothing), then enters its feed
// operator and drives the pipelined plan synchronously to quiescence — the
// single-threaded equivalent of the paper's pre-emptive scheduling policies
// (Sec. III-B/C).
//
// After the source is exhausted, an optional drain phase (Options.Drain)
// keeps popping timer deadlines in time order up to the application horizon,
// so every suspended result either resumes or expires — without it, results
// whose resumption trigger or anchor expiry falls after the last arrival
// would be silently dropped (DESIGN.md §4, drain-at-horizon invariant).
// Drain also switches every operator into exact-delivery recovery
// (core.JoinOp.SetExact): expiry-boundary recoveries generate the pairs REF
// formed live, so a drained run's finals match REF in every mode.
//
// Ingestion is streaming: RunStream pulls tuples one at a time from a
// next-func iterator (see source.Stream for the lazy workload generator), so
// memory stays O(operator state) instead of O(arrivals). Run adapts a
// materialized slice to the same loop.
package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stream"
)

// Result summarizes one run.
type Result struct {
	// Results is the number of final results delivered to the sink.
	Results uint64
	// CostUnits is the deterministic work figure (CPU-time analogue).
	CostUnits uint64
	// WallTime is the host CPU time actually spent.
	WallTime time.Duration
	// PeakMemKB is the peak accounted live bytes in kilobytes.
	PeakMemKB float64
	// Counters is the full counter breakdown.
	Counters metrics.Counters
	// OrderViolations counts out-of-order sink deliveries (must be 0 except
	// for documented expiry-sweep late recoveries).
	OrderViolations uint64
	// Arrivals is the number of input tuples processed.
	Arrivals int
	// Ops is the per-operator stat breakdown at run end, in plan order
	// (producers before consumers) — the rows `jitrun -stats` prints.
	Ops []metrics.NamedOpStats
}

// Options configures a run.
type Options struct {
	// Drain keeps firing timer deadlines after the last arrival, in time
	// order, so suspended results whose resumption trigger or anchor expiry
	// falls past the end of the stream are still delivered (the end-of-
	// stream drain of DESIGN.md §4). Drain also enables exact-delivery
	// recovery on every operator, making finals match REF in every mode.
	// Off by default: a drain-less run is bit-identical to the historical
	// slice-driven engine, which the paper's figure reproductions
	// (internal/exp) rely on.
	Drain bool
	// Horizon caps the drain: deadlines beyond it are left unfired. Zero
	// means the natural application horizon — the last arrival's timestamp
	// plus the plan window, past which every finite deadline has fired and
	// every window has closed.
	Horizon stream.Time
	// SweepEveryArrival disables deadline scheduling and sweeps every
	// operator before every arrival — the pre-deadline hot path, kept as the
	// baseline for the sweep-scheduling benchmarks. Results and counters
	// other than Sweeps are identical either way (DESIGN.md §4).
	SweepEveryArrival bool
	// Reopt, when non-nil, lets an adaptive re-optimizer (internal/adapt)
	// migrate the plan mid-run (DESIGN.md §7). Requires Drain: the handoff's
	// lossless-delivery argument rests on exact-delivery recovery.
	Reopt Reoptimizer
	// Disorder, when > 0, accepts out-of-order sources under the bounded-
	// disorder discipline of DESIGN.md §8 (a deliberate post-paper
	// extension): arrivals are held in a reorder buffer and released in
	// timestamp order once the watermark (max seen TS minus Disorder)
	// passes them, so the operator pipeline still sees a non-decreasing
	// timestamp sequence and every exactness argument carries over
	// unchanged. Tuples arriving behind the watermark are counted in
	// Counters.LateDropped, never silently lost. A source whose disorder is
	// bounded by this value (source.Disordered with bound <= Disorder) is
	// restored exactly: the released sequence is bit-identical to the
	// in-order sort, so finals match the in-order run's in every mode.
	Disorder stream.Time
}

// Reoptimizer is the engine's hook for mid-run plan migration (DESIGN.md
// §7). The engine consults it between the deadline firings and the
// processing of each arrival, so a migration always happens at a quiescent
// cut: no probe is in flight and every deadline at or before the cut has
// fired on the outgoing plan before Migrate is called.
type Reoptimizer interface {
	// Attach is called once at run start with the initial plan, before any
	// arrival is processed.
	Attach(b *plan.Built)
	// Decide observes one arrival before it is processed and reports
	// whether the engine should migrate now, at cut time t.TS.
	Decide(t *stream.Tuple, b *plan.Built) bool
	// Migrate builds, state-transfers and returns the successor plan; the
	// engine has already drained b's timer deadlines to the cut. A nil
	// return keeps the current plan.
	Migrate(cut stream.Time, b *plan.Built) *plan.Built
}

// Engine executes one plan over one arrival sequence.
type Engine struct {
	built *plan.Built
	opts  Options
}

// New creates an engine for a built plan with default options (no drain,
// deadline-scheduled sweeps). Like NewWithOptions, it (re)applies its
// options to the plan's operators, so reusing one plan across engines never
// leaks a previous engine's exact-delivery mode.
func New(b *plan.Built) *Engine { return NewWithOptions(b, Options{}) }

// NewWithOptions creates an engine with explicit options. Drain implies
// exact-delivery mode on every operator: recovery at expiry boundaries
// generates the pairs REF formed live (core.JoinOp.SetExact, DESIGN.md §4),
// which is what makes the drained run's finals match REF exactly. Without
// Drain the operators keep the paper prototype's drop-at-expiry semantics,
// bit-identical to the historical engine.
func NewWithOptions(b *plan.Built, o Options) *Engine {
	if o.Reopt != nil && !o.Drain {
		panic("engine: Reopt requires Drain — the migration handoff relies on exact-delivery recovery (DESIGN.md §7)")
	}
	for _, j := range b.Joins {
		j.SetExact(o.Drain)
	}
	return &Engine{built: b, opts: o}
}

// Built exposes the underlying plan.
func (e *Engine) Built() *plan.Built { return e.built }

// Run processes a materialized arrival slice — a convenience wrapper around
// RunStream for tests and hand-built traces.
func (e *Engine) Run(arrivals []*stream.Tuple) Result {
	i := 0
	return e.RunStream(func() (*stream.Tuple, bool) {
		if i >= len(arrivals) {
			return nil, false
		}
		t := arrivals[i]
		i++
		return t, true
	})
}

// ChanSource adapts a channel of tuples to the pull iterator RunStream
// consumes — the per-replica entry point of sharded execution
// (internal/shard, DESIGN.md §5): a dispatcher routes the global stream
// into per-shard channels and each shard's engine goroutine pulls from its
// own. End-of-stream is the channel closing; the engine then drains as
// usual. Tuples arriving through a channel must still be in non-decreasing
// timestamp order, which a single dispatcher preserves per construction.
func ChanSource(ch <-chan *stream.Tuple) func() (*stream.Tuple, bool) {
	return func() (*stream.Tuple, bool) {
		t, ok := <-ch
		return t, ok
	}
}

// RunStream pulls tuples from next until it reports false, interleaving
// arrival processing with deadline-driven expiry sweeps, then (with
// Options.Drain) drains the remaining timer deadlines to the horizon. The
// source must yield tuples in non-decreasing timestamp order, unless
// Options.Disorder admits bounded out-of-order delivery — the reorder stage
// then restores timestamp order before the pipeline sees anything.
func (e *Engine) RunStream(next func() (*stream.Tuple, bool)) Result {
	b := e.built
	start := time.Now() //jitlint:allow wallclock Result.Wall is operator-facing elapsed time; no deterministic artifact reads it
	// The run's tracer is the initial plan's: migrations hand it to each
	// successor plan (adapt.Controller.Migrate → SetTrace), while this local
	// keeps engine-level events (arrivals, watermarks, clock) attached to
	// the run even while b is being swapped. Nil means tracing is off and
	// every call below is a pointer test (DESIGN.md §9).
	tr := b.Trace
	var late uint64
	if e.opts.Disorder > 0 {
		next = reorderSource(next, e.opts.Disorder, &late, tr)
	}
	n := b.Catalog.NumSources()
	sched := newScheduler(b.Joins)
	if e.opts.Reopt != nil {
		e.opts.Reopt.Attach(b)
	}
	arrivals := 0
	lastTS := stream.Time(0)
	for {
		t, ok := next()
		if !ok {
			break
		}
		arrivals++
		lastTS = t.TS
		tr.Advance(t.TS)
		tr.Arrival(t)
		if e.opts.Reopt != nil && e.opts.Reopt.Decide(t, b) {
			// Quiesce the outgoing plan to the cut: fire every timer deadline
			// at or before t.TS (cascades included, via the drain loop), so
			// each result whose window closes by the cut is delivered by the
			// plan that formed it. Whatever is still suspended afterwards has
			// its whole constituent set inside the snapshot window, and the
			// successor plan regenerates it from the replay (DESIGN.md §7).
			if e.opts.SweepEveryArrival {
				sched.refresh()
			}
			sched.drain(t.TS, b.Counters, tr)
			if nb := e.opts.Reopt.Migrate(t.TS, b); nb != nil {
				b = nb
				e.built = nb
				for _, j := range nb.Joins {
					j.SetExact(e.opts.Drain)
				}
				sched = newScheduler(b.Joins)
				sched.refresh()
			}
		}
		if e.opts.SweepEveryArrival {
			b.Counters.Sweeps += uint64(len(b.Joins))
			b.Sweep(t.TS)
		} else {
			sched.fireDue(t.TS, b.Counters)
		}
		feed, ok := b.Feeds[t.Source]
		if !ok {
			panic(fmt.Sprintf("engine: no feed for source %d", t.Source))
		}
		c := stream.NewComposite(n, t)
		feed.Op.Consume(c, feed.Port)
		if !e.opts.SweepEveryArrival {
			sched.refresh()
		}
	}
	if e.opts.Drain {
		horizon := e.opts.Horizon
		if horizon == 0 {
			horizon = lastTS + b.Window
		}
		if e.opts.SweepEveryArrival {
			sched.refresh() // the arrival loop kept no schedule; build one
		}
		sched.drain(horizon, b.Counters, tr)
	}
	// Late drops are charged at run end so they survive mid-run plan
	// migrations (a migration swaps b and its Counters).
	b.Counters.LateDropped += late
	tr.Finish()
	wall := time.Since(start) //jitlint:allow wallclock Result.Wall is operator-facing elapsed time; no deterministic artifact reads it
	ops := make([]metrics.NamedOpStats, len(b.Joins))
	for i, j := range b.Joins {
		ops[i] = metrics.NamedOpStats{Name: j.Name(), Stats: j.Stats()}
	}
	return Result{
		Results:         b.Sink.Count(),
		CostUnits:       b.Counters.CostUnits(),
		WallTime:        wall,
		PeakMemKB:       b.Account.PeakKB(),
		Counters:        *b.Counters,
		OrderViolations: b.Sink.OrderViolations,
		Arrivals:        arrivals,
		Ops:             ops,
	}
}

// reorderSource wraps a possibly out-of-order source in the bounded-disorder
// admission discipline (DESIGN.md §8). Arrivals sit in a min-heap on
// (TS, ID); a buffered tuple is released only when its timestamp falls
// strictly below the watermark — the maximum ingested timestamp minus the
// bound — because every future arrival is assumed to carry a timestamp at or
// above that watermark. Under that assumption (which source.Disordered with
// the same or smaller bound guarantees), releases are in strictly
// non-decreasing timestamp order and, since IDs were assigned in timestamp
// order, the released sequence is exactly the in-order sort. Arrivals
// already strictly behind the watermark cannot be ordered ahead of what was
// released; they are dropped and counted in *late. At end of source the
// remaining buffer flushes in (TS, ID) order, ahead of the engine's drain
// phase, so the drain cut stays exact.
func reorderSource(next func() (*stream.Tuple, bool), bound stream.Time, late *uint64, tr *obs.Tracer) func() (*stream.Tuple, bool) {
	var h []*stream.Tuple // binary min-heap on (TS, ID)
	less := func(a, b *stream.Tuple) bool {
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.ID < b.ID
	}
	push := func(t *stream.Tuple) {
		h = append(h, t)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	pop := func() *stream.Tuple {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h[last] = nil
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	var maxSeen stream.Time
	var lastOut stream.Time
	done := false
	return func() (*stream.Tuple, bool) {
		for {
			if len(h) > 0 && (done || h[0].TS < maxSeen-bound) {
				t := pop()
				// Internal watermark-monotonicity invariant: the released
				// sequence must be in timestamp order, or every downstream
				// exactness argument collapses.
				if t.TS < lastOut {
					panic(fmt.Sprintf("engine: reorder released TS %d after %d", t.TS, lastOut))
				}
				lastOut = t.TS
				return t, true
			}
			if done {
				return nil, false
			}
			t, ok := next()
			if !ok {
				done = true
				continue
			}
			if t.TS > maxSeen {
				maxSeen = t.TS
				tr.Watermark(maxSeen - bound)
			}
			if t.TS < maxSeen-bound {
				*late++
				tr.LateDrop(t, maxSeen-bound)
				continue
			}
			push(t)
		}
	}
}

// timerEvent is one scheduled deadline: operator joins[idx] believes its next
// sweep is due at time at. Events are never deleted in place; an event is
// stale (and skipped on pop) when the operator's recorded deadline has moved.
type timerEvent struct {
	at  stream.Time
	idx int
}

// scheduler merges the operators' sweep deadlines through a binary min-heap
// with lazy invalidation (DESIGN.md §4).
type scheduler struct {
	joins     []*core.JoinOp
	deadlines []stream.Time // current NextDeadline per operator
	heap      []timerEvent  // min-heap on (at, idx)
}

func newScheduler(joins []*core.JoinOp) *scheduler {
	s := &scheduler{joins: joins, deadlines: make([]stream.Time, len(joins))}
	for i := range s.deadlines {
		s.deadlines[i] = core.NoDeadline
	}
	return s
}

// refresh re-reads every operator's deadline and schedules the ones that
// moved. Stale heap entries are left behind and skipped on pop.
func (s *scheduler) refresh() {
	for i, j := range s.joins {
		d := j.NextDeadline()
		if d != s.deadlines[i] {
			s.deadlines[i] = d
			if d < core.NoDeadline {
				s.push(timerEvent{at: d, idx: i})
			}
		}
	}
}

// peek returns the earliest live deadline, skipping and discarding stale
// heap entries; ok is false when no timer is scheduled.
func (s *scheduler) peek() (stream.Time, bool) {
	for len(s.heap) > 0 {
		ev := s.heap[0]
		if ev.at != s.deadlines[ev.idx] {
			s.pop()
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// fireDue runs the expiry sweep, at time now, on every operator whose
// deadline has passed. Operators are visited in plan order (producers before
// consumers), re-checking the live deadline per operator so that cascades
// triggered by an earlier sweep are picked up within the same pass — exactly
// the work the historical sweep-every-arrival pass performed, minus the
// no-op sweeps.
func (s *scheduler) fireDue(now stream.Time, ctr *metrics.Counters) {
	if at, ok := s.peek(); !ok || at > now {
		return
	}
	for _, j := range s.joins {
		if j.NextDeadline() <= now {
			ctr.Sweeps++
			j.Sweep(now)
		}
	}
	s.refresh()
}

// drain fires the remaining timer deadlines in time order: the engine clock
// advances to each deadline and sweeps the operators due at it, so suspended
// tuples reactivate while their windows are still open. Deadlines are cached
// lower bounds, so a fired deadline can be a no-op; when the same deadline
// survives a full round the scheduler flushes every operator's caches to
// exact values (the liveness valve of DESIGN.md §4 — a shared MNS expiry
// extension can leave a cached minimum stale-low forever) and, if the
// deadline still refuses to advance after an exact sweep, drops it. The
// clock never moves backwards, so the loop reaches the horizon — or the
// last finite deadline — in finitely many rounds.
func (s *scheduler) drain(horizon stream.Time, ctr *metrics.Counters, tr *obs.Tracer) {
	prev, stuck := stream.Time(-1), 0
	for {
		d, ok := s.peek()
		if !ok || d > horizon {
			return
		}
		tr.Advance(d)
		if d == prev {
			stuck++
			switch {
			case stuck == 1:
				// First repeat: flush every cached minimum so the next
				// deadline read is exact, then re-evaluate.
				for _, j := range s.joins {
					j.InvalidateDeadlineCaches()
				}
				s.refresh()
				continue
			case stuck >= 3:
				// Even an exact sweep left the deadline in place: drop the
				// event. The operator re-enters the heap only when its
				// reported deadline moves, and it still gets swept whenever
				// any later deadline fires, so no real work is lost.
				s.pop()
				prev, stuck = -1, 0
				continue
			}
		} else {
			prev, stuck = d, 0
		}
		for _, j := range s.joins {
			if j.NextDeadline() <= d {
				ctr.Sweeps++
				j.Sweep(d)
			}
		}
		s.refresh()
	}
}

// push inserts a timer event, sifting up.
func (s *scheduler) push(ev timerEvent) {
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

// pop removes the top event, sifting down.
func (s *scheduler) pop() {
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && s.less(l, m) {
			m = l
		}
		if r < last && s.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}

// less orders events by time, breaking ties by plan position so heap
// behaviour is deterministic.
func (s *scheduler) less(i, j int) bool {
	if s.heap[i].at != s.heap[j].at {
		return s.heap[i].at < s.heap[j].at
	}
	return s.heap[i].idx < s.heap[j].idx
}
