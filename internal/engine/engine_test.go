package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

func run(t *testing.T, mode core.Mode, seed int64) Result {
	t.Helper()
	cat, conj := predicate.Clique(3)
	arrivals := source.Generate(cat, source.UniformConfig(3, 1.0, 5, 3*stream.Minute, seed))
	b := plan.BuildTree(cat, conj, plan.LeftDeep(3), plan.Options{
		Window: 45 * stream.Second, Mode: mode,
	})
	return New(b).Run(arrivals)
}

func TestRunDeterministic(t *testing.T) {
	a := run(t, core.REF(), 4)
	b := run(t, core.REF(), 4)
	if a.Results != b.Results || a.CostUnits != b.CostUnits || a.PeakMemKB != b.PeakMemKB {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	if a.Arrivals == 0 || a.Results == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}

func TestRunMeasures(t *testing.T) {
	r := run(t, core.JIT(), 4)
	if r.CostUnits == 0 || r.PeakMemKB <= 0 || r.WallTime <= 0 {
		t.Fatalf("missing measurements: %+v", r)
	}
	if r.OrderViolations != 0 {
		t.Fatalf("order violations: %d", r.OrderViolations)
	}
	if r.Counters.Comparisons == 0 || r.Counters.Inserted == 0 {
		t.Fatalf("counters empty: %s", r.Counters.String())
	}
}

func TestJITMatchesREFResultCount(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		ref := run(t, core.REF(), seed)
		jit := run(t, core.JIT(), seed)
		if ref.Results != jit.Results {
			t.Fatalf("seed %d: REF %d vs JIT %d results", seed, ref.Results, jit.Results)
		}
	}
}
