package engine_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// ExampleEngine_RunStream runs a 3-way clique query over a lazily
// generated workload: tuples stream in one at a time, expiry work fires
// off the deadline heap, and the end-of-stream drain delivers every
// result whose resumption trigger falls past the last arrival — the
// finals match REF exactly (DESIGN.md §4).
func ExampleEngine_RunStream() {
	cat, conj := predicate.Clique(3)
	b := plan.BuildTree(cat, conj, plan.Bushy(3), plan.Options{
		Window: stream.Minute, Mode: core.JIT(),
	})
	eng := engine.NewWithOptions(b, engine.Options{Drain: true})
	cfg := source.UniformConfig(3, 1, 20, 2*stream.Minute, 1)
	res := eng.RunStream(source.Stream(cat, cfg))
	fmt.Println("arrivals:", res.Arrivals)
	fmt.Println("finals:", res.Results)
	// Output:
	// arrivals: 364
	// finals: 97
}

// ExampleEngine_Run adapts a hand-built trace to the same loop: three
// tuples sharing one join value arrive within the window, producing one
// final result.
func ExampleEngine_Run() {
	cat, conj := predicate.Clique(3)
	b := plan.BuildTree(cat, conj, plan.Bushy(3), plan.Options{
		Window: stream.Minute, Mode: core.REF(),
	})
	arrivals := []*stream.Tuple{
		{ID: 1, Source: 0, TS: 0, Vals: []stream.Value{7, 7}},
		{ID: 2, Source: 1, TS: stream.Second, Vals: []stream.Value{7, 7}},
		{ID: 3, Source: 2, TS: 2 * stream.Second, Vals: []stream.Value{7, 7}},
	}
	res := engine.New(b).Run(arrivals)
	fmt.Println("finals:", res.Results)
	// Output:
	// finals: 1
}
