package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// disorderWorkload is the dense ROADMAP workload with a perturbed twin:
// the same arrivals once in timestamp order and once delivered out of
// order with delays up to the bound.
func disorderWorkload(t *testing.T, bound stream.Time) (*stream.Catalog, predicate.Conj, []*stream.Tuple, []*stream.Tuple) {
	t.Helper()
	rate, horizon := 8.0, 3*stream.Minute
	if testing.Short() {
		rate, horizon = 4, 2*stream.Minute
	}
	cat, conj := predicate.Clique(4)
	cfg := source.UniformConfig(4, rate, 100, horizon, 1)
	inOrder := source.Generate(cat, cfg)
	cfg.Disorder = bound
	perturbed := source.Generate(cat, cfg)
	if len(perturbed) != len(inOrder) {
		t.Fatalf("perturbation changed arrival count: %d vs %d", len(perturbed), len(inOrder))
	}
	return cat, conj, inOrder, perturbed
}

func runDisordered(cat *stream.Catalog, conj predicate.Conj, arrivals []*stream.Tuple, mode core.Mode, disorder stream.Time) (Result, []string) {
	b := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
		Window: 2 * stream.Minute, Mode: mode, KeepResults: true,
	})
	r := NewWithOptions(b, Options{Drain: true, Disorder: disorder}).Run(arrivals)
	return r, b.Sink.ResultKeys()
}

// TestDisorderExactEquivalence pins the watermark discipline's headline
// guarantee (DESIGN.md §8): a stream delivered out of order within the
// bound, run under Options.Disorder with that bound, produces the exact
// final sequence of the in-order run — order included, not just the
// multiset — with nothing late-dropped, in every mode.
func TestDisorderExactEquivalence(t *testing.T) {
	const bound = 15 * stream.Second
	cat, conj, inOrder, perturbed := disorderWorkload(t, bound)
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"REF", core.REF()},
		{"JIT", core.JIT()},
		{"DOE", core.DOE()},
		{"Bloom", core.BloomJIT()},
	}
	if testing.Short() {
		modes = modes[:2]
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			want, wantKeys := runDisordered(cat, conj, inOrder, m.mode, 0)
			got, gotKeys := runDisordered(cat, conj, perturbed, m.mode, bound)
			if got.Counters.LateDropped != 0 {
				t.Fatalf("dropped %d tuples though disorder <= bound", got.Counters.LateDropped)
			}
			if got.Arrivals != want.Arrivals {
				t.Fatalf("arrivals %d vs in-order %d", got.Arrivals, want.Arrivals)
			}
			if got.Results != want.Results {
				t.Fatalf("%d finals vs in-order %d", got.Results, want.Results)
			}
			if got.CostUnits != want.CostUnits {
				t.Fatalf("cost %d vs in-order %d — the restored stream is not bit-identical", got.CostUnits, want.CostUnits)
			}
			if len(gotKeys) != len(wantKeys) {
				t.Fatalf("delivery count %d vs %d", len(gotKeys), len(wantKeys))
			}
			for i := range wantKeys {
				if gotKeys[i] != wantKeys[i] {
					t.Fatalf("delivery %d differs: %s vs %s", i, gotKeys[i], wantKeys[i])
				}
			}
		})
	}
}

// TestDisorderBeyondBoundConservation pins the other half of the
// contract: when the stream's disorder exceeds the engine's bound, late
// tuples are dropped and counted — processed plus dropped equals ingested,
// nothing vanishes silently. With a tracer attached, every drop must also
// emit exactly one late-drop trace event (the nonzero half of the scenario
// suite's event-conservation invariant).
func TestDisorderBeyondBoundConservation(t *testing.T) {
	cat, conj, _, perturbed := disorderWorkload(t, 20*stream.Second)
	const engineBound = 2 * stream.Second // far below the stream's 20s disorder
	b := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
		Window: 2 * stream.Minute, Mode: core.REF(), KeepResults: true,
	})
	var sink obs.CountingSink
	b.SetTrace(obs.New(obs.Options{Sink: &sink}))
	r := NewWithOptions(b, Options{Drain: true, Disorder: engineBound}).Run(perturbed)
	if r.Counters.LateDropped == 0 {
		t.Fatal("expected late drops with engine bound below the stream's disorder")
	}
	if got := uint64(r.Arrivals) + r.Counters.LateDropped; got != uint64(len(perturbed)) {
		t.Fatalf("conservation violated: processed %d + dropped %d = %d, ingested %d",
			r.Arrivals, r.Counters.LateDropped, got, len(perturbed))
	}
	if got := sink.Count(obs.KindLateDrop); got != r.Counters.LateDropped {
		t.Fatalf("late-drop events %d != LateDropped counter %d", got, r.Counters.LateDropped)
	}
	if got := sink.Count(obs.KindArrival); got != uint64(r.Arrivals) {
		t.Fatalf("arrival events %d != processed arrivals %d", got, r.Arrivals)
	}
}

// TestDisorderRejectsUnboundedLateness pins the reorder stage's internal
// watermark invariant: feeding the engine disorder beyond its bound never
// releases a regressed timestamp downstream (the run completes with drops
// instead of panicking or corrupting order).
func TestDisorderRejectsUnboundedLateness(t *testing.T) {
	cat, conj := predicate.Clique(2)
	// Hand-built adversarial trace: a tuple 1h behind the watermark.
	trace := source.Merge(
		source.Burst(cat, 0, 10*stream.Second, []stream.Value{1}),
		source.Burst(cat, 1, 2*stream.Hour, []stream.Value{1}),
	)
	// Deliver the late tuple after the far-future one.
	late := []*stream.Tuple{trace[1], trace[0]}
	b := plan.BuildTree(cat, conj, plan.LeftDeep(2), plan.Options{
		Window: time2min(), Mode: core.REF(),
	})
	r := NewWithOptions(b, Options{Drain: true, Disorder: stream.Second}).Run(late)
	if r.Counters.LateDropped != 1 {
		t.Fatalf("want exactly the adversarial tuple dropped, got %d", r.Counters.LateDropped)
	}
	if r.Arrivals != 1 {
		t.Fatalf("want 1 processed arrival, got %d", r.Arrivals)
	}
}

func time2min() stream.Time { return 2 * stream.Minute }
