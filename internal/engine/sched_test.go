package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// TestDeadlineSweepEquivalence pins the DESIGN.md §4 deadline contract:
// skipping a sweep below an operator's NextDeadline changes nothing, so a
// deadline-scheduled run and a sweep-every-arrival run (the historical hot
// path) produce identical results, identical sink order and identical
// counters — except Sweeps, which is exactly the scheduling win. Sweeps
// must strictly decrease on sparse streams, where most per-arrival sweeps
// were no-ops.
func TestDeadlineSweepEquivalence(t *testing.T) {
	workloads := []struct {
		name    string
		n       int
		rate    float64
		dmax    int64
		window  stream.Time
		horizon stream.Time
		bushy   bool
	}{
		{"sparse", 3, 0.2, 20, 2 * stream.Minute, 10 * stream.Minute, true},
		{"default", 3, 1.0, 5, 45 * stream.Second, 3 * stream.Minute, false},
		{"dense", 4, 8.0, 100, 30 * stream.Second, 80 * stream.Second, true},
	}
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"JIT", core.JIT()},
		{"DOE", core.DOE()},
		{"Bloom", core.BloomJIT()},
	}
	for _, w := range workloads {
		cat, conj := predicate.Clique(w.n)
		arrivals := source.Generate(cat, source.UniformConfig(w.n, w.rate, w.dmax, w.horizon, 1))
		shape := plan.LeftDeep(w.n)
		if w.bushy {
			shape = plan.Bushy(w.n)
		}
		for _, m := range modes {
			run := func(everyArrival, drain bool) (Result, []string) {
				b := plan.BuildTree(cat, conj, shape, plan.Options{
					Window: w.window, Mode: m.mode, KeepResults: true,
				})
				r := NewWithOptions(b, Options{
					SweepEveryArrival: everyArrival, Drain: drain,
				}).Run(arrivals)
				return r, b.Sink.ResultKeys()
			}
			for _, drain := range []bool{false, true} {
				sched, schedKeys := run(false, drain)
				every, everyKeys := run(true, drain)
				sc, ec := sched.Counters, every.Counters
				sc.Sweeps, ec.Sweeps = 0, 0
				if sc != ec {
					t.Errorf("%s/%s drain=%v: counters diverge\nsched: %s\nevery: %s",
						w.name, m.name, drain, sc.String(), ec.String())
				}
				if sched.Results != every.Results || sched.PeakMemKB != every.PeakMemKB {
					t.Errorf("%s/%s drain=%v: results %d vs %d, mem %.1f vs %.1f",
						w.name, m.name, drain, sched.Results, every.Results,
						sched.PeakMemKB, every.PeakMemKB)
				}
				if len(schedKeys) != len(everyKeys) {
					t.Errorf("%s/%s drain=%v: sink sizes %d vs %d", w.name, m.name, drain,
						len(schedKeys), len(everyKeys))
				} else {
					for i := range schedKeys {
						if schedKeys[i] != everyKeys[i] {
							t.Errorf("%s/%s drain=%v: sink order diverges at %d",
								w.name, m.name, drain, i)
							break
						}
					}
				}
				if sched.Counters.Sweeps > every.Counters.Sweeps {
					t.Errorf("%s/%s drain=%v: deadline scheduling fired MORE sweeps (%d) than every-arrival (%d)",
						w.name, m.name, drain, sched.Counters.Sweeps, every.Counters.Sweeps)
				}
			}
		}
		// The scheduling win itself: on the sparse workload the deadline heap
		// must skip the vast majority of per-arrival sweeps.
		if w.name == "sparse" {
			b := plan.BuildTree(cat, conj, shape, plan.Options{Window: w.window, Mode: core.JIT()})
			sched := New(b).Run(arrivals)
			b2 := plan.BuildTree(cat, conj, shape, plan.Options{Window: w.window, Mode: core.JIT()})
			every := NewWithOptions(b2, Options{SweepEveryArrival: true}).Run(arrivals)
			if sched.Counters.Sweeps*2 >= every.Counters.Sweeps {
				t.Errorf("sparse: expected <half the sweeps, got %d vs %d",
					sched.Counters.Sweeps, every.Counters.Sweeps)
			}
		}
	}
}
