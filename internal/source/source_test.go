package source

import (
	"testing"

	"repro/internal/predicate"
	"repro/internal/stream"
)

func TestGenerateDeterministic(t *testing.T) {
	cat, _ := predicate.Clique(3)
	cfg := UniformConfig(3, 2.0, 10, 30*stream.Second, 42)
	a := Generate(cat, cfg)
	b := Generate(cat, cfg)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TS != b[i].TS || a[i].Source != b[i].Source || a[i].Vals[0] != b[i].Vals[0] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestGenerateOrderAndBounds(t *testing.T) {
	cat, _ := predicate.Clique(4)
	cfg := UniformConfig(4, 1.5, 7, 60*stream.Second, 3)
	all := Generate(cat, cfg)
	var last stream.Time
	counts := make([]int, 4)
	for i, tup := range all {
		if tup.TS < last {
			t.Fatalf("out of order at %d", i)
		}
		last = tup.TS
		if tup.TS >= 60*stream.Second {
			t.Fatalf("tuple beyond horizon: %v", tup.TS)
		}
		if tup.ID != uint64(i+1) {
			t.Fatalf("ids not sequential")
		}
		counts[tup.Source]++
		for _, v := range tup.Vals {
			if v < 1 || v > 7 {
				t.Fatalf("value %d out of [1..7]", v)
			}
		}
	}
	// λ=1.5/s over 60s → ~90 tuples/source; allow wide slack.
	for s, n := range counts {
		if n < 45 || n > 180 {
			t.Errorf("source %d count %d implausible for λ=1.5", s, n)
		}
	}
}

func TestPerColumnDomainOverride(t *testing.T) {
	cat, _ := predicate.Clique(3)
	cfg := UniformConfig(3, 5.0, 5, 30*stream.Second, 9)
	spec := cfg.Specs[2]
	spec.DMaxByCol = map[int]int64{0: 500}
	cfg.Specs[2] = spec
	all := Generate(cat, cfg)
	sawBig := false
	for _, tup := range all {
		if tup.Source != 2 {
			continue
		}
		if tup.Vals[0] > 5 {
			sawBig = true
		}
		if tup.Vals[1] > 5 {
			t.Fatalf("non-overridden column out of range: %d", tup.Vals[1])
		}
	}
	if !sawBig {
		t.Fatal("override seems ignored (no value above base domain)")
	}
}

func TestBurstAndMerge(t *testing.T) {
	cat, _ := predicate.Clique(2)
	a := Burst(cat, 0, 100, []stream.Value{1}, []stream.Value{2})
	b := Burst(cat, 1, 50, []stream.Value{3})
	all := Merge(a, b)
	if len(all) != 3 || all[0].Source != 1 || all[0].TS != 50 {
		t.Fatalf("merge order wrong: %v", all)
	}
	if all[1].ID != 2 || all[2].ID != 3 {
		t.Fatal("merge ids wrong")
	}
}

func TestStreamMatchesGenerate(t *testing.T) {
	cases := []struct {
		name string
		n    int
		cfg  func(cat *stream.Catalog) Config
	}{
		{"uniform", 4, func(*stream.Catalog) Config {
			return UniformConfig(4, 8, 100, 3*stream.Minute, 1)
		}},
		{"overrides", 3, func(*stream.Catalog) Config {
			cfg := UniformConfig(3, 0.5, 10, 10*stream.Minute, 42)
			cfg.Specs[2].DMaxByCol = map[int]int64{0: 500}
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat, _ := predicate.Clique(tc.n)
			cfg := tc.cfg(cat)
			all := Generate(cat, cfg)
			next := Stream(cat, cfg)
			for i, want := range all {
				got, ok := next()
				if !ok {
					t.Fatalf("stream ended at %d, want %d tuples", i, len(all))
				}
				if got.ID != want.ID || got.Source != want.Source || got.TS != want.TS {
					t.Fatalf("tuple %d: stream %+v vs generate %+v", i, got, want)
				}
				for c := range want.Vals {
					if got.Vals[c] != want.Vals[c] {
						t.Fatalf("tuple %d col %d: %v vs %v", i, c, got.Vals[c], want.Vals[c])
					}
				}
			}
			if _, ok := next(); ok {
				t.Fatal("stream yields more tuples than Generate")
			}
		})
	}
}
