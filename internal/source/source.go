// Package source generates the synthetic workloads of Sec. VI: for each of
// N streaming sources, tuples arrive with exponential (Poisson-process)
// inter-arrival times at average rate λ and carry uniformly distributed
// integer columns in [1..dmax]. Per-source rate and domain overrides support
// the low-selectivity left-deep setup (stream D fed from [1..10²·dmax]).
// All randomness is seeded, making every run reproducible.
package source

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/stream"
)

// SourceSpec configures one stream.
type SourceSpec struct {
	// Rate is the average arrival rate in tuples per second (λ).
	Rate float64
	// DMax is the inclusive upper bound of the uniform value domain.
	DMax int64
	// DMaxByCol optionally overrides DMax per column index.
	DMaxByCol map[int]int64
}

// Config describes a whole workload.
type Config struct {
	// Horizon is the application-time length of the run.
	Horizon stream.Time
	// Seed drives all randomness.
	Seed int64
	// Specs holds one entry per catalog source, indexed by SourceID.
	Specs []SourceSpec
}

// UniformConfig builds a Config where every source shares rate and domain.
func UniformConfig(n int, rate float64, dmax int64, horizon stream.Time, seed int64) Config {
	specs := make([]SourceSpec, n)
	for i := range specs {
		specs[i] = SourceSpec{Rate: rate, DMax: dmax}
	}
	return Config{Horizon: horizon, Seed: seed, Specs: specs}
}

// gen lazily produces one source's Poisson arrival sequence. Its draws from
// the per-source RNG happen in exactly the order Generate historically made
// them (gap, then column values), so lazy and materialized generation yield
// byte-identical tuples.
type gen struct {
	id      stream.SourceID
	spec    SourceSpec
	schema  *stream.Schema
	rng     *rand.Rand
	t       stream.Time
	horizon stream.Time
}

func newGen(cat *stream.Catalog, cfg Config, id stream.SourceID) *gen {
	return &gen{
		id:      id,
		spec:    cfg.Specs[id],
		schema:  cat.Source(id),
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
		horizon: cfg.Horizon,
	}
}

// next returns the source's next arrival, or nil once the horizon is hit.
// Tuple IDs are left unassigned; the merging caller assigns them in global
// delivery order.
func (g *gen) next() *stream.Tuple {
	// Exponential inter-arrival: -ln(U)/λ seconds.
	u := g.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	gap := stream.Time(-math.Log(u) / g.spec.Rate * float64(stream.Second))
	if gap < 1 {
		gap = 1
	}
	g.t += gap
	if g.t >= g.horizon {
		return nil
	}
	vals := make([]stream.Value, g.schema.NumCols())
	for c := range vals {
		d := g.spec.DMax
		if o, ok := g.spec.DMaxByCol[c]; ok {
			d = o
		}
		vals[c] = stream.Value(g.rng.Int63n(d) + 1)
	}
	return &stream.Tuple{Source: g.id, TS: g.t, Vals: vals}
}

// Stream returns a pull-based iterator over the workload: each call yields
// the next arrival in (timestamp, source id) order, with IDs assigned in
// delivery order, until the horizon exhausts every source. It produces
// exactly the sequence Generate materializes (see TestStreamMatchesGenerate)
// while keeping only one pending tuple per source in memory — the engine's
// RunStream ingests it directly, so a run's footprint is O(operator state),
// not O(arrivals).
func Stream(cat *stream.Catalog, cfg Config) func() (*stream.Tuple, bool) {
	n := cat.NumSources()
	gens := make([]*gen, n)
	heads := make([]*stream.Tuple, n)
	for id := 0; id < n; id++ {
		gens[id] = newGen(cat, cfg, stream.SourceID(id))
		heads[id] = gens[id].next()
	}
	var nextID uint64
	return func() (*stream.Tuple, bool) {
		best := -1
		for i, h := range heads {
			// Strict < keeps the lowest source id on timestamp ties —
			// the same total order Generate's stable sort produces.
			if h != nil && (best < 0 || h.TS < heads[best].TS) {
				best = i
			}
		}
		if best < 0 {
			return nil, false
		}
		t := heads[best]
		heads[best] = gens[best].next()
		nextID++
		t.ID = nextID
		return t, true
	}
}

// Generate produces the merged, timestamp-ordered arrival sequence for the
// catalog. Ties are broken by source id then arrival index, making the
// order total and deterministic. Stream is the lazy form of the same
// sequence.
func Generate(cat *stream.Catalog, cfg Config) []*stream.Tuple {
	var all []*stream.Tuple
	for id := 0; id < cat.NumSources(); id++ {
		g := newGen(cat, cfg, stream.SourceID(id))
		for t := g.next(); t != nil; t = g.next() {
			all = append(all, t)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].TS != all[j].TS {
			return all[i].TS < all[j].TS
		}
		return all[i].Source < all[j].Source
	})
	for i, t := range all {
		t.ID = uint64(i + 1)
	}
	return all
}

// Burst appends n tuples of one source at a fixed timestamp with the given
// column values — handy for hand-built traces in tests and examples.
func Burst(cat *stream.Catalog, id stream.SourceID, ts stream.Time, rows ...[]stream.Value) []*stream.Tuple {
	out := make([]*stream.Tuple, 0, len(rows))
	for _, vals := range rows {
		out = append(out, &stream.Tuple{Source: id, TS: ts, Vals: vals})
	}
	return out
}

// Merge combines hand-built traces into one ordered arrival sequence and
// assigns IDs.
func Merge(traces ...[]*stream.Tuple) []*stream.Tuple {
	var all []*stream.Tuple
	for _, tr := range traces {
		all = append(all, tr...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].TS != all[j].TS {
			return all[i].TS < all[j].TS
		}
		return all[i].Source < all[j].Source
	})
	for i, t := range all {
		t.ID = uint64(i + 1)
	}
	return all
}
