// Package source generates the synthetic workloads of Sec. VI: for each of
// N streaming sources, tuples arrive with exponential (Poisson-process)
// inter-arrival times at average rate λ and carry uniformly distributed
// integer columns in [1..dmax]. Per-source rate and domain overrides support
// the low-selectivity left-deep setup (stream D fed from [1..10²·dmax]).
// All randomness is seeded, making every run reproducible.
package source

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/stream"
)

// SourceSpec configures one stream.
type SourceSpec struct {
	// Rate is the average arrival rate in tuples per second (λ).
	Rate float64
	// DMax is the inclusive upper bound of the uniform value domain.
	DMax int64
	// DMaxByCol optionally overrides DMax per column index.
	DMaxByCol map[int]int64
}

// Config describes a whole workload.
type Config struct {
	// Horizon is the application-time length of the run.
	Horizon stream.Time
	// Seed drives all randomness.
	Seed int64
	// Specs holds one entry per catalog source, indexed by SourceID.
	Specs []SourceSpec
}

// UniformConfig builds a Config where every source shares rate and domain.
func UniformConfig(n int, rate float64, dmax int64, horizon stream.Time, seed int64) Config {
	specs := make([]SourceSpec, n)
	for i := range specs {
		specs[i] = SourceSpec{Rate: rate, DMax: dmax}
	}
	return Config{Horizon: horizon, Seed: seed, Specs: specs}
}

// Generate produces the merged, timestamp-ordered arrival sequence for the
// catalog. Ties are broken by source id then arrival index, making the
// order total and deterministic.
func Generate(cat *stream.Catalog, cfg Config) []*stream.Tuple {
	var all []*stream.Tuple
	for id := 0; id < cat.NumSources(); id++ {
		spec := cfg.Specs[id]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
		schema := cat.Source(stream.SourceID(id))
		t := stream.Time(0)
		for {
			// Exponential inter-arrival: -ln(U)/λ seconds.
			u := rng.Float64()
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			gap := stream.Time(-math.Log(u) / spec.Rate * float64(stream.Second))
			if gap < 1 {
				gap = 1
			}
			t += gap
			if t >= cfg.Horizon {
				break
			}
			vals := make([]stream.Value, schema.NumCols())
			for c := range vals {
				d := spec.DMax
				if o, ok := spec.DMaxByCol[c]; ok {
					d = o
				}
				vals[c] = stream.Value(rng.Int63n(d) + 1)
			}
			all = append(all, &stream.Tuple{
				Source: stream.SourceID(id),
				TS:     t,
				Vals:   vals,
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].TS != all[j].TS {
			return all[i].TS < all[j].TS
		}
		return all[i].Source < all[j].Source
	})
	for i, t := range all {
		t.ID = uint64(i + 1)
	}
	return all
}

// Burst appends n tuples of one source at a fixed timestamp with the given
// column values — handy for hand-built traces in tests and examples.
func Burst(cat *stream.Catalog, id stream.SourceID, ts stream.Time, rows ...[]stream.Value) []*stream.Tuple {
	out := make([]*stream.Tuple, 0, len(rows))
	for _, vals := range rows {
		out = append(out, &stream.Tuple{Source: id, TS: ts, Vals: vals})
	}
	return out
}

// Merge combines hand-built traces into one ordered arrival sequence and
// assigns IDs.
func Merge(traces ...[]*stream.Tuple) []*stream.Tuple {
	var all []*stream.Tuple
	for _, tr := range traces {
		all = append(all, tr...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].TS != all[j].TS {
			return all[i].TS < all[j].TS
		}
		return all[i].Source < all[j].Source
	})
	for i, t := range all {
		t.ID = uint64(i + 1)
	}
	return all
}
