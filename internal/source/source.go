// Package source generates the synthetic workloads of Sec. VI: for each of
// N streaming sources, tuples arrive with exponential (Poisson-process)
// inter-arrival times at average rate λ and carry uniformly distributed
// integer columns in [1..dmax]. Per-source rate and domain overrides support
// the low-selectivity left-deep setup (stream D fed from [1..10²·dmax]).
// All randomness is seeded, making every run reproducible.
//
// Beyond the paper's friendly traffic, the package provides composable
// hostile-stream mutators (DESIGN.md §8): Zipf-skewed value domains
// (SourceSpec.Zipf), burst regime-switching rate schedules
// (SourceSpec.BurstFactor/BurstPeriod), and bounded out-of-order delivery
// (Config.Disorder, Disordered). Mutators preserve the lazy-Stream ≡
// materialized-Generate equivalence.
package source

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/stream"
)

// SourceSpec configures one stream.
type SourceSpec struct {
	// Rate is the average arrival rate in tuples per second (λ).
	Rate float64
	// DMax is the inclusive upper bound of the uniform value domain.
	DMax int64
	// DMaxByCol optionally overrides DMax per column index.
	DMaxByCol map[int]int64
	// Zipf, when > 1, skews column values: instead of uniform draws over
	// [1..dmax], values follow a Zipf distribution with exponent Zipf over
	// the same domain (rank 1 most frequent). Go's rand.Zipf requires the
	// exponent to exceed 1, so 0 < Zipf <= 1 is rejected at construction.
	// 0 keeps the paper's uniform domains.
	Zipf float64
	// BurstFactor, when > 1, switches the source between a high-rate regime
	// (Rate*BurstFactor during the first half of each cycle) and the base
	// Rate (second half) — a deterministic regime-switching schedule that
	// stresses deadline scheduling and partition balance. 0 or 1 keeps the
	// stationary Poisson process.
	BurstFactor float64
	// BurstPeriod is the regime cycle length; required when BurstFactor > 1.
	BurstPeriod stream.Time
}

// Config describes a whole workload.
type Config struct {
	// Horizon is the application-time length of the run.
	Horizon stream.Time
	// Seed drives all randomness.
	Seed int64
	// Specs holds one entry per catalog source, indexed by SourceID.
	Specs []SourceSpec
	// Disorder, when > 0, perturbs delivery order: each tuple is delayed by
	// a uniform jitter in [0, Disorder] application-time units, so tuples
	// can arrive up to Disorder late relative to timestamp order. IDs are
	// assigned in timestamp order BEFORE perturbation, so the disordered
	// sequence is a permutation of the in-order one and multiset checks
	// line up element-wise. 0 keeps the paper's in-order delivery.
	Disorder stream.Time
}

// UniformConfig builds a Config where every source shares rate and domain.
func UniformConfig(n int, rate float64, dmax int64, horizon stream.Time, seed int64) Config {
	specs := make([]SourceSpec, n)
	for i := range specs {
		specs[i] = SourceSpec{Rate: rate, DMax: dmax}
	}
	return Config{Horizon: horizon, Seed: seed, Specs: specs}
}

// gen lazily produces one source's Poisson arrival sequence. Its draws from
// the per-source RNG happen in exactly the order Generate historically made
// them (gap, then column values), so lazy and materialized generation yield
// byte-identical tuples.
type gen struct {
	id      stream.SourceID
	spec    SourceSpec
	schema  *stream.Schema
	rng     *rand.Rand
	t       stream.Time
	horizon stream.Time
	// zipfs caches one Zipf variate generator per distinct domain size so
	// repeated draws reuse the precomputed rejection constants. All draws
	// still come from the single per-source rng, keeping the draw sequence
	// deterministic.
	zipfs map[int64]*rand.Zipf
}

func newGen(cat *stream.Catalog, cfg Config, id stream.SourceID) *gen {
	g := &gen{
		id:      id,
		spec:    cfg.Specs[id],
		schema:  cat.Source(id),
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
		horizon: cfg.Horizon,
	}
	if z := g.spec.Zipf; z != 0 {
		if z <= 1 {
			panic(fmt.Sprintf("source: Zipf exponent must be > 1, got %v", z))
		}
		g.zipfs = make(map[int64]*rand.Zipf)
	}
	return g
}

// rate returns the effective arrival rate at application time t under the
// burst schedule: Rate*BurstFactor during the first half of each BurstPeriod
// cycle, the base Rate during the second half.
func (g *gen) rate(t stream.Time) float64 {
	f, p := g.spec.BurstFactor, g.spec.BurstPeriod
	if f <= 1 || p <= 0 {
		return g.spec.Rate
	}
	if t%p < p/2 {
		return g.spec.Rate * f
	}
	return g.spec.Rate
}

// draw produces one column value over domain [1..d] — uniform by default,
// Zipf-skewed (rank 1 most frequent) when the spec requests it.
func (g *gen) draw(d int64) stream.Value {
	if g.zipfs == nil {
		return stream.Value(g.rng.Int63n(d) + 1)
	}
	z, ok := g.zipfs[d]
	if !ok {
		z = rand.NewZipf(g.rng, g.spec.Zipf, 1, uint64(d-1))
		g.zipfs[d] = z
	}
	return stream.Value(z.Uint64()) + 1
}

// next returns the source's next arrival, or nil once the horizon is hit.
// Tuple IDs are left unassigned; the merging caller assigns them in global
// delivery order.
func (g *gen) next() *stream.Tuple {
	// Exponential inter-arrival: -ln(U)/λ seconds, with λ read from the
	// burst schedule at the current regime.
	u := g.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	gap := stream.Time(-math.Log(u) / g.rate(g.t) * float64(stream.Second))
	if gap < 1 {
		gap = 1
	}
	g.t += gap
	if g.t >= g.horizon {
		return nil
	}
	vals := make([]stream.Value, g.schema.NumCols())
	for c := range vals {
		d := g.spec.DMax
		if o, ok := g.spec.DMaxByCol[c]; ok {
			d = o
		}
		vals[c] = g.draw(d)
	}
	return &stream.Tuple{Source: g.id, TS: g.t, Vals: vals}
}

// Stream returns a pull-based iterator over the workload: each call yields
// the next arrival in (timestamp, source id) order, with IDs assigned in
// delivery order, until the horizon exhausts every source. It produces
// exactly the sequence Generate materializes (see TestStreamMatchesGenerate)
// while keeping only one pending tuple per source in memory — the engine's
// RunStream ingests it directly, so a run's footprint is O(operator state),
// not O(arrivals).
func Stream(cat *stream.Catalog, cfg Config) func() (*stream.Tuple, bool) {
	n := cat.NumSources()
	gens := make([]*gen, n)
	heads := make([]*stream.Tuple, n)
	for id := 0; id < n; id++ {
		gens[id] = newGen(cat, cfg, stream.SourceID(id))
		heads[id] = gens[id].next()
	}
	var nextID uint64
	inOrder := func() (*stream.Tuple, bool) {
		best := -1
		for i, h := range heads {
			// Strict < keeps the lowest source id on timestamp ties —
			// the same total order Generate's stable sort produces.
			if h != nil && (best < 0 || h.TS < heads[best].TS) {
				best = i
			}
		}
		if best < 0 {
			return nil, false
		}
		t := heads[best]
		heads[best] = gens[best].next()
		nextID++
		t.ID = nextID
		return t, true
	}
	if cfg.Disorder > 0 {
		// The jitter rng occupies the id=-1 slot of the per-source seed
		// family, so it never collides with a source's draw sequence.
		return Disordered(inOrder, cfg.Disorder, cfg.Seed-7919)
	}
	return inOrder
}

// delayed is one in-flight tuple of a Disordered iterator: the tuple plus
// its jittered delivery time.
type delayed struct {
	t        *stream.Tuple
	delivery stream.Time
}

// Disordered wraps an in-order (non-decreasing TS, IDs already assigned)
// tuple iterator and re-emits its tuples in jittered delivery order:
// delivery(t) = t.TS + uniform[0, bound]. Timestamps and IDs are untouched —
// only the emission order is perturbed — so the output is a permutation of
// the input in which every tuple appears at most `bound` late relative to
// timestamp order (the bounded-disorder model of DESIGN.md §8). The
// emission order is deterministic for a given seed: ties on delivery time
// break by tuple ID. Memory is O(arrivals within one bound), not O(stream).
func Disordered(next func() (*stream.Tuple, bool), bound stream.Time, seed int64) func() (*stream.Tuple, bool) {
	if bound <= 0 {
		return next
	}
	rng := rand.New(rand.NewSource(seed))
	var h []delayed // binary min-heap on (delivery, ID)
	less := func(a, b delayed) bool {
		if a.delivery != b.delivery {
			return a.delivery < b.delivery
		}
		return a.t.ID < b.t.ID
	}
	push := func(d delayed) {
		h = append(h, d)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	pop := func() delayed {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h[last] = delayed{}
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	head, headOK := next()
	return func() (*stream.Tuple, bool) {
		// Admit source tuples until the next one can no longer precede the
		// current heap minimum. Any future tuple f satisfies
		// delivery(f) >= f.TS >= head.TS, so once head.TS exceeds the heap
		// minimum's delivery, that minimum is globally next.
		for headOK && (len(h) == 0 || head.TS <= h[0].delivery) {
			push(delayed{t: head, delivery: head.TS + stream.Time(rng.Int63n(int64(bound)+1))})
			head, headOK = next()
		}
		if len(h) == 0 {
			return nil, false
		}
		return pop().t, true
	}
}

// Generate produces the merged, timestamp-ordered arrival sequence for the
// catalog. Ties are broken by source id then arrival index, making the
// order total and deterministic. Stream is the lazy form of the same
// sequence.
func Generate(cat *stream.Catalog, cfg Config) []*stream.Tuple {
	if cfg.Disorder > 0 {
		// Materialize through Stream so the disordered sequence is
		// element-wise identical to the lazy iterator's.
		next := Stream(cat, cfg)
		var all []*stream.Tuple
		for t, ok := next(); ok; t, ok = next() {
			all = append(all, t)
		}
		return all
	}
	var all []*stream.Tuple
	for id := 0; id < cat.NumSources(); id++ {
		g := newGen(cat, cfg, stream.SourceID(id))
		for t := g.next(); t != nil; t = g.next() {
			all = append(all, t)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].TS != all[j].TS {
			return all[i].TS < all[j].TS
		}
		return all[i].Source < all[j].Source
	})
	for i, t := range all {
		t.ID = uint64(i + 1)
	}
	return all
}

// Burst appends n tuples of one source at a fixed timestamp with the given
// column values — handy for hand-built traces in tests and examples.
func Burst(cat *stream.Catalog, id stream.SourceID, ts stream.Time, rows ...[]stream.Value) []*stream.Tuple {
	out := make([]*stream.Tuple, 0, len(rows))
	for _, vals := range rows {
		out = append(out, &stream.Tuple{Source: id, TS: ts, Vals: vals})
	}
	return out
}

// Merge combines hand-built traces into one ordered arrival sequence and
// assigns IDs.
func Merge(traces ...[]*stream.Tuple) []*stream.Tuple {
	var all []*stream.Tuple
	for _, tr := range traces {
		all = append(all, tr...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].TS != all[j].TS {
			return all[i].TS < all[j].TS
		}
		return all[i].Source < all[j].Source
	})
	for i, t := range all {
		t.ID = uint64(i + 1)
	}
	return all
}
