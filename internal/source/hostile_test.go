package source

import (
	"testing"

	"repro/internal/predicate"
	"repro/internal/stream"
)

// TestZipfSkew pins the skew mutator: with a Zipf exponent the low ranks
// dominate the draw frequency while every value stays inside the domain,
// and the draws remain deterministic per seed.
func TestZipfSkew(t *testing.T) {
	cat, _ := predicate.Clique(3)
	cfg := UniformConfig(3, 20.0, 50, 2*stream.Minute, 7)
	for i := range cfg.Specs {
		cfg.Specs[i].Zipf = 1.5
	}
	all := Generate(cat, cfg)
	if len(all) == 0 {
		t.Fatal("no arrivals")
	}
	counts := map[stream.Value]int{}
	total := 0
	for _, tup := range all {
		for _, v := range tup.Vals {
			if v < 1 || v > 50 {
				t.Fatalf("value %d out of [1..50]", v)
			}
			counts[v]++
			total++
		}
	}
	// Under uniform draws value 1 holds ~2% of the mass; Zipf s=1.5 over
	// [1..50] gives it ~38%. Anything above 20% proves the skew is applied.
	if frac := float64(counts[1]) / float64(total); frac < 0.20 {
		t.Fatalf("value 1 carries %.1f%% of draws; want the Zipf head (> 20%%)", frac*100)
	}
	again := Generate(cat, cfg)
	if len(again) != len(all) {
		t.Fatalf("nondeterministic length: %d vs %d", len(again), len(all))
	}
	for i := range all {
		if all[i].TS != again[i].TS || all[i].Vals[0] != again[i].Vals[0] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

// TestZipfRejectsShallowExponent pins the guard: rand.Zipf needs s > 1, so
// a spec with 0 < Zipf <= 1 must fail loudly instead of yielding nil draws.
func TestZipfRejectsShallowExponent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf=1 should panic")
		}
	}()
	cat, _ := predicate.Clique(2)
	cfg := UniformConfig(2, 1.0, 10, 10*stream.Second, 1)
	cfg.Specs[0].Zipf = 1
	Generate(cat, cfg)
}

// TestBurstSchedule pins the regime-switching rate schedule: with factor 4
// over a 40-second period, the first half of each cycle must carry several
// times the arrivals of the second half.
func TestBurstSchedule(t *testing.T) {
	cat, _ := predicate.Clique(2)
	cfg := UniformConfig(2, 2.0, 10, 4*stream.Minute, 11)
	period := 40 * stream.Second
	for i := range cfg.Specs {
		cfg.Specs[i].BurstFactor = 4
		cfg.Specs[i].BurstPeriod = period
	}
	all := Generate(cat, cfg)
	var high, low int
	for _, tup := range all {
		if tup.TS%period < period/2 {
			high++
		} else {
			low++
		}
	}
	if high < 2*low {
		t.Fatalf("burst halves not skewed: %d high-regime vs %d base-regime arrivals", high, low)
	}
	var last stream.Time
	for i, tup := range all {
		if tup.TS < last {
			t.Fatalf("burst schedule broke timestamp order at %d", i)
		}
		last = tup.TS
	}
}

// TestDisorderedPermutation pins the disorder mutator: the output is a
// permutation of the in-order sequence (IDs preserved, each exactly once),
// every tuple is at most `bound` late relative to the running timestamp
// maximum, and the perturbation is deterministic per seed.
func TestDisorderedPermutation(t *testing.T) {
	cat, _ := predicate.Clique(3)
	base := UniformConfig(3, 5.0, 20, 2*stream.Minute, 5)
	inOrder := Generate(cat, base)

	cfg := base
	cfg.Disorder = 10 * stream.Second
	perturbed := Generate(cat, cfg)

	if len(perturbed) != len(inOrder) {
		t.Fatalf("length changed: %d vs %d", len(perturbed), len(inOrder))
	}
	seen := make(map[uint64]bool, len(perturbed))
	var maxTS stream.Time
	outOfOrder := false
	for i, tup := range perturbed {
		if seen[tup.ID] {
			t.Fatalf("tuple %d delivered twice", tup.ID)
		}
		seen[tup.ID] = true
		if tup.TS < maxTS-cfg.Disorder {
			t.Fatalf("tuple %d at index %d is %v late; bound %v",
				tup.ID, i, maxTS-tup.TS, cfg.Disorder)
		}
		if tup.TS < maxTS {
			outOfOrder = true
		}
		if tup.TS > maxTS {
			maxTS = tup.TS
		}
		// IDs were assigned pre-perturbation: tuple ID k must be the in-order
		// sequence's k-th element, values included.
		orig := inOrder[tup.ID-1]
		if orig.TS != tup.TS || orig.Source != tup.Source {
			t.Fatalf("tuple %d does not match its in-order twin", tup.ID)
		}
	}
	if !outOfOrder {
		t.Fatal("disorder bound 10s produced a fully ordered stream; mutator is a no-op")
	}
	again := Generate(cat, cfg)
	for i := range perturbed {
		if perturbed[i].ID != again[i].ID {
			t.Fatalf("nondeterministic disorder at %d", i)
		}
	}
}

// TestStreamMatchesGenerateHostile extends the lazy≡materialized pin to the
// mutator stack: with skew, bursts and disorder all active, Stream must
// yield exactly Generate's sequence.
func TestStreamMatchesGenerateHostile(t *testing.T) {
	cat, _ := predicate.Clique(3)
	cfg := UniformConfig(3, 4.0, 30, 90*stream.Second, 13)
	for i := range cfg.Specs {
		cfg.Specs[i].Zipf = 2.0
		cfg.Specs[i].BurstFactor = 3
		cfg.Specs[i].BurstPeriod = 30 * stream.Second
	}
	cfg.Disorder = 5 * stream.Second
	want := Generate(cat, cfg)
	next := Stream(cat, cfg)
	for i, w := range want {
		g, ok := next()
		if !ok {
			t.Fatalf("stream ended early at %d/%d", i, len(want))
		}
		if g.ID != w.ID || g.TS != w.TS || g.Source != w.Source {
			t.Fatalf("stream diverges from generate at %d: got id=%d ts=%v, want id=%d ts=%v",
				i, g.ID, g.TS, w.ID, w.TS)
		}
	}
	if _, ok := next(); ok {
		t.Fatal("stream yields beyond generate")
	}
}
