package source

import (
	"testing"

	"repro/internal/predicate"
	"repro/internal/stream"
)

// FuzzStreamMerge drives the lazy k-way merge with arbitrary workload
// parameters and checks its contract against the materialized generator:
// identical element-wise sequence, non-decreasing timestamps with the
// lowest source winning ties, sequential IDs, and the horizon respected.
func FuzzStreamMerge(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(10), uint16(300))
	f.Add(int64(42), uint8(1), uint8(200), uint16(50))
	f.Add(int64(-7), uint8(255), uint8(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, rateQ, dmaxQ uint8, horizonQ uint16) {
		rate := 0.5 + float64(rateQ)/8 // 0.5 .. ~32 tuples/sec
		dmax := int64(dmaxQ) + 1
		horizon := stream.Time(horizonQ%2000+1) * 50 // 50ms .. 100s
		cat, _ := predicate.Clique(3)
		cfg := UniformConfig(3, rate, dmax, horizon, seed)

		want := Generate(cat, cfg)
		next := Stream(cat, cfg)
		var last stream.Time
		var lastSrc stream.SourceID
		for i := 0; ; i++ {
			g, ok := next()
			if !ok {
				if i != len(want) {
					t.Fatalf("stream ended at %d, generate has %d", i, len(want))
				}
				return
			}
			if i >= len(want) {
				t.Fatalf("stream yields beyond generate's %d tuples", len(want))
			}
			w := want[i]
			if g.ID != w.ID || g.TS != w.TS || g.Source != w.Source {
				t.Fatalf("diverges at %d: got (id=%d ts=%v s=%d), want (id=%d ts=%v s=%d)",
					i, g.ID, g.TS, g.Source, w.ID, w.TS, w.Source)
			}
			if g.ID != uint64(i+1) {
				t.Fatalf("non-sequential ID %d at %d", g.ID, i)
			}
			if g.TS < last || (g.TS == last && g.Source < lastSrc) {
				t.Fatalf("merge order violated at %d: (%v,s%d) after (%v,s%d)",
					i, g.TS, g.Source, last, lastSrc)
			}
			if g.TS >= horizon {
				t.Fatalf("tuple at %v beyond horizon %v", g.TS, horizon)
			}
			last, lastSrc = g.TS, g.Source
		}
	})
}

// FuzzDisorder feeds the disorder mutator arbitrary hand-built in-order
// traces and checks its contract: the output is a permutation of the input
// (every ID exactly once), watermark-respecting (no tuple more than the
// bound behind the running timestamp maximum), and deterministic per seed.
func FuzzDisorder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 40, 5}, uint16(10), int64(1))
	f.Add([]byte{255, 255, 0, 0}, uint16(1), int64(-3))
	f.Add([]byte{}, uint16(100), int64(9))
	f.Fuzz(func(t *testing.T, deltas []byte, boundQ uint16, seed int64) {
		if len(deltas) > 1<<12 {
			deltas = deltas[:1<<12]
		}
		bound := stream.Time(boundQ%500) + 1
		// Build an in-order trace: each byte advances the clock by its low
		// nibble and picks a source from its high bits, IDs sequential.
		trace := make([]*stream.Tuple, len(deltas))
		var ts stream.Time
		for i, d := range deltas {
			ts += stream.Time(d & 0x0f)
			trace[i] = &stream.Tuple{
				ID:     uint64(i + 1),
				Source: stream.SourceID(d >> 6),
				TS:     ts,
				Vals:   []stream.Value{stream.Value(d)},
			}
		}
		run := func() []*stream.Tuple {
			i := 0
			next := Disordered(func() (*stream.Tuple, bool) {
				if i >= len(trace) {
					return nil, false
				}
				tp := trace[i]
				i++
				return tp, true
			}, bound, seed)
			var out []*stream.Tuple
			for tp, ok := next(); ok; tp, ok = next() {
				out = append(out, tp)
			}
			return out
		}
		out := run()
		if len(out) != len(trace) {
			t.Fatalf("lost tuples: %d in, %d out", len(trace), len(out))
		}
		seen := make(map[uint64]bool, len(out))
		var maxTS stream.Time
		for i, tp := range out {
			if seen[tp.ID] {
				t.Fatalf("tuple %d delivered twice", tp.ID)
			}
			seen[tp.ID] = true
			if tp.TS < maxTS-bound {
				t.Fatalf("tuple %d at %d is %v late; bound %v", tp.ID, i, maxTS-tp.TS, bound)
			}
			if tp.TS > maxTS {
				maxTS = tp.TS
			}
		}
		again := run()
		for i := range out {
			if out[i].ID != again[i].ID {
				t.Fatalf("nondeterministic emission at %d", i)
			}
		}
	})
}
