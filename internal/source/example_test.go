package source_test

import (
	"fmt"

	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// ExampleBurst hand-builds the first arrivals of the paper's Table I trace.
func ExampleBurst() {
	cat := stream.NewCatalog()
	cat.MustAdd(stream.NewSchema("A", "x", "y"))
	cat.MustAdd(stream.NewSchema("B", "x"))
	m := stream.Minute
	trace := source.Merge(
		source.Burst(cat, 1, 0*m, []stream.Value{1}, []stream.Value{1}), // b1 b2
		source.Burst(cat, 0, 1*m, []stream.Value{1, 100}),               // a1
	)
	for _, t := range trace {
		fmt.Printf("%s ts=%v vals=%v\n", t, t.TS, t.Vals)
	}
	// Output:
	// b1 ts=0m vals=[1]
	// b2 ts=0m vals=[1]
	// a3 ts=1m vals=[1 100]
}

// ExampleGenerate draws a seeded Poisson workload; identical seeds yield
// identical traces, which is what makes every experiment reproducible.
func ExampleGenerate() {
	cat, _ := predicate.Clique(3)
	cfg := source.UniformConfig(3, 1.0, 10, 5*stream.Second, 42)
	a := source.Generate(cat, cfg)
	b := source.Generate(cat, cfg)
	same := len(a) == len(b)
	for i := range a {
		if a[i].TS != b[i].TS || a[i].Source != b[i].Source {
			same = false
		}
	}
	fmt.Println("deterministic:", same)
	fmt.Println("arrivals ordered:", len(a) > 0 && a[0].TS <= a[len(a)-1].TS)
	// Output:
	// deterministic: true
	// arrivals ordered: true
}
