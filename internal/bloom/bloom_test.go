package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// TestNoFalseNegatives is the soundness property JIT relies on: an inserted
// value is never reported absent (a false "absent" would suspend demanded
// results).
func TestNoFalseNegatives(t *testing.T) {
	f := func(vals []int64) bool {
		flt := NewForCapacity(len(vals))
		for _, v := range vals {
			flt.Insert(stream.Value(v))
		}
		for _, v := range vals {
			if !flt.MayContain(stream.Value(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flt := NewForCapacity(1000)
	inserted := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := rng.Int63n(1 << 40)
		inserted[v] = true
		flt.Insert(stream.Value(v))
	}
	fp, probes := 0, 0
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << 40)
		if inserted[v] {
			continue
		}
		probes++
		if flt.MayContain(stream.Value(v)) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high for 1%% sizing", rate)
	}
}

func TestRebuild(t *testing.T) {
	flt := New(256, 3)
	for i := 0; i < 100; i++ {
		flt.Insert(stream.Value(i))
	}
	for i := 0; i < 60; i++ {
		flt.NoteDelete()
	}
	if !flt.NeedsRebuild() {
		t.Fatal("should need rebuild after 60% deletions")
	}
	flt.Rebuild([]stream.Value{1, 2, 3})
	if flt.NeedsRebuild() {
		t.Fatal("fresh rebuild should not need another")
	}
	for _, v := range []stream.Value{1, 2, 3} {
		if !flt.MayContain(v) {
			t.Fatalf("live value %d lost in rebuild", v)
		}
	}
}

func TestSizing(t *testing.T) {
	flt := NewForCapacity(100)
	if flt.Bits() < 64 || flt.Hashes() < 1 {
		t.Fatalf("degenerate sizing: %d bits %d hashes", flt.Bits(), flt.Hashes())
	}
	small := New(1, 0) // clamped
	if small.Bits() < 64 || small.Hashes() != 1 {
		t.Fatal("clamping failed")
	}
	if flt.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}
