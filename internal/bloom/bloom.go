// Package bloom implements the Bloom filters of Sec. IV-A: k-bit strings
// with l hash functions maintained over the join-attribute values of an
// operator state, used as a cheap sound-but-incomplete MNS detector (a value
// reported absent is certainly absent; a value reported present may not be).
//
// Window states both insert and expire tuples, while classic Bloom filters
// support no deletion, so the filter tracks a stale-delete count and is
// rebuilt from the live state when staleness passes a threshold.
package bloom

import (
	"math"

	"repro/internal/stream"
)

// Filter is a Bloom filter over stream.Value keys.
type Filter struct {
	bits   []uint64
	k      uint64 // number of bits
	hashes int    // number of hash functions l
	n      int    // inserted keys since last rebuild
	stale  int    // deletions since last rebuild
}

// New creates a filter with k bits and l hash functions. k is rounded up to
// a multiple of 64.
func New(k int, l int) *Filter {
	if k < 64 {
		k = 64
	}
	if l < 1 {
		l = 1
	}
	words := (k + 63) / 64
	return &Filter{bits: make([]uint64, words), k: uint64(words * 64), hashes: l}
}

// NewForCapacity sizes a filter for the expected number of keys n at ~1%
// false-positive rate using the standard formulas k = -n·ln p / (ln 2)² and
// l = k/n · ln 2.
func NewForCapacity(n int) *Filter {
	if n < 16 {
		n = 16
	}
	p := 0.01
	kf := -float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)
	lf := kf / float64(n) * math.Ln2
	return New(int(kf)+1, int(lf+0.5))
}

// hash produces the i-th hash of v via splitmix64 seeded per function —
// cheap, well-distributed, and dependency-free.
func (f *Filter) hash(v stream.Value, i int) uint64 {
	x := uint64(v) + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x % f.k
}

// Insert adds a value to the filter.
func (f *Filter) Insert(v stream.Value) {
	for i := 0; i < f.hashes; i++ {
		h := f.hash(v, i)
		f.bits[h/64] |= 1 << (h % 64)
	}
	f.n++
}

// MayContain reports whether v may be in the set. False means certainly
// absent.
func (f *Filter) MayContain(v stream.Value) bool {
	for i := 0; i < f.hashes; i++ {
		h := f.hash(v, i)
		if f.bits[h/64]&(1<<(h%64)) == 0 {
			return false
		}
	}
	return true
}

// NoteDelete records that an underlying value expired. The filter itself is
// unchanged (still sound); once staleness exceeds half the insertions the
// owner should Rebuild.
func (f *Filter) NoteDelete() { f.stale++ }

// NeedsRebuild reports whether enough deletions accumulated that the filter
// is likely saturated with dead bits.
func (f *Filter) NeedsRebuild() bool {
	return f.stale > 0 && f.stale*2 >= f.n
}

// Rebuild resets the filter and reinserts the live values.
func (f *Filter) Rebuild(live []stream.Value) {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n, f.stale = 0, 0
	for _, v := range live {
		f.Insert(v)
	}
}

// Bits returns the number of bits in the filter.
func (f *Filter) Bits() int { return int(f.k) }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.hashes }

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() int64 { return int64(len(f.bits) * 8) }
