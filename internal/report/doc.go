// Package report is the figure-faithful evaluation harness: it drives the
// internal/exp sweeps over the paper's full parameter grid (Figures 10–17:
// window w, rate λ, source count N, domain bound dmax, bushy and left-deep
// clique plans, REF/JIT/DOE/Bloom modes) and renders the measurements into
// reviewable artifacts:
//
//   - RESULTS.json — the machine-readable record: every grid cell's
//     deterministic counters, cost units and peak memory;
//   - results/figNN.svg — a two-panel (cost, memory) trend plot per figure;
//   - RESULTS.md — the generated results document: per figure, an ASCII
//     trend chart, the measurement table, and a prose comparison against
//     the trends the paper reports, with matches and divergences flagged
//     explicitly. A final section exercises the post-paper extensions
//     (DESIGN.md §3 indexing, §4 drain, §5 sharding) on a common workload.
//
// Everything the harness emits is deterministic: fixed seeds, sorted sweep
// order (Grid), machine-independent cost units instead of wall-clock time.
// Regenerating with the same options reproduces the artifacts byte for
// byte, which is what makes RESULTS.md diffable — the golden test and the
// CI drift gate both regenerate the short preset and fail on any byte of
// difference.
//
// Presets. The short preset (Options.Short, `jitreport -short`) subsets
// each figure to three x-points and shrinks the workloads so the whole
// sweep finishes in about a minute: bushy figures scale windows by 0.3 and
// domains by √0.3 (preserving the demand-rarity ratio λ·w/dmax², whose
// distortion — not the partner count's — is what flips the JIT-vs-REF
// shape at quick sizes; see exp.Config.DomainScale), left-deep figures
// scale both by 0.5 (their small dmax=50 base makes the partner pool the
// binding constraint instead). The full preset runs the paper's whole
// x-grid with unscaled workloads at 2% of the 5-hour horizon and adds the
// DOE and Bloom-JIT ablation modes; CI regenerates it nightly and uploads
// the artifacts.
package report
