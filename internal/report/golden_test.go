package report

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// shortReport builds the short-preset report once for all tests in the
// package (the sweep takes about a minute).
var shortReport = sync.OnceValue(func() *Report {
	return Build(Options{Short: true})
})

// TestGoldenShortReport regenerates the short-preset artifacts and asserts
// they are byte-identical to the committed RESULTS.md / RESULTS.json /
// results/*.svg. Any intentional change to the harness, the workloads or
// the renderers must land together with regenerated artifacts
// (`go run ./cmd/jitreport -short`); any unintentional drift — a
// determinism bug, a workload change leaking into the sweep — fails here.
//
// The short sweep takes about a minute, so the test runs in the full
// (non -short) suite only; pre-merge CI covers the same contract via
// `jitreport -short -check`.
func TestGoldenShortReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short-preset sweep takes about a minute")
	}
	root := "../.."
	rep := shortReport()

	artifacts, err := rep.Artifacts()
	if err != nil {
		t.Fatalf("Artifacts: %v", err)
	}

	for rel, want := range artifacts {
		got, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			t.Errorf("%s: %v (regenerate with `go run ./cmd/jitreport -short`)", rel, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifts from regenerated content (%d vs %d bytes) — regenerate with `go run ./cmd/jitreport -short`",
				rel, len(got), len(want))
		}
	}

	// A committed plot the harness no longer generates (renamed or
	// dropped figure) is drift too.
	for _, rel := range StaleSVGs(root, artifacts) {
		t.Errorf("%s exists on disk but is no longer generated — remove it or restore its figure", rel)
	}
}

// TestReportInvariants checks the semantic contract RESULTS.md's prose
// relies on — drained finals equal across modes, sharded finals equal
// across shard counts, indexed and scan runs agree on finals — so a
// byte-level drift failure in the golden test still comes with a verdict
// on which semantic invariant (if any) moved.
func TestReportInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("short-preset sweep takes about a minute")
	}
	rep := shortReport()

	if len(rep.Figures) != 8 {
		t.Fatalf("want 8 figures, got %d", len(rep.Figures))
	}
	for i, fig := range rep.Figures {
		if len(fig.Points) != len(ShortXs(rep.Specs[i])) {
			t.Errorf("%s: %d points", fig.ID, len(fig.Points))
		}
	}

	var refFinals uint64
	for _, row := range rep.Ext.Drain {
		if row.Mode == "REF" {
			refFinals = row.Result.Results
		}
	}
	if refFinals == 0 {
		t.Error("extension workload delivers zero finals — the drain section is vacuous")
	}
	for _, row := range rep.Ext.Drain {
		if row.Result.Results != refFinals {
			t.Errorf("drained %s finals %d != REF %d", row.Mode, row.Result.Results, refFinals)
		}
	}
	for _, row := range rep.Ext.Sharded {
		if row.Merged.Results != refFinals {
			t.Errorf("sharded (%d) finals %d != %d", row.Shards, row.Merged.Results, refFinals)
		}
		if row.Fallback {
			t.Errorf("sharded (%d): unexpected single-replica fallback", row.Shards)
		}
	}
	for _, row := range rep.Ext.Indexed {
		if !row.ResultsBoth {
			t.Errorf("indexed %s: finals differ between scan and indexed runs", row.Mode)
		}
		if row.IndexedCmp >= row.ScanCmp {
			t.Errorf("indexed %s: comparisons did not drop (%d >= %d)", row.Mode, row.IndexedCmp, row.ScanCmp)
		}
	}
}
