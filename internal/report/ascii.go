package report

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"repro/internal/exp"
)

// asciiBarWidth is the longest bar in an ASCII trend chart, in cells.
const asciiBarWidth = 44

// asciiChart renders a figure's cost units as paired horizontal bars, one
// group per x-value, scaled to the figure's maximum — a trend plot that
// survives plain-text diffing and terminal review. Lower is better.
func asciiChart(fig *exp.Figure) string {
	max := uint64(0)
	for _, pt := range fig.Points {
		for _, m := range fig.Modes {
			if c := pt.Results[m].CostUnits; c > max {
				max = c
			}
		}
	}
	param := strings.Fields(fig.XLabel)[0]
	modeW := 0
	for _, m := range fig.Modes {
		if len(m) > modeW {
			modeW = len(m)
		}
	}
	labels := make([]string, len(fig.Points))
	labelW := 0
	for i, pt := range fig.Points {
		labels[i] = fmt.Sprintf("%s=%s", param, trimFloat(pt.X))
		if n := utf8.RuneCountInString(labels[i]); n > labelW {
			labelW = n
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cost units by %s (lower is better)\n\n", fig.XLabel)
	for i, pt := range fig.Points {
		label := labels[i] + strings.Repeat(" ", labelW-utf8.RuneCountInString(labels[i]))
		for j, m := range fig.Modes {
			if j > 0 {
				label = strings.Repeat(" ", labelW)
			}
			c := pt.Results[m].CostUnits
			fmt.Fprintf(&b, "  %s  %-*s %s %s\n", label, modeW, m, bar(c, max), group(c))
		}
	}
	return b.String()
}

// bar scales v against max into a run of block cells; nonzero values get
// at least one cell.
func bar(v, max uint64) string {
	if max == 0 {
		return ""
	}
	n := int(float64(v) / float64(max) * asciiBarWidth)
	if v > 0 && n == 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// group renders an integer with thousands separators.
func group(v uint64) string {
	s := strconv.FormatUint(v, 10)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// trimFloat renders a float with no trailing zeros (10 → "10", 7.5 →
// "7.5").
func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'f', -1, 64)
}
