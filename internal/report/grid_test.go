package report

import (
	"testing"

	"repro/internal/exp"
)

// TestGridSortedDupFree pins the sweep-grid enumerator's contract: sorted
// by (figure, x, mode), duplicate-free, and exactly covering specs × xs ×
// modes in both presets.
func TestGridSortedDupFree(t *testing.T) {
	specs := exp.Specs()
	for _, short := range []bool{false, true} {
		for _, modes := range [][]exp.NamedMode{exp.DefaultModes(), exp.AblationModes()} {
			cells := Grid(specs, modes, short)
			want := 0
			for _, s := range specs {
				xs := s.Xs
				if short {
					xs = ShortXs(s)
				}
				want += len(xs) * len(modes)
			}
			if len(cells) != want {
				t.Fatalf("short=%v modes=%d: %d cells, want %d", short, len(modes), len(cells), want)
			}
			for i := 1; i < len(cells); i++ {
				if !cells[i-1].less(cells[i]) {
					t.Fatalf("short=%v: cells[%d]=%+v not strictly before cells[%d]=%+v",
						short, i-1, cells[i-1], i, cells[i])
				}
			}
		}
	}
}

// TestGridDedupe feeds the enumerator duplicate specs and checks the grid
// stays duplicate-free.
func TestGridDedupe(t *testing.T) {
	specs := exp.Specs()
	doubled := append(append([]exp.Spec{}, specs...), specs...)
	a := Grid(specs, exp.DefaultModes(), true)
	b := Grid(doubled, exp.DefaultModes(), true)
	if len(a) != len(b) {
		t.Fatalf("doubled specs changed the grid: %d vs %d cells", len(a), len(b))
	}
}

// TestShortXs pins the short subset: endpoints plus the middle, small
// grids unchanged.
func TestShortXs(t *testing.T) {
	got := ShortXs(exp.Spec{Xs: []float64{10, 15, 20, 25, 30}})
	want := []float64{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	small := exp.Spec{Xs: []float64{3, 4, 5}}
	if g := ShortXs(small); len(g) != 3 || g[0] != 3 || g[2] != 5 {
		t.Fatalf("small grid changed: %v", g)
	}
	override := exp.Spec{Xs: []float64{3, 4, 5, 6}, ShortXs: []float64{3, 4, 5}}
	if g := ShortXs(override); len(g) != 3 || g[2] != 5 {
		t.Fatalf("ShortXs override ignored: %v", g)
	}
}

// TestShortConfigScaling pins the per-shape short scaling: bushy figures
// preserve demand rarity (domain ×√0.3), left-deep figures the partner
// pool (both ×0.5) — except where a spec pins its own faithful point
// (exp.Spec.ShortSizeScale / ShortDomainScale, e.g. Figure 16).
func TestShortConfigScaling(t *testing.T) {
	o := Options{Short: true}
	for _, s := range exp.Specs() {
		cfg := o.ConfigFor(s)
		switch {
		case s.ShortSizeScale > 0 || s.ShortDomainScale > 0:
			// The two overrides apply independently; an unset one keeps the
			// per-shape default.
			if s.ShortSizeScale > 0 && cfg.SizeScale != s.ShortSizeScale {
				t.Fatalf("%s: size override ignored: got %v", s.Name, cfg.SizeScale)
			}
			if s.ShortDomainScale > 0 && cfg.DomainScale != s.ShortDomainScale {
				t.Fatalf("%s: domain override ignored: got %v", s.Name, cfg.DomainScale)
			}
		case s.LeftDeep:
			if cfg.SizeScale != 0.5 || cfg.DomainScale != 0.5 {
				t.Fatalf("%s: got size %v domain %v", s.Name, cfg.SizeScale, cfg.DomainScale)
			}
		default:
			if cfg.SizeScale != 0.3 || cfg.DomainScale <= 0.54 || cfg.DomainScale >= 0.55 {
				t.Fatalf("%s: got size %v domain %v", s.Name, cfg.SizeScale, cfg.DomainScale)
			}
		}
	}
	full := Options{}
	if cfg := full.ConfigFor(exp.Specs()[0]); cfg.SizeScale != 1 || cfg.Scale != 0.02 {
		t.Fatalf("full preset scaling: %+v", cfg)
	}
}
