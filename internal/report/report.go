package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stream"
)

// Options selects the report preset.
type Options struct {
	// Short runs the quick preset: three x-points per figure, shrunk
	// workloads, JIT/REF only. The committed RESULTS.md is this preset's
	// output; the golden test regenerates it byte for byte.
	Short bool
	// Seed is the workload seed (default 1). The committed artifacts use
	// the default.
	Seed int64
	// Progress, when non-nil, receives one line per completed figure with
	// wall-clock timing. Wall time never enters the artifacts themselves —
	// it would break byte-stable regeneration.
	Progress io.Writer
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Preset returns the preset slug recorded in the artifacts.
func (o Options) Preset() string {
	if o.Short {
		return "short"
	}
	return "full"
}

// Modes returns the mode set of the preset: the paper's JIT-vs-REF
// comparison in short mode, the full ablation (plus DOE and Bloom-JIT) in
// full mode.
func (o Options) Modes() []exp.NamedMode {
	if o.Short {
		return exp.DefaultModes()
	}
	return exp.AblationModes()
}

// ConfigFor resolves the exp configuration used for one figure under the
// preset (see the package documentation for the short preset's per-shape
// scaling rationale).
func (o Options) ConfigFor(s exp.Spec) exp.Config {
	cfg := exp.Config{Seed: o.seed(), Modes: o.Modes()}
	if o.Short {
		cfg.Scale = 0.001 // horizon floors at 2.5 windows
		cfg.SizeScale, cfg.DomainScale = shortSizes(s)
	} else {
		cfg.Scale = 0.02
		cfg.SizeScale = 1
	}
	return cfg
}

// Report holds one complete sweep: every figure's measurements plus the
// post-paper extension runs. All content is deterministic for fixed
// Options.
type Report struct {
	Preset string
	Seed   int64
	Modes  []string
	Grid   []Cell
	// Figures holds the reproduced figures in ascending figure order,
	// aligned with Specs.
	Figures []*exp.Figure
	Specs   []exp.Spec
	Ext     Extensions
	// Behaviour holds one behaviour-over-time series per figure: the
	// figure's last-x JIT cell re-run with the DESIGN.md §9 event-time
	// sampler attached. Rendered as the RESULTS.md sparkline appendix;
	// deliberately absent from RESULTS.json (the per-x endpoint numbers
	// there are the machine-readable record; the series is a shape aid).
	Behaviour []BehaviourRow
}

// BehaviourRow is one figure's sampled time series.
type BehaviourRow struct {
	// Fig is the figure slug ("fig10"); XLabel/X identify the re-run grid
	// cell — the last point of the sweep the preset actually ran. The
	// sweep middles are useless here: every figure's middle x IS the
	// common Table III base (the paper varies one parameter around shared
	// defaults), so middle-x series would repeat one identical workload
	// eight times. The far end of each sweep is a distinct workload and
	// the regime where the swept parameter's effect is largest.
	Fig    string
	XLabel string
	X      float64
	// Dt is the uniform sampling interval in stream time: the cell's
	// horizon split into behaviourBuckets equal event-time intervals.
	Dt stream.Time
	// Samples carries per-interval Counters deltas plus the LiveBytes
	// gauge, stamped on the absolute Dt grid (obs.Sampler semantics).
	Samples []obs.Sample
}

// behaviourBuckets is the sparkline resolution: one sample per 1/24 of the
// horizon keeps every appendix row one terminal line wide regardless of
// preset scaling.
const behaviourBuckets = 24

// behaviourFor re-runs one figure's last-x JIT cell with a sampler
// attached. The extra run is deliberate: threading a tracer through the
// sweep itself would make every figure's measurement carry (tiny but
// nonzero) instrumentation wall-cost for a series only this appendix
// needs, and the transparency contract (internal/obs) guarantees the
// re-run reproduces the sweep's counters exactly.
func behaviourFor(o Options, s exp.Spec, xs []float64) BehaviourRow {
	x := xs[len(xs)-1]
	p := s.ParamsAt(o.ConfigFor(s), exp.NamedMode{Name: "JIT", Mode: core.JIT()}, x)
	dt := p.Horizon / behaviourBuckets
	if dt <= 0 {
		dt = 1
	}
	tr := obs.New(obs.Options{SampleEvery: dt})
	p.Trace = tr
	p.Run()
	return BehaviourRow{Fig: s.Name, XLabel: s.XLabel, X: x, Dt: dt, Samples: tr.Samples()}
}

// Build executes the full sweep grid of the preset plus the extension runs
// and returns the assembled report. Wall-clock duration depends on the
// host; everything recorded in the result does not.
func Build(o Options) *Report {
	specs := exp.Specs()
	r := &Report{
		Preset: o.Preset(),
		Seed:   o.seed(),
		Grid:   Grid(specs, o.Modes(), o.Short),
		Specs:  specs,
	}
	for _, nm := range o.Modes() {
		r.Modes = append(r.Modes, nm.Name)
	}
	for _, s := range specs {
		xs := s.Xs
		if o.Short {
			xs = ShortXs(s)
		}
		start := time.Now()
		r.Figures = append(r.Figures, s.RunXs(o.ConfigFor(s), xs))
		r.Behaviour = append(r.Behaviour, behaviourFor(o, s, xs))
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "%s: %d points × %d modes in %v\n",
				s.Name, len(xs), len(o.Modes()), time.Since(start).Round(time.Millisecond))
		}
	}
	start := time.Now()
	r.Ext = runExtensions(o)
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, "extensions: %v\n", time.Since(start).Round(time.Millisecond))
	}
	return r
}

// Extensions are the post-paper subsystem checks woven into RESULTS.md: the
// same base workload run under the §3 hash index, the §4 end-of-stream
// drain, and the §5 sharded runner, so the results document covers the
// repo's extensions next to the paper's figures.
type Extensions struct {
	// Base describes the common workload of all extension rows.
	Base exp.Params
	// Indexed compares linear-scan against hash-indexed probing per mode
	// (DESIGN.md §3).
	Indexed []IndexedRow
	// Drain runs every mode with the end-of-stream drain and records the
	// delivered finals against REF's (DESIGN.md §4).
	Drain []DrainRow
	// Sharded runs JIT across key-partitioned engine replicas
	// (DESIGN.md §5).
	Sharded []ShardRow
	// Hostile runs the scenario suite's mutator stacks (DESIGN.md §8) and
	// records the JIT-vs-REF equivalence per stack.
	Hostile []HostileRow
}

// IndexedRow is one mode's scan-vs-indexed comparison.
type IndexedRow struct {
	Mode        string
	Scan        engine.Result
	Indexed     engine.Result
	ScanCmp     uint64
	IndexedCmp  uint64
	ResultsBoth bool // identical final-result counts
}

// DrainRow is one mode's drained run.
type DrainRow struct {
	Mode   string
	Result engine.Result
}

// ShardRow is one shard-count's run of the extension workload.
type ShardRow struct {
	Shards     int
	Merged     engine.Result
	Routed     uint64
	Broadcasts uint64
	Fallback   bool
}

// HostileRow is one hostile-stream scenario's drained REF/JIT pair.
type HostileRow struct {
	Name     string
	Mutators string
	REF      engine.Result
	JIT      engine.Result
	// Equal reports multiset equality of the two delivery logs — the
	// scenario harness's headline contract (DESIGN.md §8).
	Equal bool
}

// extBase is the extension workload: the dense end-of-stream family of
// DESIGN.md §4 at a size that keeps the whole extension section seconds-
// cheap while still delivering final results — a 4-way bushy clique needs
// all six pairwise equalities to hold, so finals only appear at dense
// rates and small domains (λ=3, w=90s, dmax=30 ⇒ ~45 finals over 2.5
// windows). Nonzero finals are what give the drain section teeth: the
// drain-less figure runs above may lose suspended finals at end-of-stream,
// and this section shows the §4 drain recovering every one of them.
func extBase(seed int64) exp.Params {
	return exp.Params{
		N:       4,
		Bushy:   true,
		Window:  90 * stream.Second,
		Rate:    3,
		DMax:    30,
		Horizon: 225*stream.Second + 1,
		Seed:    seed,
	}
}

func runExtensions(o Options) Extensions {
	ext := Extensions{Base: extBase(o.seed())}
	modes := []exp.NamedMode{{Name: "JIT", Mode: core.JIT()}, {Name: "REF", Mode: core.REF()}}

	for _, nm := range modes {
		p := ext.Base
		p.Mode = nm.Mode
		scan := p.Run()
		p.Indexed = true
		idx := p.Run()
		ext.Indexed = append(ext.Indexed, IndexedRow{
			Mode:        nm.Name,
			Scan:        scan,
			Indexed:     idx,
			ScanCmp:     scan.Counters.Comparisons,
			IndexedCmp:  idx.Counters.Comparisons,
			ResultsBoth: scan.Results == idx.Results,
		})
	}

	for _, nm := range exp.AblationModes() {
		p := ext.Base
		p.Mode = nm.Mode
		p.Drain = true
		ext.Drain = append(ext.Drain, DrainRow{Mode: nm.Name, Result: p.Run()})
	}

	for _, shards := range []int{1, 2, 4} {
		p := ext.Base
		p.Mode = core.JIT()
		p.Shards = shards
		res := p.RunSharded()
		ext.Sharded = append(ext.Sharded, ShardRow{
			Shards:     shards,
			Merged:     res.Merged,
			Routed:     res.Routed,
			Broadcasts: res.Broadcasts,
			Fallback:   res.Fallback,
		})
	}

	// Hostile scenarios always run at the scenario suite's short sizes:
	// the appendix is an equivalence record, not a performance sweep, and
	// the full-size mutator stacks belong to internal/scenario's nightly
	// matrix and BenchmarkHostile.
	hostileBase := scenario.Base(true)
	hostileBase.Seed = o.seed()
	for _, sc := range scenario.Suite(true) {
		ref := sc.Apply(hostileBase)
		ref.Mode = core.REF()
		refRes, refKeys := ref.RunKeys()
		jit := sc.Apply(hostileBase)
		jit.Mode = core.JIT()
		jitRes, jitKeys := jit.RunKeys()
		ext.Hostile = append(ext.Hostile, HostileRow{
			Name:     sc.Name,
			Mutators: sc.Describe(),
			REF:      refRes,
			JIT:      jitRes,
			Equal:    len(scenario.DiffMultisets(scenario.Multiset(jitKeys), scenario.Multiset(refKeys))) == 0,
		})
	}
	return ext
}
