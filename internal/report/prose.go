package report

import (
	"fmt"
	"strings"

	"repro/internal/exp"
)

// expectation captures what the paper's version of a figure reports, in
// the qualitative terms the comparison is judged against: the direction of
// the cost curve along the sweep and how JIT's advantage over REF moves.
type expectation struct {
	// costDir is the direction of REF's cost as x grows: +1 rising,
	// -1 falling.
	costDir int
	// paper is the prose recap of the paper's reported behaviour.
	paper string
}

// expectations maps figure number → the paper's reported trends. The texts
// stay qualitative on purpose: the reproduction's cost units are a
// machine-independent analogue of the paper's 2008 CPU seconds, so curve
// *shapes* and *orderings* are comparable but absolute values are not.
var expectations = map[int]expectation{
	10: {+1, "The paper reports both systems' CPU time and memory growing with the " +
		"window: a larger w keeps more tuples alive per state, so every probe scans " +
		"more partners and more partial results accumulate. JIT stays below REF across " +
		"the whole sweep and its advantage widens with w — larger windows hold more " +
		"never-demanded partial results for the feedback mechanism to suppress."},
	11: {+1, "The paper reports cost growing superlinearly with the arrival rate λ " +
		"(both the arrival count and every state's population scale with λ), with JIT " +
		"below REF throughout and the gap widening as λ grows."},
	12: {+1, "The paper reports cost climbing steeply with the number of sources N — " +
		"each extra source adds an operator level and multiplies the intermediate-" +
		"result space — and JIT's advantage growing with N, since deeper plans produce " +
		"more suppressible intermediates."},
	13: {-1, "The paper reports cost falling as dmax grows: a larger value domain " +
		"lowers the join selectivity λ·w/dmax, so probes find fewer partners. JIT " +
		"remains below REF across the sweep."},
	14: {+1, "On the left-deep plan the last stream draws from [1..10²·dmax], making " +
		"the top join extremely low-selectivity: nearly every deep-pipeline " +
		"intermediate is non-demanded. The paper reports costs growing with w and JIT " +
		"suppressing most of the pipeline's production, staying well below REF."},
	15: {+1, "The paper reports the left-deep costs growing superlinearly with λ, with " +
		"JIT's suppression of the low-selectivity pipeline keeping it below REF " +
		"throughout."},
	16: {+1, "The paper reports left-deep cost exploding with N — each level of the " +
		"deep pipeline multiplies intermediates that the top join then discards — and " +
		"JIT's relative advantage growing with N."},
	17: {-1, "The paper reports cost falling as dmax grows (lower selectivity at every " +
		"level), with JIT below REF across the sweep."},
}

// analysis is the computed comparison of one reproduced figure against its
// expectation.
type analysis struct {
	// costDir is the measured direction of REF cost (first vs last point,
	// 5% tolerance): +1 rising, -1 falling, 0 flat.
	costDir int
	// ratioFirst/ratioLast are REF/JIT cost ratios at the sweep ends.
	ratioFirst, ratioLast float64
	// jitAbove lists x-values where JIT cost exceeds REF (paper shape
	// violated); memAbove the same for peak memory.
	jitAbove, memAbove []float64
	// resultsDiffer lists x-values where JIT and REF delivered different
	// final-result counts (a drain-less end-of-stream artifact, see
	// DESIGN.md §4).
	resultsDiffer []float64
}

func analyze(fig *exp.Figure) analysis {
	var a analysis
	pts := fig.Points
	if len(pts) == 0 {
		return a
	}
	first, last := pts[0], pts[len(pts)-1]
	refFirst := float64(first.Results["REF"].CostUnits)
	refLast := float64(last.Results["REF"].CostUnits)
	switch {
	case refLast > refFirst*1.05:
		a.costDir = +1
	case refLast < refFirst*0.95:
		a.costDir = -1
	}
	a.ratioFirst = ratioOf(first)
	a.ratioLast = ratioOf(last)
	for _, pt := range pts {
		jit, ref := pt.Results["JIT"], pt.Results["REF"]
		if jit.CostUnits > ref.CostUnits {
			a.jitAbove = append(a.jitAbove, pt.X)
		}
		if jit.PeakMemKB > ref.PeakMemKB*1.02 {
			a.memAbove = append(a.memAbove, pt.X)
		}
		if jit.Results != ref.Results {
			a.resultsDiffer = append(a.resultsDiffer, pt.X)
		}
	}
	return a
}

func ratioOf(pt exp.Point) float64 {
	jit, ref := pt.Results["JIT"], pt.Results["REF"]
	if jit.CostUnits == 0 {
		return 0
	}
	return float64(ref.CostUnits) / float64(jit.CostUnits)
}

func dirWord(d int) string {
	switch {
	case d > 0:
		return "rises"
	case d < 0:
		return "falls"
	}
	return "stays flat"
}

// compare renders the per-figure comparison paragraphs: the paper's
// reported behaviour, what this reproduction measured, and an explicit
// match/divergence verdict.
func compare(id int, fig *exp.Figure, short bool) string {
	want, ok := expectations[id]
	if !ok {
		return ""
	}
	a := analyze(fig)
	var b strings.Builder

	fmt.Fprintf(&b, "**Paper:** %s\n\n", want.paper)

	fmt.Fprintf(&b,
		"**This reproduction:** REF's cost %s across the sweep; the REF/JIT cost ratio moves from %.2f× at the first point to %.2f× at the last.",
		dirWord(a.costDir), a.ratioFirst, a.ratioLast)
	if len(a.jitAbove) == 0 {
		b.WriteString(" JIT's cost stays at or below REF's at every point.")
	} else {
		fmt.Fprintf(&b, " JIT's cost exceeds REF's at x=%s.", xList(a.jitAbove))
	}
	if len(a.memAbove) > 0 {
		fmt.Fprintf(&b, " JIT's peak memory exceeds REF's at x=%s.", xList(a.memAbove))
	}
	if len(a.resultsDiffer) > 0 {
		fmt.Fprintf(&b,
			" Final-result counts differ at x=%s: without the §4 drain, a result whose resumption falls past the end of the stream stays suspended — the extension section below shows the drain closing exactly this gap.",
			xList(a.resultsDiffer))
	}
	b.WriteString("\n\n")

	var divergences []string
	if a.costDir != want.costDir {
		divergences = append(divergences, fmt.Sprintf(
			"the cost curve %s where the paper's %s", dirWord(a.costDir), dirWord(want.costDir)))
	}
	if len(a.jitAbove) > 0 {
		divergences = append(divergences, fmt.Sprintf(
			"JIT is costlier than REF at x=%s", xList(a.jitAbove)))
	}
	if len(a.memAbove) > 0 {
		divergences = append(divergences, fmt.Sprintf(
			"JIT uses more peak memory than REF at x=%s", xList(a.memAbove)))
	}
	if len(divergences) == 0 {
		b.WriteString("**Verdict: matches the paper.** Curve direction and the JIT-below-REF ordering both reproduce.")
	} else {
		fmt.Fprintf(&b, "**Verdict: diverges** — %s.", strings.Join(divergences, "; "))
		if short {
			b.WriteString(" The short preset shrinks windows and domains to finish in seconds, " +
				"which distorts the suspension economics at the sweep's extremes " +
				"(see the preset notes above); the nightly full-grid run is the " +
				"authoritative comparison.")
		}
	}
	b.WriteString("\n")
	return b.String()
}

func xList(xs []float64) string {
	var parts []string
	for _, x := range xs {
		parts = append(parts, trimFloat(x))
	}
	return strings.Join(parts, ", ")
}
