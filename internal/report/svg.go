package report

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/exp"
)

// Series colors, assigned to modes in fixed order (never cycled); the
// palette's adjacent pairs are colorblind-validated on the light surface.
// Low-contrast slots (aqua, yellow) are relieved by the direct labels at
// every line end and by the measurement table next to each plot in
// RESULTS.md.
var seriesColor = map[string]string{
	"JIT":   "#2a78d6",
	"REF":   "#eb6834",
	"DOE":   "#1baf7a",
	"Bloom": "#eda100",
}

const (
	svgW        = 720
	panelH      = 280
	panelGap    = 44
	plotLeft    = 70
	plotRight   = 630
	svgFont     = "system-ui, 'Segoe UI', Helvetica, Arial, sans-serif"
	inkPrimary  = "#0b0b0b"
	inkSecond   = "#52514e"
	gridColor   = "#e8e7e3"
	axisColor   = "#c9c8c2"
	surfaceCol  = "#fcfcfb"
	titleOffset = 40
)

// svgFigure renders one figure as a self-contained two-panel SVG: cost
// units on top, peak memory below, one line per mode. Output is fully
// deterministic (fixed-precision coordinates, no timestamps).
func svgFigure(fig *exp.Figure) []byte {
	totalH := titleOffset + panelH + panelGap + panelH + 24
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="%s">`,
		svgW, totalH, svgW, totalH, svgFont)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, svgW, totalH, surfaceCol)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="600" fill="%s">%s — %s</text>`,
		plotLeft, inkPrimary, strings.ToUpper(fig.ID), xmlEscape(fig.Title))
	b.WriteByte('\n')

	cost := func(m string, pt exp.Point) float64 { return float64(pt.Results[m].CostUnits) }
	mem := func(m string, pt exp.Point) float64 { return pt.Results[m].PeakMemKB }
	panel(&b, fig, titleOffset, "cost units (deterministic work; lower is better)", cost, true)
	panel(&b, fig, titleOffset+panelH+panelGap, "peak memory (KB; lower is better)", mem, false)

	b.WriteString("</svg>\n")
	return []byte(b.String())
}

// panel draws one line-chart panel at vertical offset top.
func panel(b *strings.Builder, fig *exp.Figure, top int, subtitle string, val func(string, exp.Point) float64, legend bool) {
	plotTop := top + 28
	plotBot := top + panelH - 32

	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" fill="%s">%s</text>`,
		plotLeft, top+14, inkSecond, xmlEscape(subtitle))
	b.WriteByte('\n')
	if legend {
		lx := plotRight - 70*len(fig.Modes)
		for _, m := range fig.Modes {
			fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" rx="2" fill="%s"/>`,
				lx, top+5, seriesColor[m])
			fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" fill="%s">%s</text>`,
				lx+14, top+14, inkSecond, m)
			b.WriteByte('\n')
			lx += 70
		}
	}

	xs := make([]float64, len(fig.Points))
	maxV := 0.0
	for i, pt := range fig.Points {
		xs[i] = pt.X
		for _, m := range fig.Modes {
			if v := val(m, pt); v > maxV {
				maxV = v
			}
		}
	}
	step, yTop := niceScale(maxV)

	// Grid, y ticks.
	for i := 0; ; i++ {
		v := float64(i) * step
		if v > yTop+step/2 {
			break
		}
		y := mapY(v, yTop, plotTop, plotBot)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			plotLeft, y, plotRight, y, gridColor)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`,
			plotLeft-8, y+4, inkSecond, si(v))
		b.WriteByte('\n')
	}
	// X axis baseline and ticks.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`,
		plotLeft, plotBot, plotRight, plotBot, axisColor)
	b.WriteByte('\n')
	for i, x := range xs {
		px := mapX(i, len(xs))
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`,
			px, plotBot+18, inkSecond, trimFloat(x))
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`,
		(plotLeft+plotRight)/2, plotBot+32, inkSecond, xmlEscape(fig.XLabel))
	b.WriteByte('\n')

	// Series: 2px line, ≥8px markers (r=4), direct label at the line end.
	labelY := endLabelYs(fig, val, yTop, plotTop, plotBot)
	for mi, m := range fig.Modes {
		color := seriesColor[m]
		var pts []string
		for i, pt := range fig.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f",
				mapX(i, len(fig.Points)), mapY(val(m, pt), yTop, plotTop, plotBot)))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`,
			strings.Join(pts, " "), color)
		b.WriteByte('\n')
		for i, pt := range fig.Points {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="%s" stroke-width="2"/>`,
				mapX(i, len(fig.Points)), mapY(val(m, pt), yTop, plotTop, plotBot), color, surfaceCol)
			b.WriteByte('\n')
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" fill="%s">%s</text>`,
			float64(plotRight)+8, labelY[mi]+4, inkPrimary, m)
		b.WriteByte('\n')
	}
}

// endLabelYs computes the direct-label baselines at the line ends, nudged
// apart so converging series keep ≥14px of separation.
func endLabelYs(fig *exp.Figure, val func(string, exp.Point) float64, yTop float64, plotTop, plotBot int) []float64 {
	const minGap = 14
	last := fig.Points[len(fig.Points)-1]
	type lbl struct {
		idx int
		y   float64
	}
	lbls := make([]lbl, len(fig.Modes))
	for i, m := range fig.Modes {
		lbls[i] = lbl{i, mapY(val(m, last), yTop, plotTop, plotBot)}
	}
	sort.SliceStable(lbls, func(a, b int) bool { return lbls[a].y < lbls[b].y })
	for i := 1; i < len(lbls); i++ {
		if lbls[i].y < lbls[i-1].y+minGap {
			lbls[i].y = lbls[i-1].y + minGap
		}
	}
	out := make([]float64, len(fig.Modes))
	for _, l := range lbls {
		out[l.idx] = l.y
	}
	return out
}

func mapX(i, n int) float64 {
	if n <= 1 {
		return float64(plotLeft+plotRight) / 2
	}
	return float64(plotLeft) + float64(i)/float64(n-1)*float64(plotRight-plotLeft)
}

func mapY(v, yTop float64, plotTop, plotBot int) float64 {
	if yTop == 0 {
		return float64(plotBot)
	}
	return float64(plotBot) - v/yTop*float64(plotBot-plotTop)
}

// niceScale picks a 1/2/5×10^k tick step covering max with four steps.
func niceScale(max float64) (step, top float64) {
	if max <= 0 {
		return 1, 4
	}
	raw := max / 4
	mag := 1.0
	for mag*10 <= raw {
		mag *= 10
	}
	for mag > raw {
		mag /= 10
	}
	switch {
	case raw/mag >= 5:
		step = 10 * mag
	case raw/mag >= 2:
		step = 5 * mag
	default:
		step = 2 * mag
	}
	top = step
	for top < max {
		top += step
	}
	return step, top
}

// si renders a tick value compactly (1500000 → "1.5M").
func si(v float64) string {
	switch {
	case v >= 1e9:
		return trim2(v/1e9) + "G"
	case v >= 1e6:
		return trim2(v/1e6) + "M"
	case v >= 1e3:
		return trim2(v/1e3) + "k"
	}
	return trim2(v)
}

func trim2(v float64) string {
	return strconv.FormatFloat(v, 'g', 3, 64)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
