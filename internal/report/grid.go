package report

import (
	"math"
	"sort"

	"repro/internal/exp"
)

// Cell is one cell of the sweep grid: one figure × x-value × mode. The
// grid is the report's unit of accounting — every cell is executed exactly
// once per run, and RESULTS.json records one entry per cell.
type Cell struct {
	// Fig is the paper's figure number (10..17).
	Fig int
	// X is the swept parameter value at this cell.
	X float64
	// Mode is the execution-mode label ("JIT", "REF", "DOE", "Bloom").
	Mode string
}

// less orders cells by (Fig, X, Mode) — the canonical sweep order.
func (c Cell) less(o Cell) bool {
	if c.Fig != o.Fig {
		return c.Fig < o.Fig
	}
	if c.X != o.X {
		return c.X < o.X
	}
	return c.Mode < o.Mode
}

// Grid enumerates the sweep grid for the given figure specs and modes,
// sorted by (figure, x, mode) and duplicate-free. With short set, each
// figure's x-grid is subset to ShortXs. The enumeration is pure — it
// performs no runs — so callers can cost a sweep before starting it.
func Grid(specs []exp.Spec, modes []exp.NamedMode, short bool) []Cell {
	var cells []Cell
	for _, s := range specs {
		xs := s.Xs
		if short {
			xs = ShortXs(s)
		}
		for _, x := range xs {
			for _, nm := range modes {
				cells = append(cells, Cell{Fig: s.ID, X: x, Mode: nm.Name})
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].less(cells[j]) })
	return dedupe(cells)
}

func dedupe(cells []Cell) []Cell {
	out := cells[:0]
	for i, c := range cells {
		if i == 0 || c != cells[i-1] {
			out = append(out, c)
		}
	}
	return out
}

// ShortXs subsets a figure's x-grid for the short preset: the spec's own
// override when set, else the first, middle and last points — enough to
// show the trend's direction and its endpoints while cutting the sweep's
// cost. Grids of three or fewer points are returned unchanged (the slice
// is reused, never mutated).
func ShortXs(s exp.Spec) []float64 {
	if s.ShortXs != nil {
		return s.ShortXs
	}
	xs := s.Xs
	if len(xs) <= 3 {
		return xs
	}
	return []float64{xs[0], xs[len(xs)/2], xs[len(xs)-1]}
}

// shortSizes returns the (window, domain) scale pair of the short preset
// for one figure: the spec's per-figure override when set, else the
// per-shape default — see the package documentation for why the two plan
// shapes scale differently.
func shortSizes(s exp.Spec) (sizeScale, domainScale float64) {
	sizeScale, domainScale = 0.3, math.Sqrt(0.3)
	if s.LeftDeep {
		sizeScale, domainScale = 0.5, 0.5
	}
	if s.ShortSizeScale > 0 {
		sizeScale = s.ShortSizeScale
	}
	if s.ShortDomainScale > 0 {
		domainScale = s.ShortDomainScale
	}
	return sizeScale, domainScale
}
