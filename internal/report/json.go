package report

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// The JSON schema deliberately records only deterministic quantities —
// engine.Result.WallTime never appears, so RESULTS.json regenerates byte
// for byte (encoding/json sorts map keys; struct fields keep this order).

type jsonReport struct {
	Preset     string       `json:"preset"`
	Seed       int64        `json:"seed"`
	Modes      []string     `json:"modes"`
	GridCells  int          `json:"grid_cells"`
	Figures    []jsonFigure `json:"figures"`
	Extensions jsonExt      `json:"extensions"`
}

type jsonFigure struct {
	ID     int         `json:"id"`
	Name   string      `json:"name"`
	Title  string      `json:"title"`
	XLabel string      `json:"x_label"`
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	X       float64               `json:"x"`
	PerMode map[string]jsonResult `json:"per_mode"`
}

type jsonResult struct {
	FinalResults    uint64           `json:"final_results"`
	CostUnits       uint64           `json:"cost_units"`
	PeakMemKB       float64          `json:"peak_mem_kb"`
	Arrivals        int              `json:"arrivals"`
	OrderViolations uint64           `json:"order_violations"`
	Counters        metrics.Counters `json:"counters"`
}

type jsonExt struct {
	Indexed []jsonIndexed `json:"indexed"`
	Drain   []jsonDrain   `json:"drain"`
	Sharded []jsonSharded `json:"sharded"`
	Hostile []jsonHostile `json:"hostile"`
}

type jsonIndexed struct {
	Mode         string `json:"mode"`
	ScanCost     uint64 `json:"scan_cost"`
	IndexedCost  uint64 `json:"indexed_cost"`
	ScanCmp      uint64 `json:"scan_comparisons"`
	IndexedCmp   uint64 `json:"indexed_comparisons"`
	FinalsEqual  bool   `json:"finals_equal"`
	FinalResults uint64 `json:"final_results"`
}

type jsonDrain struct {
	Mode         string `json:"mode"`
	FinalResults uint64 `json:"final_results"`
	CostUnits    uint64 `json:"cost_units"`
	Suspended    uint64 `json:"suspended"`
	Resumed      uint64 `json:"resumed"`
}

type jsonSharded struct {
	Shards       int     `json:"shards"`
	FinalResults uint64  `json:"final_results"`
	CostUnits    uint64  `json:"cost_units"`
	Routed       uint64  `json:"routed"`
	Broadcasts   uint64  `json:"broadcasts"`
	PeakMemKB    float64 `json:"peak_mem_kb"`
	Fallback     bool    `json:"fallback"`
}

type jsonHostile struct {
	Name        string `json:"name"`
	Mutators    string `json:"mutators"`
	REFFinals   uint64 `json:"ref_finals"`
	JITFinals   uint64 `json:"jit_finals"`
	REFCost     uint64 `json:"ref_cost"`
	JITCost     uint64 `json:"jit_cost"`
	LateDropped uint64 `json:"late_dropped"`
	Equal       bool   `json:"multiset_equal"`
}

func toJSONResult(r engine.Result) jsonResult {
	return jsonResult{
		FinalResults:    r.Results,
		CostUnits:       r.CostUnits,
		PeakMemKB:       r.PeakMemKB,
		Arrivals:        r.Arrivals,
		OrderViolations: r.OrderViolations,
		Counters:        r.Counters,
	}
}

// JSON renders the machine-readable RESULTS.json (indented, trailing
// newline).
func (r *Report) JSON() ([]byte, error) {
	out := jsonReport{
		Preset:    r.Preset,
		Seed:      r.Seed,
		Modes:     r.Modes,
		GridCells: len(r.Grid),
	}
	for i, fig := range r.Figures {
		jf := jsonFigure{
			ID:     r.Specs[i].ID,
			Name:   fig.ID,
			Title:  fig.Title,
			XLabel: fig.XLabel,
		}
		for _, pt := range fig.Points {
			jp := jsonPoint{X: pt.X, PerMode: map[string]jsonResult{}}
			for _, m := range fig.Modes {
				jp.PerMode[m] = toJSONResult(pt.Results[m])
			}
			jf.Points = append(jf.Points, jp)
		}
		out.Figures = append(out.Figures, jf)
	}
	for _, row := range r.Ext.Indexed {
		out.Extensions.Indexed = append(out.Extensions.Indexed, jsonIndexed{
			Mode:         row.Mode,
			ScanCost:     row.Scan.CostUnits,
			IndexedCost:  row.Indexed.CostUnits,
			ScanCmp:      row.ScanCmp,
			IndexedCmp:   row.IndexedCmp,
			FinalsEqual:  row.ResultsBoth,
			FinalResults: row.Indexed.Results,
		})
	}
	for _, row := range r.Ext.Drain {
		out.Extensions.Drain = append(out.Extensions.Drain, jsonDrain{
			Mode:         row.Mode,
			FinalResults: row.Result.Results,
			CostUnits:    row.Result.CostUnits,
			Suspended:    row.Result.Counters.Suspended,
			Resumed:      row.Result.Counters.Resumed,
		})
	}
	for _, row := range r.Ext.Sharded {
		out.Extensions.Sharded = append(out.Extensions.Sharded, jsonSharded{
			Shards:       row.Shards,
			FinalResults: row.Merged.Results,
			CostUnits:    row.Merged.CostUnits,
			Routed:       row.Routed,
			Broadcasts:   row.Broadcasts,
			PeakMemKB:    row.Merged.PeakMemKB,
			Fallback:     row.Fallback,
		})
	}
	for _, row := range r.Ext.Hostile {
		out.Extensions.Hostile = append(out.Extensions.Hostile, jsonHostile{
			Name:        row.Name,
			Mutators:    row.Mutators,
			REFFinals:   row.REF.Results,
			JITFinals:   row.JIT.Results,
			REFCost:     row.REF.CostUnits,
			JITCost:     row.JIT.CostUnits,
			LateDropped: row.JIT.Counters.LateDropped,
			Equal:       row.Equal,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// SVGs renders every figure's SVG keyed by figure name ("fig10").
func (r *Report) SVGs() map[string][]byte {
	out := make(map[string][]byte, len(r.Figures))
	for _, fig := range r.Figures {
		out[fig.ID] = svgFigure(fig)
	}
	return out
}

// Artifacts renders the complete artifact set keyed by repo-relative path
// — RESULTS.md, RESULTS.json and results/figNN.svg. Both `jitreport`
// (write and -check modes) and the golden test consume this one map, so
// the CI drift gate and the test enforce the same contract by
// construction.
func (r *Report) Artifacts() (map[string][]byte, error) {
	out := map[string][]byte{"RESULTS.md": r.Markdown()}
	jsonData, err := r.JSON()
	if err != nil {
		return nil, err
	}
	out["RESULTS.json"] = jsonData
	//jitlint:allow maporder fills a map keyed by filename; per-file bytes are fixed and every consumer orders names before writing or compares per file
	for name, svg := range r.SVGs() {
		out[filepath.Join("results", name+".svg")] = svg
	}
	return out, nil
}

// StaleSVGs lists results/*.svg files under dir that are absent from the
// artifact set — committed plots of a renamed or dropped figure, which
// the drift gates count as drift.
func StaleSVGs(dir string, artifacts map[string][]byte) []string {
	entries, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		return nil
	}
	var stale []string
	for _, e := range entries {
		rel := filepath.Join("results", e.Name())
		if filepath.Ext(e.Name()) == ".svg" {
			if _, ok := artifacts[rel]; !ok {
				stale = append(stale, rel)
			}
		}
	}
	return stale
}
