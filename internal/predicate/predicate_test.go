package predicate

import (
	"testing"

	"repro/internal/stream"
)

func tpl(src stream.SourceID, vals ...stream.Value) *stream.Tuple {
	return &stream.Tuple{Source: src, TS: 1, Vals: vals}
}

func TestEqHolds(t *testing.T) {
	a := stream.NewComposite(2, tpl(0, 5, 7))
	b := stream.NewComposite(2, tpl(1, 5))
	e := Eq{Left: 0, LCol: 0, Right: 1, RCol: 0}
	if !e.Holds(a, b) {
		t.Fatal("equal values should hold")
	}
	e2 := Eq{Left: 0, LCol: 1, Right: 1, RCol: 0}
	if e2.Holds(a, b) {
		t.Fatal("7 != 5")
	}
	// Vacuous truth with missing endpoint.
	e3 := Eq{Left: 0, LCol: 0, Right: 1, RCol: 0}
	onlyA := stream.NewComposite(2, tpl(0, 9, 9))
	if !e3.HoldsOn(onlyA) {
		t.Fatal("missing endpoint should be vacuously true")
	}
}

func TestConjBetween(t *testing.T) {
	conj := Conj{
		{Left: 0, LCol: 0, Right: 1, RCol: 0},
		{Left: 0, LCol: 1, Right: 2, RCol: 0},
		{Left: 1, LCol: 1, Right: 2, RCol: 1},
	}
	l := stream.SourceSet(0).Add(0).Add(1)
	r := stream.SourceSet(0).Add(2)
	between := conj.Between(l, r)
	if len(between) != 2 {
		t.Fatalf("want 2 crossing preds, got %d", len(between))
	}
	atoms := conj.SourcesLinkedTo(l, r)
	if len(atoms) != 2 {
		t.Fatalf("want atoms {0,1}, got %v", atoms)
	}
	touch := conj.TouchingAcross(0, r)
	if len(touch) != 1 {
		t.Fatalf("want 1 pred touching source 0 across, got %d", len(touch))
	}
}

func TestEvalPair(t *testing.T) {
	conj := Conj{
		{Left: 0, LCol: 0, Right: 1, RCol: 0},
		{Left: 0, LCol: 1, Right: 2, RCol: 0},
	}
	a := stream.NewComposite(3, tpl(0, 5, 8))
	b := stream.NewComposite(3, tpl(1, 5))
	ok, n := conj.EvalPair(a, b)
	if !ok || n != 1 {
		t.Fatalf("eval: ok=%v n=%d", ok, n)
	}
	c := stream.NewComposite(3, tpl(2, 9))
	ok, _ = conj.EvalPair(a, c)
	if ok {
		t.Fatal("8 != 9 should fail")
	}
}

func TestJoinAttrs(t *testing.T) {
	conj := Conj{
		{Left: 0, LCol: 0, Right: 1, RCol: 0},
		{Left: 0, LCol: 1, Right: 2, RCol: 0},
		{Left: 2, LCol: 1, Right: 0, RCol: 1}, // reversed direction, same attr 0.1
	}
	attrs := conj.JoinAttrs(0, stream.SourceSet(0).Add(1).Add(2))
	if len(attrs) != 2 {
		t.Fatalf("want deduped attrs {0.0, 0.1}, got %v", attrs)
	}
	if attrs[0].Col > attrs[1].Col {
		t.Fatal("attrs not sorted")
	}
}

func TestSelection(t *testing.T) {
	s := Selection{Source: 0, Col: 0, Op: GT, Const: 200}
	lo := stream.NewComposite(1, tpl(0, 100))
	hi := stream.NewComposite(1, tpl(0, 300))
	if s.Holds(lo) || !s.Holds(hi) {
		t.Fatal("selection wrong")
	}
	ops := []struct {
		op   CmpOp
		a, b stream.Value
		want bool
	}{
		{LT, 1, 2, true}, {LE, 2, 2, true}, {EQ, 2, 2, true},
		{NE, 1, 2, true}, {GE, 2, 2, true}, {GT, 3, 2, true},
		{LT, 2, 2, false}, {EQ, 1, 2, false}, {GT, 2, 2, false},
	}
	for _, c := range ops {
		if c.op.Eval(c.a, c.b) != c.want {
			t.Errorf("%v %s %v != %v", c.a, c.op, c.b, c.want)
		}
	}
}

// TestClique checks the paper's example: with 4 sources the predicate is
// (A.x1=B.x1) ∧ (A.x2=C.x2) ∧ (A.x3=D.x3) ∧ (B.x4=C.x4) ∧ (B.x5=D.x5) ∧
// (C.x6=D.x6) — six conditions, each source with three columns, every
// column used exactly once per source pair.
func TestClique(t *testing.T) {
	cat, conj := Clique(4)
	if cat.NumSources() != 4 {
		t.Fatalf("want 4 sources")
	}
	if len(conj) != 6 {
		t.Fatalf("want 6 predicates, got %d", len(conj))
	}
	for i := 0; i < 4; i++ {
		if cat.Source(stream.SourceID(i)).NumCols() != 3 {
			t.Fatalf("source %d should have 3 columns", i)
		}
	}
	// Every pair appears exactly once.
	seen := map[[2]stream.SourceID]bool{}
	for _, e := range conj {
		k := [2]stream.SourceID{e.Left, e.Right}
		if seen[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		seen[k] = true
	}
	// Each source's columns used once each across its predicates.
	used := map[Attr]int{}
	for _, e := range conj {
		used[Attr{Source: e.Left, Col: e.LCol}]++
		used[Attr{Source: e.Right, Col: e.RCol}]++
	}
	for a, n := range used {
		if n != 1 {
			t.Fatalf("attr %v used %d times", a, n)
		}
	}
}

func TestCliqueSizes(t *testing.T) {
	for n := 2; n <= 8; n++ {
		_, conj := Clique(n)
		want := n * (n - 1) / 2
		if len(conj) != want {
			t.Fatalf("N=%d: want %d preds, got %d", n, want, len(conj))
		}
	}
}
