package predicate

import (
	"testing"

	"repro/internal/stream"
)

func set(ids ...stream.SourceID) stream.SourceSet {
	var s stream.SourceSet
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

func TestEquiKeyColsClique(t *testing.T) {
	_, conj := Clique(4)
	// Bushy root: {A,B} vs {C,D} crosses on 4 predicates (A-C, A-D, B-C, B-D).
	lk, rk, ok := conj.EquiKeyCols(set(0, 1), set(2, 3))
	if !ok {
		t.Fatal("clique sides must derive a key")
	}
	if len(lk) != 4 || len(rk) != 4 {
		t.Fatalf("want 4 aligned columns, got %d/%d", len(lk), len(rk))
	}
	for i := range lk {
		// Each aligned pair must be the two endpoints of one crossing
		// predicate: left attr on the left set, right attr on the right set.
		if !set(0, 1).Has(lk[i].Source) || !set(2, 3).Has(rk[i].Source) {
			t.Fatalf("pair %d on wrong sides: %v / %v", i, lk[i], rk[i])
		}
	}
}

func TestEquiKeyColsOrientation(t *testing.T) {
	// A predicate written right-to-left must still land left-set column in lk.
	conj := Conj{{Left: 2, LCol: 1, Right: 0, RCol: 0}} // s2.c1 = s0.c0
	lk, rk, ok := conj.EquiKeyCols(set(0), set(2))
	if !ok || len(lk) != 1 {
		t.Fatalf("key not derived: %v %v %v", lk, rk, ok)
	}
	if lk[0] != (Attr{Source: 0, Col: 0}) || rk[0] != (Attr{Source: 2, Col: 1}) {
		t.Fatalf("orientation wrong: %v / %v", lk[0], rk[0])
	}
}

func TestEquiKeyColsCrossProduct(t *testing.T) {
	// No predicate crossing the two sets: the join is a cross product and
	// must fall back to scans.
	conj := Conj{{Left: 0, LCol: 0, Right: 1, RCol: 0}}
	if _, _, ok := conj.EquiKeyCols(set(0, 1), set(2)); ok {
		t.Fatal("cross product must not derive a key")
	}
}

func TestEquiKeyColsIgnoresSameSidePredicates(t *testing.T) {
	conj := Conj{
		{Left: 0, LCol: 0, Right: 1, RCol: 0}, // inside left set
		{Left: 1, LCol: 1, Right: 2, RCol: 0}, // crossing
	}
	lk, rk, ok := conj.EquiKeyCols(set(0, 1), set(2))
	if !ok || len(lk) != 1 || lk[0].Source != 1 || rk[0].Source != 2 {
		t.Fatalf("same-side predicate leaked into key: %v %v", lk, rk)
	}
}
