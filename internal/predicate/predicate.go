// Package predicate models the join and selection conditions of a
// continuous query. Queries are conjunctions of equi-join predicates between
// source columns (the paper's clique-join workloads) plus optional
// single-source selection filters (Sec. V, Fig. 9a).
package predicate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stream"
)

// Eq is one join predicate between two source columns. With Tol == 0 (the
// zero value, and the only form the paper's workloads use) it is the
// equi-join Left.LCol = Right.RCol. With Tol > 0 it is the band join
// |Left.LCol - Right.RCol| <= Tol — a non-equi predicate that deliberately
// defeats hash keying: EquiKeyCols and EquiClosure skip band predicates, so
// joins whose crossing conjunction is pure-band fall back to linear state
// scans and broadcast sharding (DESIGN.md §8).
type Eq struct {
	Left  stream.SourceID
	LCol  int
	Right stream.SourceID
	RCol  int
	// Tol is the band half-width; 0 means exact equality.
	Tol stream.Value
}

// IsBand reports whether this is a band (non-equi) predicate.
func (e Eq) IsBand() bool { return e.Tol != 0 }

// matches applies the predicate's comparison to two resolved values.
func (e Eq) matches(a, b stream.Value) bool {
	if e.Tol == 0 {
		return a == b
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= e.Tol
}

// Touches reports whether the predicate references the given source.
func (e Eq) Touches(id stream.SourceID) bool { return e.Left == id || e.Right == id }

// Across reports whether the predicate links a source in a to a source in b.
func (e Eq) Across(a, b stream.SourceSet) bool {
	return (a.Has(e.Left) && b.Has(e.Right)) || (a.Has(e.Right) && b.Has(e.Left))
}

// Holds evaluates the predicate on two composites that, together, contain
// both endpoints. Missing components make the predicate vacuously true
// (it will be checked by a later operator that sees both sides).
func (e Eq) Holds(a, b *stream.Composite) bool {
	lt := a.Comp(e.Left)
	if lt == nil {
		lt = b.Comp(e.Left)
	}
	rt := a.Comp(e.Right)
	if rt == nil {
		rt = b.Comp(e.Right)
	}
	if lt == nil || rt == nil {
		return true
	}
	return e.matches(lt.Vals[e.LCol], rt.Vals[e.RCol])
}

// HoldsOn evaluates the predicate on a single composite, vacuously true when
// an endpoint is missing.
func (e Eq) HoldsOn(c *stream.Composite) bool {
	lt, rt := c.Comp(e.Left), c.Comp(e.Right)
	if lt == nil || rt == nil {
		return true
	}
	return e.matches(lt.Vals[e.LCol], rt.Vals[e.RCol])
}

func (e Eq) String() string {
	if e.IsBand() {
		return fmt.Sprintf("|s%d.c%d-s%d.c%d|<=%d", e.Left, e.LCol, e.Right, e.RCol, e.Tol)
	}
	return fmt.Sprintf("s%d.c%d=s%d.c%d", e.Left, e.LCol, e.Right, e.RCol)
}

// Conj is a conjunction of equi-join predicates — the WHERE clause of the
// query as far as joins are concerned.
type Conj []Eq

// Between returns the sub-conjunction of predicates that link set a to set
// b. These are exactly the predicates a join of a and b must evaluate.
func (c Conj) Between(a, b stream.SourceSet) Conj {
	var out Conj
	for _, e := range c {
		if e.Across(a, b) {
			out = append(out, e)
		}
	}
	return out
}

// TouchingAcross returns the predicates that link the single source src to
// any source in the opposite set.
func (c Conj) TouchingAcross(src stream.SourceID, opposite stream.SourceSet) Conj {
	var out Conj
	for _, e := range c {
		if e.Left == src && opposite.Has(e.Right) {
			out = append(out, e)
		} else if e.Right == src && opposite.Has(e.Left) {
			out = append(out, e)
		}
	}
	return out
}

// SourcesLinkedTo returns, for a composite over set own, the subset of its
// sources that participate in at least one predicate crossing to opposite.
// These are the lattice atoms of Identify_MNS.
func (c Conj) SourcesLinkedTo(own, opposite stream.SourceSet) []stream.SourceID {
	var set stream.SourceSet
	for _, e := range c {
		if own.Has(e.Left) && opposite.Has(e.Right) {
			set = set.Add(e.Left)
		}
		if own.Has(e.Right) && opposite.Has(e.Left) {
			set = set.Add(e.Right)
		}
	}
	return set.IDs()
}

// EquiKeyCols derives the aligned equi-join key columns of the crossing
// predicates between the source sets left and right: for every predicate
// with one endpoint in each set, lk receives the left-set column and rk the
// right-set column, at the same position. Two composites (one per side)
// satisfy all crossing predicates exactly when their value vectors at lk and
// rk are equal — the property the hash-indexed join states of DESIGN.md §3
// rely on. ok is false when no predicate crosses the two sets (the join is a
// cross product and keying is meaningless); callers must then fall back to
// linear scans. Band predicates (Tol != 0) cannot be keyed — hash equality
// of the key vectors would wrongly reject within-band pairs — so they are
// skipped here; a join whose crossing predicates are all band gets ok=false
// and takes the linear probe path. Mixed conjunctions still key on the equi
// subset: every crossing predicate (band ones included) is re-evaluated on
// each candidate pair, so keying on the subset only narrows candidates, it
// never changes the match set.
func (c Conj) EquiKeyCols(left, right stream.SourceSet) (lk, rk []Attr, ok bool) {
	for _, e := range c {
		if e.IsBand() {
			continue
		}
		switch {
		case left.Has(e.Left) && right.Has(e.Right):
			lk = append(lk, Attr{Source: e.Left, Col: e.LCol})
			rk = append(rk, Attr{Source: e.Right, Col: e.RCol})
		case left.Has(e.Right) && right.Has(e.Left):
			lk = append(lk, Attr{Source: e.Right, Col: e.RCol})
			rk = append(rk, Attr{Source: e.Left, Col: e.LCol})
		}
	}
	return lk, rk, len(lk) > 0
}

// EquiClosure returns the equivalence classes of column attributes under
// the transitive closure of the conjunction: two attributes share a class
// when a chain of equi-predicates equates them, so in any composite
// satisfying the whole conjunction every attribute of a class holds the
// same value. This is the soundness basis of key-partitioned sharding
// (DESIGN.md §5): hash-routing each source by its attribute of one class
// sends all components of any final result to the same shard. Classes are
// sorted internally and between each other by (Source, Col), so the result
// is deterministic; classes with a single attribute (columns no predicate
// touches) are omitted.
func (c Conj) EquiClosure() [][]Attr {
	parent := make(map[Attr]Attr)
	var find func(a Attr) Attr
	find = func(a Attr) Attr {
		p, ok := parent[a]
		if !ok || p == a {
			return a
		}
		r := find(p)
		parent[a] = r
		return r
	}
	union := func(a, b Attr) {
		if _, ok := parent[a]; !ok {
			parent[a] = a
		}
		if _, ok := parent[b]; !ok {
			parent[b] = b
		}
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range c {
		// Band predicates do not equate their endpoints — two within-band
		// values can hash to different shards — so they contribute no edge
		// to the closure. Sources reachable only through band predicates
		// end up keyless and are broadcast by internal/shard.
		if e.IsBand() {
			continue
		}
		union(Attr{Source: e.Left, Col: e.LCol}, Attr{Source: e.Right, Col: e.RCol})
	}
	groups := make(map[Attr][]Attr)
	for a := range parent {
		r := find(a)
		groups[r] = append(groups[r], a)
	}
	var out [][]Attr
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sortAttrs(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return attrLess(out[i][0], out[j][0]) })
	return out
}

// sortAttrs orders attributes by (Source, Col).
func sortAttrs(as []Attr) {
	sort.Slice(as, func(i, j int) bool { return attrLess(as[i], as[j]) })
}

func attrLess(a, b Attr) bool {
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	return a.Col < b.Col
}

// EvalPair evaluates every predicate linking composites a and b. Predicates
// with both endpoints inside a (or inside b) are assumed already checked
// upstream and skipped; n reports how many predicates were actually
// evaluated so callers can charge comparison costs precisely.
func (c Conj) EvalPair(a, b *stream.Composite) (ok bool, n int) {
	for _, e := range c {
		if !e.Across(a.Sources, b.Sources) {
			continue
		}
		n++
		if !e.Holds(a, b) {
			return false, n
		}
	}
	return true, n
}

// JoinAttrs returns the set of (source, column) pairs of the given source
// that appear in predicates crossing to the opposite set. These columns form
// the MNS key signature used for same-signature generalization (the a2
// example of Sec. IV-B).
func (c Conj) JoinAttrs(src stream.SourceID, opposite stream.SourceSet) []Attr {
	seen := map[Attr]bool{}
	var out []Attr
	for _, e := range c {
		if e.Left == src && opposite.Has(e.Right) {
			a := Attr{Source: src, Col: e.LCol}
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
		if e.Right == src && opposite.Has(e.Left) {
			a := Attr{Source: src, Col: e.RCol}
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// WithTol returns a copy of the conjunction with every predicate's band
// tolerance set to tol — the hostile-workload transform that turns an
// equi-join query (Clique, Chain) into its band counterpart. tol = 0
// returns an equivalent equi-join copy.
func (c Conj) WithTol(tol stream.Value) Conj {
	out := make(Conj, len(c))
	copy(out, c)
	for i := range out {
		out[i].Tol = tol
	}
	return out
}

// HasBand reports whether any predicate in the conjunction is a band
// predicate. Consumers use it to disable machinery that is only sound for
// exact equality (hash keying, Bloom absence proofs, exact-value MNS buffer
// probes — DESIGN.md §8).
func (c Conj) HasBand() bool {
	for _, e := range c {
		if e.IsBand() {
			return true
		}
	}
	return false
}

func (c Conj) String() string {
	parts := make([]string, len(c))
	for i, e := range c {
		parts[i] = e.String()
	}
	return strings.Join(parts, " AND ")
}

// Attr identifies one column of one source.
type Attr struct {
	Source stream.SourceID
	Col    int
}

func (a Attr) String() string { return fmt.Sprintf("s%d.c%d", a.Source, a.Col) }

// CmpOp is a comparison operator for selection predicates.
type CmpOp int

// Supported comparison operators.
const (
	LT CmpOp = iota
	LE
	EQ
	NE
	GE
	GT
)

func (o CmpOp) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case EQ:
		return "="
	case NE:
		return "!="
	case GE:
		return ">="
	case GT:
		return ">"
	}
	return "?"
}

// Eval applies the operator to two values.
func (o CmpOp) Eval(a, b stream.Value) bool {
	switch o {
	case LT:
		return a < b
	case LE:
		return a <= b
	case EQ:
		return a == b
	case NE:
		return a != b
	case GE:
		return a >= b
	case GT:
		return a > b
	}
	return false
}

// Selection is a single-source filter such as A.x > 200 (Fig. 9a).
type Selection struct {
	Source stream.SourceID
	Col    int
	Op     CmpOp
	Const  stream.Value
}

// Holds evaluates the filter on a composite; vacuously true when the source
// is absent.
func (s Selection) Holds(c *stream.Composite) bool {
	t := c.Comp(s.Source)
	if t == nil {
		return true
	}
	return s.Op.Eval(t.Vals[s.Col], s.Const)
}

func (s Selection) String() string {
	return fmt.Sprintf("s%d.c%d %s %d", s.Source, s.Col, s.Op, s.Const)
}

// Clique builds the paper's evaluation predicate (Sec. VI): one equi-join
// condition between every pair of the catalog's N sources, each on a
// distinct column. Every source has N-1 columns, one per partner; the column
// a source uses for partner j is the rank of j among the source's other
// partners. For N=4 this yields the paper's example
// (A.x1=B.x1) ∧ (A.x2=C.x2) ∧ ... ∧ (C.x6=D.x6).
func Clique(n int) (cat *stream.Catalog, conj Conj) {
	cat = stream.NewCatalog()
	for i := 0; i < n; i++ {
		cols := make([]string, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			cols = append(cols, fmt.Sprintf("x_%c", 'A'+j))
		}
		name := string(rune('A' + i))
		cat.MustAdd(stream.NewSchema(name, cols...))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			conj = append(conj, Eq{
				Left:  stream.SourceID(i),
				LCol:  colFor(i, j),
				Right: stream.SourceID(j),
				RCol:  colFor(j, i),
			})
		}
	}
	return cat, conj
}

// Chain builds the fully partitionable counterpart of Clique: N
// single-column sources joined pairwise on the shared column
// (A.x = B.x ∧ B.x = C.x ∧ ...). The transitive closure of the conjunction
// is a single class covering every source, so sharded execution
// (internal/shard) routes all N streams by that column and no source needs
// broadcasting — the best case of the DESIGN.md §5 scaling analysis, as
// Clique (pairwise-distinct columns, two-source classes) is the worst.
func Chain(n int) (cat *stream.Catalog, conj Conj) {
	if n < 2 {
		panic("predicate: chain needs >= 2 sources")
	}
	cat = stream.NewCatalog()
	for i := 0; i < n; i++ {
		cat.MustAdd(stream.NewSchema(string(rune('A'+i)), "x"))
	}
	for i := 0; i+1 < n; i++ {
		conj = append(conj, Eq{Left: stream.SourceID(i), Right: stream.SourceID(i + 1)})
	}
	return cat, conj
}

// colFor returns the column index source i uses for partner j under the
// clique layout above.
func colFor(i, j int) int {
	if j < i {
		return j
	}
	return j - 1
}
