package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// testParams is the shared server/baseline workload: an N=3 clique dense
// enough to exercise suspension and resumption with a few hundred finals,
// small enough for the per-mode sweep to stay fast.
func testParams(mode core.Mode) (Config, exp.Params) {
	cfg := Config{
		N:           3,
		Bushy:       true,
		Window:      90 * stream.Second,
		Mode:        mode,
		Addr:        "127.0.0.1:0",
		KeepResults: true,
	}
	base := exp.Params{
		N: cfg.N, Bushy: cfg.Bushy, Window: cfg.Window, Mode: mode,
		Rate: 2, DMax: 18, Horizon: 3 * stream.Minute, Seed: 7,
		Drain: true, KeepResults: true,
	}
	return cfg, base
}

// workload materializes the baseline's arrival trace — the tuples a client
// sends over the wire.
func workload(p exp.Params) []*stream.Tuple {
	cat, _ := predicate.Clique(p.N)
	return source.Generate(cat, source.UniformConfig(p.N, p.Rate, p.DMax, p.Horizon, p.Seed))
}

// client is a test-side protocol connection.
type client struct {
	t    *testing.T
	conn net.Conn
	sc   *bufio.Scanner
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), MaxFrameBytes+1)
	return &client{t: t, conn: conn, sc: sc}
}

func (c *client) close() { c.conn.Close() }

func (c *client) send(v interface{}) {
	c.t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		c.t.Fatalf("marshal: %v", err)
	}
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		c.t.Fatalf("write: %v", err)
	}
}

func (c *client) sendRaw(line string) {
	c.t.Helper()
	if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
		c.t.Fatalf("write: %v", err)
	}
}

// recv reads one response line into a generic map.
func (c *client) recv() map[string]interface{} {
	c.t.Helper()
	if !c.sc.Scan() {
		c.t.Fatalf("connection closed early (err=%v)", c.sc.Err())
	}
	var m map[string]interface{}
	if err := json.Unmarshal(c.sc.Bytes(), &m); err != nil {
		c.t.Fatalf("bad response line %q: %v", c.sc.Text(), err)
	}
	return m
}

// ingest opens an ingest session and returns the greeting's resume mark. The
// server releases the single-writer slot asynchronously after a disconnect,
// so a reconnect can briefly see "already active" — retry those.
func ingestGreet(t *testing.T, addr string) (*client, uint64) {
	t.Helper()
	for i := 0; ; i++ {
		c := dial(t, addr)
		c.send(Frame{Cmd: "ingest"})
		g := c.recv()
		if g["ok"] == true {
			var resume uint64
			if v, ok := g["resume_id"].(float64); ok {
				resume = uint64(v)
			}
			return c, resume
		}
		c.close()
		if e, _ := g["error"].(string); !strings.Contains(e, "already active") || i >= 500 {
			t.Fatalf("ingest greeting rejected: %v", g)
		}
		time.Sleep(time.Millisecond)
	}
}

func tupleFrame(tp *stream.Tuple) Frame {
	vals := make([]int64, len(tp.Vals))
	for i, v := range tp.Vals {
		vals[i] = int64(v)
	}
	return Frame{ID: tp.ID, Source: int(tp.Source), TS: int64(tp.TS), Vals: vals}
}

// feed streams the whole workload through one ingest session and closes with
// eos.
func feed(t *testing.T, addr string, tuples []*stream.Tuple) {
	t.Helper()
	c, resume := ingestGreet(t, addr)
	defer c.close()
	for _, tp := range tuples {
		_ = resume // the server skips covered IDs itself; send everything
		c.send(tupleFrame(tp))
	}
	c.send(Frame{Cmd: "eos"})
	ack := c.recv()
	if ack["ok"] != true {
		t.Fatalf("eos not acknowledged: %v", ack)
	}
}

// subscription holds one subscriber's full view of the stream.
type subscription struct {
	resumeSeq uint64
	seqs      []uint64
	keys      []string
	delivered uint64 // from the eos line
	errLine   string // non-empty when the stream ended with an error
}

// collect subscribes from the given sequence and reads to end-of-stream.
//
// Callers run collect on its own goroutine, so it must never call t.Fatalf:
// a Fatalf there would runtime.Goexit without delivering the result and the
// test would hang on its channel receive until the package timeout. Every
// failure — including the transport-level ones — comes back in errLine for
// the test goroutine to assert on.
func collect(_ *testing.T, addr string, from uint64) subscription {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return subscription{errLine: fmt.Sprintf("dial %s: %v", addr, err)}
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), MaxFrameBytes+1)
	req, err := json.Marshal(Frame{Cmd: "subscribe", From: from})
	if err != nil {
		return subscription{errLine: fmt.Sprintf("marshal: %v", err)}
	}
	if _, err := conn.Write(append(req, '\n')); err != nil {
		return subscription{errLine: fmt.Sprintf("write: %v", err)}
	}
	read := func() (map[string]interface{}, error) {
		if !sc.Scan() {
			return nil, fmt.Errorf("connection closed (err=%v)", sc.Err())
		}
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return nil, fmt.Errorf("bad response line %q: %v", sc.Text(), err)
		}
		return m, nil
	}
	g, err := read()
	if err != nil {
		return subscription{errLine: err.Error()}
	}
	if g["ok"] != true {
		return subscription{errLine: fmt.Sprint(g["error"])}
	}
	var sub subscription
	if v, ok := g["resume_seq"].(float64); ok {
		sub.resumeSeq = uint64(v)
	}
	for {
		m, err := read()
		if err != nil {
			sub.errLine = fmt.Sprintf("stream ended without eos or error: %v", err)
			return sub
		}
		if e, ok := m["error"]; ok {
			sub.errLine = fmt.Sprint(e)
			return sub
		}
		if m["eos"] == true {
			sub.delivered = uint64(m["delivered"].(float64))
			return sub
		}
		sub.seqs = append(sub.seqs, uint64(m["seq"].(float64)))
		sub.keys = append(sub.keys, m["key"].(string))
	}
}

// TestServeMatchesEngine pins the tentpole's baseline property: a network
// round-trip through the server delivers exactly the sequence the in-process
// engine run delivers, in order, in every mode.
func TestServeMatchesEngine(t *testing.T) {
	for _, nm := range exp.AblationModes() {
		nm := nm
		t.Run(nm.Name, func(t *testing.T) {
			t.Parallel()
			cfg, base := testParams(nm.Mode)
			res, want := base.RunKeys()
			if res.Results == 0 {
				t.Fatalf("degenerate baseline: no finals")
			}
			s, err := Open(cfg)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer s.Shutdown()
			done := make(chan subscription, 1)
			go func() { done <- collect(t, s.Addr(), 0) }()
			feed(t, s.Addr(), workload(base))
			sub := <-done
			if sub.errLine != "" {
				t.Fatalf("subscriber error: %s", sub.errLine)
			}
			sres, err := s.Wait()
			if err != nil {
				t.Fatalf("wait: %v", err)
			}
			if sres.Results != res.Results {
				t.Fatalf("server delivered %d finals, engine %d", sres.Results, res.Results)
			}
			if len(sub.keys) != len(want) {
				t.Fatalf("subscriber saw %d deliveries, want %d", len(sub.keys), len(want))
			}
			for i := range want {
				if sub.keys[i] != want[i] {
					t.Fatalf("delivery %d: got %s want %s", i, sub.keys[i], want[i])
				}
			}
			for i, q := range sub.seqs {
				if q != uint64(i+1) {
					t.Fatalf("delivery %d has seq %d, want %d", i, q, i+1)
				}
			}
			if sub.delivered != uint64(len(want)) {
				t.Fatalf("eos line reports %d delivered, want %d", sub.delivered, len(want))
			}
			if sres.OrderViolations != 0 {
				t.Fatalf("order violations: %d", sres.OrderViolations)
			}
		})
	}
}

// TestRejectedFramesDoNotPerturbRun interleaves every rejection class with
// valid traffic — each rejection kills its connection, the client reconnects
// and re-sends (the server skips covered IDs) — and requires the delivered
// sequence to be identical to an unmolested run's.
func TestRejectedFramesDoNotPerturbRun(t *testing.T) {
	cfg, base := testParams(core.JIT())
	_, want := base.RunKeys()
	tuples := workload(base)
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Shutdown()
	done := make(chan subscription, 1)
	go func() { done <- collect(t, s.Addr(), 0) }()

	half := len(tuples) / 2
	poisons := []struct {
		name    string
		send    func(c *client, last *stream.Tuple)
		wantErr string
	}{
		// dup-id must run on the first session: there the prefix was genuinely
		// admitted, so re-sending the last ID is a duplicate. On a reconnected
		// session the same frame is ≤ the resume mark and is silently skipped —
		// correct resume behavior, but no error line.
		{"dup-id", func(c *client, last *stream.Tuple) {
			f := tupleFrame(last)
			f.ID = last.ID // equal to the session's lastID: a duplicate
			c.send(f)
		}, "duplicate"},
		{"malformed", func(c *client, _ *stream.Tuple) { c.sendRaw("{not json") }, "malformed"},
		{"unknown-field", func(c *client, _ *stream.Tuple) { c.sendRaw(`{"id":999999,"sorce":0,"ts":1,"vals":[1]}`) }, "malformed"},
		{"trailing", func(c *client, _ *stream.Tuple) { c.sendRaw(`{"cmd":"eos"} {"cmd":"eos"}`) }, "malformed"},
		{"unknown-source", func(c *client, last *stream.Tuple) {
			c.send(Frame{ID: last.ID + 1, Source: 99, TS: int64(last.TS), Vals: []int64{1}})
		}, "unknown source"},
		{"bad-arity", func(c *client, last *stream.Tuple) {
			c.send(Frame{ID: last.ID + 1, Source: 0, TS: int64(last.TS), Vals: []int64{1, 2, 3, 4, 5}})
		}, "value count"},
		{"time-regress", func(c *client, last *stream.Tuple) {
			f := tupleFrame(last)
			f.ID, f.TS = last.ID+1, int64(last.TS)-1000
			c.send(f)
		}, "regression"},
	}

	// First half, then one poison per reconnect round, re-sending the prefix
	// each time (covered IDs are skipped server-side).
	c, _ := ingestGreet(t, s.Addr())
	for _, tp := range tuples[:half] {
		c.send(tupleFrame(tp))
	}
	last := tuples[half-1]
	for _, p := range poisons {
		p.send(c, last)
		m := c.recv()
		e, ok := m["error"].(string)
		if !ok {
			t.Fatalf("%s: expected error line, got %v", p.name, m)
		}
		if !strings.Contains(e, p.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", p.name, e, p.wantErr)
		}
		c.close()
		c, _ = ingestGreet(t, s.Addr())
		for _, tp := range tuples[:half] {
			c.send(tupleFrame(tp))
		}
	}
	for _, tp := range tuples[half:] {
		c.send(tupleFrame(tp))
	}
	c.send(Frame{Cmd: "eos"})
	if ack := c.recv(); ack["ok"] != true {
		t.Fatalf("eos not acknowledged: %v", ack)
	}
	c.close()

	sub := <-done
	if sub.errLine != "" {
		t.Fatalf("subscriber error: %s", sub.errLine)
	}
	if len(sub.keys) != len(want) {
		t.Fatalf("poisoned run delivered %d, clean run %d", len(sub.keys), len(want))
	}
	for i := range want {
		if sub.keys[i] != want[i] {
			t.Fatalf("delivery %d: got %s want %s", i, sub.keys[i], want[i])
		}
	}
	if _, err := s.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	st := s.Stats()
	if st.Skipped == 0 {
		t.Fatalf("expected skipped resume replays, got none")
	}
}

// TestSecondIngestRejected pins single-writer admission.
func TestSecondIngestRejected(t *testing.T) {
	cfg, base := testParams(core.REF())
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Shutdown()
	c1, _ := ingestGreet(t, s.Addr())
	defer c1.close()
	// A subscriber does not occupy the ingest slot.
	c2 := dial(t, s.Addr())
	defer c2.close()
	c2.send(Frame{Cmd: "subscribe"})
	g := c2.recv()
	if g["ok"] != true {
		t.Fatalf("subscribe rejected: %v", g)
	}
	c3 := dial(t, s.Addr())
	defer c3.close()
	c3.send(Frame{Cmd: "ingest"})
	m := c3.recv()
	if e, _ := m["error"].(string); !strings.Contains(e, "already active") {
		t.Fatalf("second ingest not rejected: %v", m)
	}
	// Releasing the first session admits a new writer.
	c1.close()
	var admitted bool
	for i := 0; i < 100; i++ {
		c4 := dial(t, s.Addr())
		c4.send(Frame{Cmd: "ingest"})
		m := c4.recv()
		ok := m["ok"] == true
		c4.close()
		if ok {
			admitted = true
			break
		}
	}
	if !admitted {
		t.Fatalf("ingest slot never released after disconnect")
	}
	_ = base
}

// TestShutdownDrainsWithoutEOS: closing the server mid-stream drains what was
// ingested and delivers it, exactly like an eos.
func TestShutdownDrainsWithoutEOS(t *testing.T) {
	cfg, base := testParams(core.JIT())
	tuples := workload(base)
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	done := make(chan subscription, 1)
	go func() { done <- collect(t, s.Addr(), 0) }()
	c, _ := ingestGreet(t, s.Addr())
	for _, tp := range tuples {
		c.send(tupleFrame(tp))
	}
	// No eos. Wait until the server has admitted the full stream (Shutdown
	// kicks the ingest socket, so anything still in flight there would be
	// dropped — legal, but this test wants the full drain).
	last := tuples[len(tuples)-1].ID
	for s.IngestHWM() != last {
		time.Sleep(time.Millisecond)
	}
	s.Shutdown()
	c.close()
	sub := <-done
	if sub.errLine != "" {
		t.Fatalf("subscriber error after shutdown: %s", sub.errLine)
	}
	res, err := s.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	_, want := base.RunKeys()
	if res.Results != uint64(len(want)) {
		t.Fatalf("shutdown drain delivered %d, want %d", res.Results, len(want))
	}
}

// TestSubscribeResume: a subscriber joining with from=N sees exactly the
// suffix after N, and one joining beyond the end is clamped.
func TestSubscribeResume(t *testing.T) {
	cfg, base := testParams(core.JIT())
	_, want := base.RunKeys()
	if len(want) < 10 {
		t.Fatalf("workload too sparse for a resume test (%d finals)", len(want))
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Shutdown()
	feed(t, s.Addr(), workload(base))
	if _, err := s.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	from := uint64(len(want) / 2)
	sub := collect(t, s.Addr(), from)
	if sub.errLine != "" {
		t.Fatalf("resume subscriber error: %s", sub.errLine)
	}
	if len(sub.keys) != len(want)-int(from) {
		t.Fatalf("resume from %d saw %d deliveries, want %d", from, len(sub.keys), len(want)-int(from))
	}
	for i, k := range sub.keys {
		if k != want[int(from)+i] {
			t.Fatalf("resumed delivery %d: got %s want %s", i, k, want[int(from)+i])
		}
	}
}
