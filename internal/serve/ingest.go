package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"

	"repro/internal/stream"
)

// Wire response lines (see the protocol comment in protocol.go).
type greetLine struct {
	OK        bool    `json:"ok"`
	ResumeID  *uint64 `json:"resume_id,omitempty"`
	ResumeSeq *uint64 `json:"resume_seq,omitempty"`
}

type ackLine struct {
	OK       bool   `json:"ok"`
	Ingested uint64 `json:"ingested"`
	Skipped  uint64 `json:"skipped"`
}

type errLine struct {
	Error string `json:"error"`
}

type deliveryLine struct {
	Seq uint64 `json:"seq"`
	TS  int64  `json:"ts"`
	Key string `json:"key"`
}

type eosLine struct {
	EOS       bool   `json:"eos"`
	Delivered uint64 `json:"delivered"`
}

// writeLine marshals one response line and flushes it.
func writeLine(w *bufio.Writer, v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	return w.Flush()
}

// writeErr sends a protocol error line; the connection closes right after.
func writeErr(w *bufio.Writer, err error) {
	writeLine(w, errLine{Error: err.Error()}) //nolint:errcheck // conn is closing
}

// handleConn reads the role-declaring first line and dispatches.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.track(conn)
	defer s.untrack(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), MaxFrameBytes+1)
	w := bufio.NewWriter(conn)
	if !sc.Scan() {
		return
	}
	f, err := DecodeFrame(sc.Bytes())
	if err != nil {
		writeErr(w, err)
		return
	}
	switch f.Cmd {
	case "ingest":
		s.setRole(conn, roleIngest)
		s.serveIngest(sc, w)
	case "subscribe":
		s.setRole(conn, roleSubscribe)
		s.serveSubscribe(w, f.From)
	default:
		writeErr(w, fmt.Errorf("%w: first line must declare {\"cmd\":\"ingest\"} or {\"cmd\":\"subscribe\"}", ErrMalformed))
	}
}

func (s *Server) track(c net.Conn) {
	s.mu.Lock()
	s.conns[c] = rolePending
	s.mu.Unlock()
}

func (s *Server) setRole(c net.Conn, r connRole) {
	s.mu.Lock()
	s.conns[c] = r
	s.mu.Unlock()
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serveIngest owns the single active ingest session: admission (one writer,
// stream still open), greeting with the resume mark, then the frame loop.
// Every reject path returns a typed error line BEFORE the frame touches the
// engine channel — a rejected frame provably leaves the engine untouched.
func (s *Server) serveIngest(sc *bufio.Scanner, w *bufio.Writer) {
	s.mu.Lock()
	if s.ingestActive {
		s.mu.Unlock()
		writeErr(w, ErrIngestBusy)
		return
	}
	if s.eosSeen || s.stopping {
		s.mu.Unlock()
		writeErr(w, ErrStreamClosed)
		return
	}
	s.ingestActive = true
	sess := &session{
		numSources: s.b.Catalog.NumSources(),
		arity:      func(id stream.SourceID) int { return s.b.Catalog.Source(id).NumCols() },
		resumeHWM:  s.ingestHWM,
		disorder:   s.cfg.Disorder,
		lastID:     s.ingestHWM,
		maxTS:      s.ingestMaxTS,
		started:    s.ingestSeen,
	}
	hwm := s.ingestHWM
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.ingestActive = false
		s.skipped += sess.skipped
		s.cond.Broadcast() // Shutdown may be waiting the session out
		s.mu.Unlock()
	}()
	if err := writeLine(w, greetLine{OK: true, ResumeID: &hwm}); err != nil {
		return
	}
	var ingested uint64
	for sc.Scan() {
		f, err := DecodeFrame(sc.Bytes())
		if err != nil {
			writeErr(w, err)
			return
		}
		switch f.Cmd {
		case "eos":
			s.closeIngest()
			writeLine(w, ackLine{OK: true, Ingested: ingested, Skipped: sess.skipped}) //nolint:errcheck // conn is closing
			return
		case "":
			// A tuple frame.
		default:
			writeErr(w, fmt.Errorf("%w: unknown command %q", ErrMalformed, f.Cmd))
			return
		}
		t, err := sess.apply(f)
		if err != nil {
			writeErr(w, err)
			return
		}
		if t == nil {
			continue // recovery replay of an already-covered ID
		}
		select {
		case s.ch <- t:
		case <-s.done:
			writeErr(w, fmt.Errorf("serve: engine stopped"))
			return
		}
		s.mu.Lock()
		s.ingestHWM, s.ingestMaxTS, s.ingestSeen = t.ID, sess.maxTS, true
		s.mu.Unlock()
		ingested++
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			writeErr(w, ErrFrameTooLong)
		} else {
			writeErr(w, fmt.Errorf("%w: %v", ErrMalformed, err))
		}
	}
}

// serveSubscribe attaches the connection to the delivery hub and streams
// result lines until end-of-stream, a lag disconnect, or a crash.
func (s *Server) serveSubscribe(w *bufio.Writer, from uint64) {
	sub, err := s.hub.subscribe(from)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer s.hub.unsubscribe(sub)
	start := s.hub.start
	if err := writeLine(w, greetLine{OK: true, ResumeSeq: &start}); err != nil {
		return
	}
	for {
		d, done, err := s.hub.nextFor(sub)
		if err != nil {
			writeErr(w, err)
			return
		}
		if done {
			writeLine(w, eosLine{EOS: true, Delivered: s.hub.delivered()}) //nolint:errcheck // conn is closing
			return
		}
		if err := writeLine(w, deliveryLine{Seq: d.Seq, TS: int64(d.TS), Key: d.Key}); err != nil {
			return
		}
	}
}
