package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/stream"
)

// fuzzSession builds the session the fuzz target validates against: three
// sources of arities 1, 2, 3, a resume mark, and a little disorder slack.
func fuzzSession() *session {
	return &session{
		numSources: 3,
		arity:      func(id stream.SourceID) int { return int(id) + 1 },
		resumeHWM:  10,
		disorder:   2 * stream.Second,
	}
}

// sessionState is the comparable mirror of the session's mutable fields.
type sessionState struct {
	lastID  uint64
	maxTS   stream.Time
	started bool
	closed  bool
	skipped uint64
}

func snapshotSession(s *session) sessionState {
	return sessionState{s.lastID, s.maxTS, s.started, s.closed, s.skipped}
}

// FuzzIngestFrame is satellite 1: any byte sequence — malformed JSON,
// truncated frames, duplicate IDs, wrong arities — either decodes and
// validates into a tuple, or is rejected with a typed error that provably
// leaves the session untouched. Engine isolation is structural (serveIngest
// only enqueues non-nil apply results), so session-state immutability on
// rejection is the whole property.
func FuzzIngestFrame(f *testing.F) {
	// Seed corpus: every rejection class plus valid traffic.
	seeds := []string{
		`{"id":11,"source":0,"ts":1000,"vals":[1]}`,     // valid
		`{"id":12,"source":1,"ts":2000,"vals":[1,2]}`,   // valid
		`{"id":13,"source":2,"ts":3000,"vals":[1,2,3]}`, // valid
		`{"id":5,"source":0,"ts":1000,"vals":[1]}`,      // <= resumeHWM: skip
		`{"id":11,"source":9,"ts":1000,"vals":[1]}`,     // unknown source
		`{"id":11,"source":-1,"ts":1000,"vals":[1]}`,    // negative source
		`{"id":11,"source":0,"ts":1000,"vals":[1,2,3]}`, // bad arity
		`{"id":11,"source":0,"ts":1000,"vals":[]}`,      // bad arity (empty)
		`{"id":11,"source":0,"ts":-9999,"vals":[1]}`,    // big regression
		`{not json`,                             // malformed
		``,                                      // empty line
		`{"id":11,"sorce":0,"ts":1,"vals":[1]}`, // unknown field
		`{"cmd":"eos"} {"cmd":"eos"}`,           // trailing data
		`{"cmd":"subscribe"}`,                   // command, not tuple
		`{"id":18446744073709551615,"source":0,"ts":1,"vals":[1]}`, // max uint64
		`[1,2,3]`,     // wrong JSON shape
		`"hello"`,     // wrong JSON shape
		`{"id":true}`, // wrong field type
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		sess := fuzzSession()
		// Warm the session so duplicate/regression paths are reachable.
		warm := []Frame{
			{ID: 20, Source: 0, TS: 10_000, Vals: []int64{1}},
			{ID: 21, Source: 1, TS: 11_000, Vals: []int64{2, 3}},
		}
		for _, w := range warm {
			if _, err := sess.apply(w); err != nil {
				t.Fatalf("warmup rejected: %v", err)
			}
		}
		before := snapshotSession(sess)

		fr, err := DecodeFrame(line)
		if err != nil {
			// Decode rejection: typed, and the session was never consulted.
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrFrameTooLong) {
				t.Fatalf("decode error is untyped: %v", err)
			}
			if got := snapshotSession(sess); got != before {
				t.Fatalf("decode rejection touched the session: %+v -> %+v", before, got)
			}
			return
		}
		if fr.Cmd != "" {
			// Command frames are dispatched before apply in serveIngest.
			return
		}
		tup, err := sess.apply(fr)
		after := snapshotSession(sess)
		switch {
		case err != nil:
			// Rejection: state must be byte-for-byte untouched.
			if after != before {
				t.Fatalf("rejected frame mutated session: %+v -> %+v", before, after)
			}
			if tup != nil {
				t.Fatalf("rejected frame produced a tuple")
			}
		case tup == nil:
			// Resume skip: only the skip counter moves.
			want := before
			want.skipped++
			if after != want {
				t.Fatalf("skip changed more than the counter: %+v -> %+v", before, after)
			}
			if fr.ID > sess.resumeHWM {
				t.Fatalf("skipped a frame above the resume mark (id=%d)", fr.ID)
			}
		default:
			// Admitted: the monotonicity invariants the engine relies on.
			if tup.ID <= before.lastID {
				t.Fatalf("admitted non-increasing id %d after %d", tup.ID, before.lastID)
			}
			if after.lastID != tup.ID {
				t.Fatalf("lastID %d does not track admitted id %d", after.lastID, tup.ID)
			}
			if tup.TS < before.maxTS-sess.disorder {
				t.Fatalf("admitted ts %d beyond the disorder bound (max %d)", tup.TS, before.maxTS)
			}
			if after.maxTS < before.maxTS {
				t.Fatalf("maxTS went backwards: %d -> %d", before.maxTS, after.maxTS)
			}
			if want := sess.arity(tup.Source); len(tup.Vals) != want {
				t.Fatalf("admitted tuple with arity %d, catalog wants %d", len(tup.Vals), want)
			}
			// The admitted tuple is exactly what the frame declared.
			if uint64(tup.ID) != fr.ID || int(tup.Source) != fr.Source || int64(tup.TS) != fr.TS {
				t.Fatalf("tuple fields diverge from frame: %+v vs %+v", tup, fr)
			}
			for i, v := range fr.Vals {
				if int64(tup.Vals[i]) != v {
					t.Fatalf("value %d diverges: %d vs %d", i, tup.Vals[i], v)
				}
			}
		}
	})
}

// TestDecodeFrameCanonical pins a few decode behaviors the fuzz target
// assumes: strictness about unknown fields and trailing bytes, and that a
// decoded frame re-marshals to an equivalent frame.
func TestDecodeFrameCanonical(t *testing.T) {
	f, err := DecodeFrame([]byte(`{"id":7,"source":1,"ts":42,"vals":[1,2]}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	f2, err := DecodeFrame(b)
	if err != nil {
		t.Fatalf("re-decode %s: %v", b, err)
	}
	if f2.ID != f.ID || f2.Source != f.Source || f2.TS != f.TS || !bytes.Equal(int64sToJSON(f2.Vals), int64sToJSON(f.Vals)) {
		t.Fatalf("round-trip diverges: %+v vs %+v", f2, f)
	}
}

func int64sToJSON(v []int64) []byte {
	b, _ := json.Marshal(v)
	return b
}
