package serve

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/plan"
	"repro/internal/stream"
)

// errCrash is the in-process crash sentinel: the kill-point harness arms a
// crash hook, the checkpointer panics with this value at the armed point, and
// the server's run loop recovers it into a crashed (non-eos) shutdown — the
// fast, race-detectable stand-in for SIGKILL (the subprocess harness covers
// the real signal).
var errCrash = fmt.Errorf("serve: armed crash point reached")

// checkpointer implements engine.Reoptimizer as a durability hook: it never
// migrates the plan (Migrate always returns nil), but a true Decide makes the
// engine drain the outgoing plan's timer deadlines to the arrival's timestamp
// before calling Migrate — exactly the quiescent §7 cut the snapshot needs,
// bought with the seam the adaptive re-optimizer already paid for.
//
// The ingest high-water mark needs one subtlety: Decide observes an arrival
// BEFORE the engine processes it, so at the cut the plan holds everything up
// to the PREVIOUS arrival. The checkpointer therefore promotes the pending ID
// to the HWM only on the next Decide call, when its arrival is fully inside
// the plan. The arrival that triggered the checkpoint is not covered by it —
// the client re-sends it on resume and the session admits it (ID above the
// recovered HWM).
type checkpointer struct {
	st     *checkpoint.Store
	tap    *tap
	every  stream.Time
	window stream.Time
	config string

	started  bool
	next     stream.Time
	hwm      uint64 // last arrival fully processed by the engine
	pending  uint64 // arrival currently being processed
	lastTS   stream.Time
	arrivals uint64 // arrivals observed this incarnation
	saved    int    // checkpoints written this incarnation
	err      error  // first save failure (durability stalls, run continues)

	// Kill-point hooks (tests): panic with errCrash after the Nth checkpoint
	// of this incarnation, or on the Nth arrival of this incarnation.
	crashAfterCheckpoints int
	crashAfterArrivals    uint64
}

// Attach implements engine.Reoptimizer.
func (c *checkpointer) Attach(*plan.Built) {}

// Decide implements engine.Reoptimizer: report a checkpoint due when the
// arrival's timestamp crosses the next checkpoint boundary.
func (c *checkpointer) Decide(t *stream.Tuple, _ *plan.Built) bool {
	c.hwm = c.pending // the previous arrival is fully inside the plan now
	c.pending = t.ID
	c.lastTS = t.TS
	c.arrivals++
	if c.crashAfterArrivals > 0 && c.arrivals >= c.crashAfterArrivals {
		panic(errCrash)
	}
	if !c.started {
		c.started = true
		c.next = t.TS + c.every
		return false
	}
	return t.TS >= c.next
}

// Migrate implements engine.Reoptimizer: the engine has drained deadlines to
// the cut; write the checkpoint and keep the plan (nil return).
func (c *checkpointer) Migrate(cut stream.Time, b *plan.Built) *plan.Built {
	c.save(cut, b)
	for c.next <= cut {
		c.next += c.every
	}
	if c.crashAfterCheckpoints > 0 && c.saved >= c.crashAfterCheckpoints {
		panic(errCrash)
	}
	return nil
}

// finish writes the end-of-run checkpoint after the engine's drain: every
// arrival is processed (the pending ID is promoted) and at the natural
// horizon every window has closed, so the snapshot is empty and a restart
// has nothing left to deliver.
func (c *checkpointer) finish(b *plan.Built) {
	c.hwm = c.pending
	c.save(c.lastTS+c.window, b)
}

// save writes one checkpoint at the cut. A save failure is recorded (first
// error wins) and durability stops advancing, but the run itself continues —
// losing freshness is strictly better than killing a live stream.
func (c *checkpointer) save(cut stream.Time, b *plan.Built) {
	tail := c.tap.hub.tailSnapshot()
	entries := make([]checkpoint.TailEntry, len(tail))
	for i, d := range tail {
		entries[i] = checkpoint.TailEntry{Seq: d.Seq, TS: d.TS, Key: d.Key}
	}
	ck := &checkpoint.Checkpoint{
		Cut:       cut,
		IngestHWM: c.hwm,
		Delivered: c.tap.seq,
		Config:    c.config,
		Keys:      c.tap.seed(cut, c.window),
		Tail:      entries,
		Rows:      b.SnapshotInWindow(cut),
	}
	if _, err := c.st.Save(ck); err != nil && c.err == nil {
		c.err = err
	} else if err == nil {
		c.saved++
	}
}
