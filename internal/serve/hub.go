package serve

import (
	"fmt"
	"sync"

	"repro/internal/stream"
)

// Delivery is one final result as seen by subscribers: a monotone sequence
// number (the delivery high-water mark's unit), the result timestamp, and
// the canonical result key.
type Delivery struct {
	Seq uint64
	TS  stream.Time
	Key string
}

// SubPolicy decides what happens when a subscriber cannot keep up with the
// delivery rate.
type SubPolicy int

const (
	// SubBlock applies backpressure: the engine's delivery blocks until
	// the slowest subscriber frees ring space, which in turn stalls ingest
	// deterministically (the bounded-memory guarantee of DESIGN.md §10).
	SubBlock SubPolicy = iota
	// SubKick disconnects a subscriber that falls a full ring behind, so
	// ingest continues at full rate; the kicked client may reconnect and
	// resume from its last seq if the ring still holds it.
	SubKick
)

func (p SubPolicy) String() string {
	if p == SubKick {
		return "kick"
	}
	return "block"
}

// ErrLagged is returned to a subscriber whose position fell out of the
// retained delivery ring (kick policy, or a resume request older than the
// ring start).
var ErrLagged = fmt.Errorf("serve: subscriber lagged beyond the retained delivery window")

// hub fans deliveries out to subscribers through one bounded ring: the ring
// IS the per-run delivery retention, so server memory for results is
// O(ring) regardless of run length or subscriber speed. Publish runs on the
// engine goroutine; subscriber readers run on their connection goroutines.
type hub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []Delivery
	next   uint64 // absolute index of the next delivery to publish
	base   uint64 // deliveries with absolute index < base left the ring
	start  uint64 // the incarnation's delivery floor (committed − restored tail)
	subs   map[*subscriber]struct{}
	policy SubPolicy
	closed bool
	eos    bool
	final  uint64 // total delivered, valid once eos
}

// subscriber is one attached reader's cursor into the ring.
type subscriber struct {
	pos    uint64
	kicked bool
}

// newHub builds the delivery ring for an incarnation whose committed
// delivery mark is `committed`. tail, when non-empty, re-seeds the ring with
// the previous incarnation's retained deliveries (newest last, contiguous
// sequence numbers ending at committed) so subscribers that had not read a
// committed delivery when the process died can still fetch it; entries
// beyond this ring's capacity are dropped oldest-first, exactly as live
// retention would have dropped them.
func newHub(retain int, policy SubPolicy, committed uint64, tail []Delivery) *hub {
	if retain < 1 {
		retain = 1 << 14
	}
	if len(tail) > retain {
		tail = tail[len(tail)-retain:]
	}
	base := committed - uint64(len(tail))
	h := &hub{
		ring:   make([]Delivery, retain),
		next:   committed,
		base:   base,
		start:  base,
		subs:   make(map[*subscriber]struct{}),
		policy: policy,
	}
	for i, d := range tail {
		h.ring[(base+uint64(i))%uint64(retain)] = d
	}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// tailSnapshot copies the live ring contents — the deliveries the hub could
// still re-send — oldest first. The checkpointer persists this alongside the
// cut so the retention window survives a kill.
func (h *hub) tailSnapshot() []Delivery {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Delivery, 0, h.next-h.base)
	for p := h.base; p < h.next; p++ {
		out = append(out, h.ring[p%uint64(len(h.ring))])
	}
	return out
}

// publish appends one delivery, applying the overflow policy. Called from
// the engine goroutine only.
func (h *hub) publish(d Delivery) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if h.policy == SubBlock {
		// Block while any live subscriber would lose d's slot: the ring
		// slot about to be overwritten is h.next - len(ring).
		for h.next >= uint64(len(h.ring)) && h.minPos() <= h.next-uint64(len(h.ring)) && !h.closed {
			h.cond.Wait()
		}
		if h.closed {
			return
		}
	}
	h.ring[h.next%uint64(len(h.ring))] = d
	h.next++
	if h.next-h.base > uint64(len(h.ring)) {
		h.base = h.next - uint64(len(h.ring))
	}
	if h.policy == SubKick {
		//jitlint:allow maporder marks every laggard independently; subscribers are unordered peers and no deterministic artifact sees the visit order
		for s := range h.subs {
			if s.pos < h.base {
				s.kicked = true
			}
		}
	}
	h.cond.Broadcast()
}

// minPos returns the smallest live subscriber cursor, or max-uint when no
// subscriber is attached (an empty room never blocks the engine).
func (h *hub) minPos() uint64 {
	min := ^uint64(0)
	//jitlint:allow maporder commutative min over subscriber cursors; any visit order yields the same minimum
	for s := range h.subs {
		if !s.kicked && s.pos < min {
			min = s.pos
		}
	}
	return min
}

// subscribe attaches a reader resuming after delivery seq `from`. Requests
// below the incarnation's floor — the committed mark minus the restored tail
// — clamp up to it: deliveries at or below the floor are gone for good (that
// is the greeting's resume_seq contract). Requests inside the incarnation
// but older than the retained ring fail with ErrLagged.
func (h *hub) subscribe(from uint64) (*subscriber, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	pos := from
	if pos < h.start {
		pos = h.start
	}
	if pos < h.base {
		return nil, fmt.Errorf("%w: want seq %d, ring starts at %d", ErrLagged, from+1, h.base+1)
	}
	if pos > h.next {
		pos = h.next
	}
	s := &subscriber{pos: pos}
	h.subs[s] = struct{}{}
	// A new (possibly slower) cursor changes minPos; wake a blocked
	// publisher so it re-evaluates, and wake readers idempotently.
	h.cond.Broadcast()
	return s, nil
}

// unsubscribe detaches a reader; its cursor no longer holds the ring back.
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.cond.Broadcast()
	h.mu.Unlock()
}

// nextFor blocks until a delivery is available for the subscriber and
// returns it; done=true means a clean end-of-stream (after the final
// delivery), err non-nil a kicked/lagged subscriber or an abrupt close.
func (h *hub) nextFor(s *subscriber) (d Delivery, done bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if s.kicked {
			return Delivery{}, false, ErrLagged
		}
		if s.pos < h.next {
			if s.pos < h.base {
				return Delivery{}, false, ErrLagged
			}
			d = h.ring[s.pos%uint64(len(h.ring))]
			s.pos++
			h.cond.Broadcast() // publisher may be waiting on minPos
			return d, false, nil
		}
		if h.closed {
			if h.eos {
				return Delivery{}, true, nil
			}
			return Delivery{}, false, fmt.Errorf("serve: server closed")
		}
		h.cond.Wait()
	}
}

// close ends the stream: eos=true is the clean drain (subscribers get a
// final eos frame), eos=false an abrupt crash-style teardown.
func (h *hub) close(eos bool, delivered uint64) {
	h.mu.Lock()
	h.closed = true
	h.eos = eos
	h.final = delivered
	h.cond.Broadcast()
	h.mu.Unlock()
}

// delivered returns the final delivery count (valid after an eos close).
func (h *hub) delivered() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.final
}
