package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stream"
)

func hubNext(h *hub) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next
}

// TestHubSubBlockBlocksPublisher pins the SubBlock policy at the hub level:
// a publisher that would overwrite the slowest subscriber's next delivery
// blocks, and the subscriber's read is exactly what unblocks it.
func TestHubSubBlockBlocksPublisher(t *testing.T) {
	h := newHub(4, SubBlock, 0, nil)
	sub, err := h.subscribe(0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	for i := 1; i <= 4; i++ {
		h.publish(Delivery{Seq: uint64(i)}) // fills the ring, must not block
	}
	blocked := make(chan struct{})
	go func() {
		h.publish(Delivery{Seq: 5})
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatalf("5th publish into a full ring did not block")
	case <-time.After(50 * time.Millisecond):
	}
	d, done, err := h.nextFor(sub)
	if err != nil || done || d.Seq != 1 {
		t.Fatalf("nextFor: %v %v %v", d, done, err)
	}
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatalf("publisher still blocked after the subscriber freed a slot")
	}
	// Detaching the only subscriber releases the engine entirely.
	blocked2 := make(chan struct{})
	go func() {
		for i := 6; i <= 20; i++ {
			h.publish(Delivery{Seq: uint64(i)})
		}
		close(blocked2)
	}()
	h.unsubscribe(sub)
	select {
	case <-blocked2:
	case <-time.After(2 * time.Second):
		t.Fatalf("publisher blocked with no subscribers attached")
	}
}

// TestHubSubKickKicksLaggard pins the SubKick policy: the publisher never
// blocks, a subscriber a full ring behind is disconnected with ErrLagged, and
// a subscriber that keeps up is untouched.
func TestHubSubKickKicksLaggard(t *testing.T) {
	h := newHub(4, SubKick, 0, nil)
	stalled, err := h.subscribe(0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	active, err := h.subscribe(0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	for i := 1; i <= 10; i++ {
		h.publish(Delivery{Seq: uint64(i)}) // must never block
		d, done, err := h.nextFor(active)
		if err != nil || done || d.Seq != uint64(i) {
			t.Fatalf("active read %d: %v %v %v", i, d, done, err)
		}
	}
	if _, _, err := h.nextFor(stalled); !errors.Is(err, ErrLagged) {
		t.Fatalf("stalled subscriber not kicked: %v", err)
	}
	// The active subscriber is still attached and sees the clean close.
	h.close(true, 10)
	if _, done, err := h.nextFor(active); err != nil || !done {
		t.Fatalf("active subscriber broken after kick of another: %v %v", done, err)
	}
}

// TestHubSubscribeBounds pins the resume-cursor clamps: requests below the
// incarnation's committed mark clamp up (committed deliveries are never
// re-sent), requests beyond the head clamp down, and requests inside the
// incarnation but outside the ring fail with ErrLagged.
func TestHubSubscribeBounds(t *testing.T) {
	h := newHub(4, SubBlock, 10, nil)
	s1, err := h.subscribe(3) // below the committed mark: clamps to 10
	if err != nil {
		t.Fatalf("subscribe below start: %v", err)
	}
	if s1.pos != 10 {
		t.Fatalf("pos %d, want clamp to start 10", s1.pos)
	}
	s2, err := h.subscribe(50) // beyond the head: clamps to next
	if err != nil {
		t.Fatalf("subscribe beyond head: %v", err)
	}
	if s2.pos != 10 {
		t.Fatalf("pos %d, want clamp to next 10", s2.pos)
	}
	h.unsubscribe(s1)
	h.unsubscribe(s2)
	for i := 1; i <= 6; i++ {
		h.publish(Delivery{Seq: 10 + uint64(i)}) // next=16, base=12
	}
	if _, err := h.subscribe(11); !errors.Is(err, ErrLagged) {
		t.Fatalf("in-incarnation request outside the ring not rejected: %v", err)
	}
	if _, err := h.subscribe(12); err != nil {
		t.Fatalf("oldest retained position rejected: %v", err)
	}
}

// quietClient is a protocol connection for background goroutines: failures
// come back as errors, never as t.Fatal (which must not run off the test
// goroutine).
type quietClient struct {
	conn net.Conn
	sc   *bufio.Scanner
	err  error
}

func netDial(addr string) (*quietClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), MaxFrameBytes+1)
	return &quietClient{conn: conn, sc: sc}, nil
}

func (c *quietClient) close() { c.conn.Close() }

// mustSend records the first write failure instead of failing the test; the
// caller checks c.err once the exchange is over.
func (c *quietClient) mustSend(v interface{}) {
	if c.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		c.err = err
		return
	}
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		c.err = err
	}
}

func (c *quietClient) tryRecv() (map[string]interface{}, bool) {
	if !c.sc.Scan() {
		return nil, false
	}
	var m map[string]interface{}
	if err := json.Unmarshal(c.sc.Bytes(), &m); err != nil {
		c.err = err
		return nil, false
	}
	return m, true
}

func toString(v interface{}) string { return fmt.Sprint(v) }

// feedQuiet is feed for background goroutines: failures come back as errors,
// never as t.Fatal (which must not run off the test goroutine).
func feedQuiet(addr string, tuples []*stream.Tuple) error {
	conn, err := netDial(addr)
	if err != nil {
		return err
	}
	defer conn.close()
	conn.mustSend(Frame{Cmd: "ingest"})
	g, ok := conn.tryRecv()
	if !ok || g["ok"] != true {
		return errors.New("ingest greeting rejected")
	}
	for _, tp := range tuples {
		conn.mustSend(tupleFrame(tp))
	}
	conn.mustSend(Frame{Cmd: "eos"})
	ack, ok := conn.tryRecv()
	if !ok || ack["ok"] != true {
		return errors.New("eos not acknowledged")
	}
	return conn.err
}

// collectQuiet is collect for background goroutines.
func collectQuiet(addr string, from uint64) (subscription, error) {
	conn, err := netDial(addr)
	if err != nil {
		return subscription{}, err
	}
	defer conn.close()
	conn.mustSend(Frame{Cmd: "subscribe", From: from})
	g, ok := conn.tryRecv()
	if !ok {
		return subscription{}, errors.New("no subscribe greeting")
	}
	if g["ok"] != true {
		return subscription{errLine: toString(g["error"])}, nil
	}
	var sub subscription
	if v, ok := g["resume_seq"].(float64); ok {
		sub.resumeSeq = uint64(v)
	}
	for {
		m, ok := conn.tryRecv()
		if !ok {
			return sub, errors.New("subscriber stream ended without eos or error")
		}
		if e, ok := m["error"]; ok {
			sub.errLine = toString(e)
			return sub, nil
		}
		if m["eos"] == true {
			sub.delivered = uint64(m["delivered"].(float64))
			return sub, nil
		}
		sub.seqs = append(sub.seqs, uint64(m["seq"].(float64)))
		sub.keys = append(sub.keys, m["key"].(string))
	}
}

// TestBackpressureSubBlockBoundsServer is satellite 2's SubBlock half: a
// subscriber that stops reading stalls delivery, the stall propagates
// deterministically back to ingest (the admitted high-water mark pins), the
// delivery ring never grows past its bound, and the engine's live-state
// profile is byte-identical to an unstalled run's — the server's memory is
// bounded by the clean profile no matter how slow a subscriber is. When the
// subscriber resumes, the run completes and delivers the exact sequence.
func TestBackpressureSubBlockBoundsServer(t *testing.T) {
	const retain = 8
	cfg, base := testParams(core.JIT())
	_, want := base.RunKeys()
	if len(want) <= retain+1 {
		t.Fatalf("workload too sparse (%d finals) to overflow a ring of %d", len(want), retain)
	}
	tuples := workload(base)

	// Clean reference run: same query, same trace cadence, free-running.
	cleanTr := obs.New(obs.Options{SampleEvery: 10 * stream.Second})
	clean := cfg
	clean.Trace = cleanTr
	cs, err := Open(clean)
	if err != nil {
		t.Fatalf("open clean: %v", err)
	}
	defer cs.Shutdown()
	cleanDone := make(chan subscription, 1)
	go func() {
		sub, err := collectQuiet(cs.Addr(), 0)
		if err != nil {
			sub.errLine = err.Error()
		}
		cleanDone <- sub
	}()
	feed(t, cs.Addr(), tuples)
	if sub := <-cleanDone; sub.errLine != "" {
		t.Fatalf("clean subscriber: %s", sub.errLine)
	}
	if _, err := cs.Wait(); err != nil {
		t.Fatalf("clean wait: %v", err)
	}

	// Stalled run: tiny ring, tiny ingest buffer, a subscriber that attaches
	// and then refuses to read.
	stallTr := obs.New(obs.Options{SampleEvery: 10 * stream.Second})
	scfg := cfg
	scfg.Retain = retain
	scfg.MaxPending = 4
	scfg.Policy = SubBlock
	scfg.Trace = stallTr
	s, err := Open(scfg)
	if err != nil {
		t.Fatalf("open stalled: %v", err)
	}
	defer s.Shutdown()
	stalled, err := s.hub.subscribe(0)
	if err != nil {
		t.Fatalf("hub subscribe: %v", err)
	}
	// Runs before the deferred Shutdown (LIFO): if an assertion fails while
	// the engine is blocked in publish on this cursor, releasing it is the
	// only way Shutdown's drain can complete. Idempotent with the normal
	// drain below.
	defer s.hub.unsubscribe(stalled)
	tcpDone := make(chan subscription, 1)
	go func() {
		sub, err := collectQuiet(s.Addr(), 0)
		if err != nil {
			sub.errLine = err.Error()
		}
		tcpDone <- sub
	}()
	feedDone := make(chan error, 1)
	go func() { feedDone <- feedQuiet(s.Addr(), tuples) }()

	// The stall point is deterministic: the engine delivers exactly `retain`
	// results into the ring, then blocks publishing the next one.
	deadline := time.Now().Add(10 * time.Second)
	for hubNext(s.hub) < retain {
		if time.Now().After(deadline) {
			t.Fatalf("delivery never reached the ring bound (next=%d)", hubNext(s.hub))
		}
		time.Sleep(time.Millisecond)
	}
	// Pinned: the ring must not advance while the slow subscriber sits still.
	pinnedAt := hubNext(s.hub)
	time.Sleep(100 * time.Millisecond)
	if got := hubNext(s.hub); got != pinnedAt {
		t.Fatalf("ring advanced from %d to %d despite a stalled SubBlock subscriber", pinnedAt, got)
	}
	if pinnedAt != retain {
		t.Fatalf("ring pinned at %d, want exactly the bound %d", pinnedAt, retain)
	}
	// Ingest pins too, but not at the same instant the ring does: after the
	// engine blocks in publish, the ingest handler keeps admitting until the
	// channel's MaxPending slots fill, so the admitted mark can advance a few
	// IDs past the moment the ring pins. Poll until it quiesces, then assert
	// the invariant that matters: admission stopped strictly short of the
	// stream's end.
	quiesce := time.Now().Add(10 * time.Second)
	hwm := s.IngestHWM()
	for {
		time.Sleep(100 * time.Millisecond)
		next := s.IngestHWM()
		if next == hwm {
			break
		}
		if time.Now().After(quiesce) {
			t.Fatalf("ingest mark never quiesced during the stall (at %d)", next)
		}
		hwm = next
	}
	if last := tuples[len(tuples)-1].ID; hwm == last {
		t.Fatalf("ingest admitted the whole stream during the stall")
	}

	// Resume: drain the stalled cursor; everything completes and matches.
	go func() {
		for {
			if _, done, err := s.hub.nextFor(stalled); done || err != nil {
				return
			}
		}
	}()
	if err := <-feedDone; err != nil {
		t.Fatalf("feeder: %v", err)
	}
	sub := <-tcpDone
	if sub.errLine != "" {
		t.Fatalf("tcp subscriber: %s", sub.errLine)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if len(sub.keys) != len(want) {
		t.Fatalf("stalled run delivered %d, want %d", len(sub.keys), len(want))
	}
	for i := range want {
		if sub.keys[i] != want[i] {
			t.Fatalf("delivery %d: got %s want %s", i, sub.keys[i], want[i])
		}
	}

	// The memory-bound claim: the live-state series of the stalled run is
	// identical to the clean run's — backpressure holds memory to the clean
	// profile; it does not buffer past it.
	cleanS, stallS := cleanTr.Samples(), stallTr.Samples()
	if len(cleanS) == 0 || len(cleanS) != len(stallS) {
		t.Fatalf("sample series diverge: clean %d, stalled %d", len(cleanS), len(stallS))
	}
	for i := range cleanS {
		if cleanS[i].T != stallS[i].T || cleanS[i].LiveBytes != stallS[i].LiveBytes {
			t.Fatalf("sample %d diverges: clean (T=%d live=%d) stalled (T=%d live=%d)",
				i, cleanS[i].T, cleanS[i].LiveBytes, stallS[i].T, stallS[i].LiveBytes)
		}
	}
}

// TestBackpressureSubKickDropsLaggard is satellite 2's SubKick half: a
// subscriber that cannot keep up is disconnected, ingest runs to completion
// at full rate, and the laggard (plus anyone resuming from evicted history)
// gets ErrLagged rather than silently missing deliveries.
func TestBackpressureSubKickDropsLaggard(t *testing.T) {
	const retain = 8
	cfg, base := testParams(core.JIT())
	_, want := base.RunKeys()
	if len(want) <= retain+1 {
		t.Fatalf("workload too sparse (%d finals) to overflow a ring of %d", len(want), retain)
	}
	cfg.Retain = retain
	cfg.Policy = SubKick
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Shutdown()
	stalled, err := s.hub.subscribe(0)
	if err != nil {
		t.Fatalf("hub subscribe: %v", err)
	}
	// The stalled subscriber must not slow the run down: feed synchronously;
	// the eos ack arriving proves ingest never blocked for long.
	feed(t, s.Addr(), workload(base))
	if _, err := s.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if _, _, err := s.hub.nextFor(stalled); !errors.Is(err, ErrLagged) {
		t.Fatalf("laggard not kicked: %v", err)
	}
	if got := s.Stats().Delivered; got != uint64(len(want)) {
		t.Fatalf("kick run delivered %d, want %d", got, len(want))
	}
	// Resuming from evicted history is an explicit lag error over the wire.
	old := collect(t, s.Addr(), 0)
	if !strings.Contains(old.errLine, "lagged") {
		t.Fatalf("resume from evicted history: %q, want a lag error", old.errLine)
	}
	// Resuming inside the retained tail replays exactly the tail.
	from := uint64(len(want) - 3)
	tail := collect(t, s.Addr(), from)
	if tail.errLine != "" {
		t.Fatalf("tail resume: %s", tail.errLine)
	}
	if len(tail.keys) != 3 {
		t.Fatalf("tail resume saw %d deliveries, want 3", len(tail.keys))
	}
	for i, k := range tail.keys {
		if k != want[int(from)+i] {
			t.Fatalf("tail delivery %d: got %s want %s", i, k, want[int(from)+i])
		}
	}
}
