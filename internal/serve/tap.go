package serve

import (
	"repro/internal/checkpoint"
	"repro/internal/operator"
	"repro/internal/stream"
)

// tap is the server's delivery gate, spliced between the plan root and the
// sink (the same splice point as the adaptive migration tap, internal/adapt).
// Every final result passes through exactly once, where it gets its delivery
// sequence number, is recorded in the recovery dedup seed, forwarded to the
// sink (counters, ordering check), and published to the subscriber hub.
//
// The seed map holds the canonical keys of delivered results by minimum
// constituent timestamp. After a recovery, replaying the checkpoint rows
// regenerates exactly the delivered results whose constituents were all
// in-window at the cut; the seed (restored from the checkpoint) absorbs them
// so no committed delivery is ever re-published. Entries age out once their
// oldest constituent leaves the window — no future replay can rebuild them —
// which bounds the map to one window of deliveries rather than the run's
// history (pruned at each checkpoint).
//
// All methods run on the engine goroutine; the hub does its own locking.
type tap struct {
	sink *operator.Sink
	hub  *hub
	seen map[string]stream.Time // delivered key -> min constituent TS
	seq  uint64                 // delivery sequence HWM (continues past recovery)
	dups uint64                 // recovery replay regenerations absorbed
}

func newTap(sink *operator.Sink, h *hub, resumeSeq uint64, seed []checkpoint.DeliveredKey) *tap {
	t := &tap{sink: sink, hub: h, seen: make(map[string]stream.Time, len(seed)), seq: resumeSeq}
	for _, k := range seed {
		t.seen[k.Key] = k.MinTS
	}
	return t
}

// Consume implements operator.Consumer.
func (t *tap) Consume(c *stream.Composite, p operator.Port) {
	k := c.Key()
	if _, ok := t.seen[k]; ok {
		// A recovery replay regenerated a committed delivery: absorb it.
		t.dups++
		return
	}
	t.seen[k] = c.MinTS
	t.seq++
	t.sink.Consume(c, p)
	// publish may block under the SubBlock policy — that stall propagates
	// back through the engine goroutine to the ingest channel and out to the
	// client's TCP write: the server's bounded-memory backpressure chain.
	t.hub.publish(Delivery{Seq: t.seq, TS: c.TS, Key: k})
}

// seed prunes entries whose oldest constituent left the window by the cut
// and returns the survivors — the dedup seed a checkpoint at this cut needs.
func (t *tap) seed(cut, window stream.Time) []checkpoint.DeliveredKey {
	var out []checkpoint.DeliveredKey
	//jitlint:allow maporder seed order is irrelevant: checkpoint.Encode sorts keys (MinTS, Key) before writing, and restore re-ingests into a map
	for k, ts := range t.seen {
		if ts+window <= cut {
			delete(t.seen, k)
			continue
		}
		out = append(out, checkpoint.DeliveredKey{MinTS: ts, Key: k})
	}
	return out
}
