package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/stream"
)

// The wire protocol is NDJSON over TCP (DESIGN.md §10): one JSON object per
// line, both directions. A connection's first line declares its role:
//
//	{"cmd":"ingest"}          the connection will stream tuple frames in
//	{"cmd":"subscribe"}       the connection wants the result stream out
//	{"cmd":"subscribe","from":N}  ... resuming after delivery sequence N
//
// Ingest frames carry one base tuple each:
//
//	{"id":17,"source":0,"ts":120000,"vals":[3,7,2]}
//
// and the stream ends with {"cmd":"eos"}, which starts the engine's
// end-of-stream drain. The server greets an ingest connection with
// {"ok":true,"resume_id":H} — tuples with ID <= H are already durable in
// the server's state and will be skipped if re-sent (the exactly-once
// resume contract) — and a subscriber with {"ok":true,"resume_seq":F},
// the incarnation's delivery floor: deliveries with seq <= F are gone for
// good, while committed deliveries above the floor (the checkpoint's
// restored ring tail) are re-readable verbatim — subscribers dedup by
// sequence number. On a fresh start the floor is simply 0. Deliveries are
//
//	{"seq":41,"ts":121500,"key":"0:3|1:9|2:11|3:14"}
//
// followed by {"eos":true,"delivered":N} when the stream drains to its
// horizon. Protocol errors are {"error":"..."} followed by connection
// close; a rejected frame never reaches the engine.

// Frame is one NDJSON line from an ingest connection: either a control
// command or a tuple. Unknown fields are rejected — a typo'd field name
// silently dropping data is worse than a hard error.
type Frame struct {
	Cmd    string  `json:"cmd,omitempty"`
	From   uint64  `json:"from,omitempty"`
	ID     uint64  `json:"id,omitempty"`
	Source int     `json:"source"`
	TS     int64   `json:"ts"`
	Vals   []int64 `json:"vals"`
}

// Typed ingest decode/validation errors; match with errors.Is. Every path
// that rejects a frame returns one of these BEFORE the frame reaches the
// engine channel, so a rejected frame provably leaves engine counters
// untouched (FuzzIngestFrame pins this).
var (
	// ErrMalformed marks a line that is not a valid frame object.
	ErrMalformed = fmt.Errorf("serve: malformed frame")
	// ErrFrameTooLong marks a line exceeding the frame size limit — the
	// truncated-frame guard.
	ErrFrameTooLong = fmt.Errorf("serve: frame exceeds size limit")
	// ErrDuplicateID marks a tuple whose ID does not advance the session's
	// last ingested ID (and is above the resume HWM, so it is not a
	// recovery replay).
	ErrDuplicateID = fmt.Errorf("serve: duplicate or regressing tuple id")
	// ErrUnknownSource marks a tuple naming a source outside the catalog.
	ErrUnknownSource = fmt.Errorf("serve: unknown source")
	// ErrBadArity marks a tuple whose value count does not match its
	// source's schema.
	ErrBadArity = fmt.Errorf("serve: value count does not match schema")
	// ErrTimeRegress marks a tuple whose timestamp goes backwards further
	// than the configured disorder bound admits (with no disorder bound,
	// any regression).
	ErrTimeRegress = fmt.Errorf("serve: timestamp regression beyond disorder bound")
	// ErrIngestBusy rejects a second concurrent ingest session: a single
	// ordered writer is what makes the ingested sequence deterministic.
	ErrIngestBusy = fmt.Errorf("serve: an ingest session is already active")
	// ErrStreamClosed rejects frames after eos.
	ErrStreamClosed = fmt.Errorf("serve: stream already closed by eos")
)

// MaxFrameBytes bounds one NDJSON line; longer lines are rejected with
// ErrFrameTooLong before any parsing.
const MaxFrameBytes = 1 << 20

// DecodeFrame parses one NDJSON line into a Frame. It is a pure function
// of the line — the fuzz target. Structural errors (bad JSON, unknown
// fields, trailing garbage) map to ErrMalformed; oversized input to
// ErrFrameTooLong.
func DecodeFrame(line []byte) (Frame, error) {
	var f Frame
	if len(line) > MaxFrameBytes {
		return f, fmt.Errorf("%w: %d bytes", ErrFrameTooLong, len(line))
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	// Trailing non-whitespace after the object is a framing error: two
	// objects on one line means the sender's line discipline is broken.
	if dec.More() {
		return Frame{}, fmt.Errorf("%w: trailing data after frame object", ErrMalformed)
	}
	return f, nil
}

// session validates the ordered tuple stream of one ingest connection
// against the catalog and the resume high-water mark. It owns no engine
// state: apply either returns a tuple ready for the ingest channel, or
// (nil, nil) for a harmless skip (recovery replay of an already-ingested
// ID), or a typed error — and the caller only ever enqueues non-nil
// returns, which is what makes "rejected frames leave the engine untouched"
// a structural property rather than a claim.
type session struct {
	numSources int
	arity      func(src stream.SourceID) int
	resumeHWM  uint64      // IDs <= resumeHWM are recovery replays: skip
	disorder   stream.Time // admitted timestamp regression
	lastID     uint64
	maxTS      stream.Time
	started    bool
	closed     bool
	skipped    uint64 // recovery replays skipped
}

// apply validates one decoded tuple frame in session order.
func (s *session) apply(f Frame) (*stream.Tuple, error) {
	if s.closed {
		return nil, ErrStreamClosed
	}
	if f.Source < 0 || f.Source >= s.numSources {
		return nil, fmt.Errorf("%w: source %d of %d", ErrUnknownSource, f.Source, s.numSources)
	}
	if want := s.arity(stream.SourceID(f.Source)); len(f.Vals) != want {
		return nil, fmt.Errorf("%w: source %d wants %d values, got %d", ErrBadArity, f.Source, want, len(f.Vals))
	}
	if f.ID <= s.resumeHWM {
		// Recovery replay: the tuple is already inside (or expired out of)
		// the restored state. Skip without error — this is the resume
		// protocol working, not a client bug.
		s.skipped++
		return nil, nil
	}
	if s.started && f.ID <= s.lastID {
		return nil, fmt.Errorf("%w: id %d after %d", ErrDuplicateID, f.ID, s.lastID)
	}
	ts := stream.Time(f.TS)
	if s.started && ts < s.maxTS-s.disorder {
		return nil, fmt.Errorf("%w: ts %d after max %d (bound %d)", ErrTimeRegress, ts, s.maxTS, s.disorder)
	}
	s.started = true
	s.lastID = f.ID
	if ts > s.maxTS {
		s.maxTS = ts
	}
	vals := make([]stream.Value, len(f.Vals))
	for i, v := range f.Vals {
		vals[i] = stream.Value(v)
	}
	return &stream.Tuple{ID: f.ID, Source: stream.SourceID(f.Source), TS: ts, Vals: vals}, nil
}
