// Package serve is the network front-end of the repository (DESIGN.md §10):
// a long-running server that accepts base tuples over NDJSON-over-TCP
// (protocol.go), feeds them through engine.ChanSource into a single live
// plan, streams final results back to subscriber connections through a
// bounded delivery ring (hub.go), and — when given a checkpoint directory —
// periodically makes the §7 snapshot cut durable (internal/checkpoint) so a
// killed server restarts into exactly the state it checkpointed, resuming
// exactly-once past the recovered high-water marks.
//
// # Recovery protocol
//
// Open loads the newest valid checkpoint (corrupt files fall back to their
// predecessor), refuses it if its config identity differs from the server's,
// rebuilds the plan, seeds the delivery tap with the checkpoint's dedup keys
// and delivery sequence, replays the checkpoint rows (plan.ReplayInWindow),
// and starts the engine with the ingest HWM as the resume mark. The ingest
// greeting then tells the client to resume past the HWM (re-sent IDs at or
// below it are skipped as recovery replays), and the subscriber greeting
// carries the incarnation's delivery floor — the committed sequence minus
// the restored ring tail; deliveries at or below the floor are gone for
// good, while committed-but-unread deliveries inside the tail remain
// re-readable exactly as they were from the live ring (clients dedup by
// sequence number). Everything the pre-crash server did after its last
// checkpoint is regenerated deterministically from the replayed state plus
// the client's re-sent arrivals — the crash-equivalence property the
// kill-point harness (crash_test.go) pins in every mode.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// ErrCrashed is returned by Wait when the engine died at an armed kill point
// (the in-process crash harness) instead of reaching end-of-stream.
var ErrCrashed = fmt.Errorf("serve: engine crashed before end of stream")

// Config describes one server instance: the query it runs and how it serves.
type Config struct {
	// N, Bushy, Window, Mode, Indexed and Band define the query exactly as
	// the jitrun flags of the same names do: an N-source clique (predicate.
	// Clique) under the Table II bushy or left-deep shape.
	N       int
	Bushy   bool
	Window  stream.Time
	Mode    core.Mode
	Indexed bool
	Band    stream.Value
	// Disorder admits bounded out-of-timestamp-order ingest (DESIGN.md §8).
	// Incompatible with a checkpoint directory: the reorder buffer sits
	// between the ingest HWM and the plan, so a durable cut cannot name the
	// covered prefix by a single ID.
	Disorder stream.Time

	// Addr is the TCP listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Dir, when non-empty, enables durability: checkpoints are written there
	// and the newest valid one is recovered on Open.
	Dir string
	// Every is the checkpoint interval in application time; zero means one
	// window.
	Every stream.Time
	// Keep bounds checkpoint retention (checkpoint.OpenStore; zero means 2).
	Keep int
	// MaxPending is the ingest channel buffer — arrivals admitted but not
	// yet processed; zero means 1024. Beyond it the ingest connection blocks
	// (TCP backpressure).
	MaxPending int
	// Retain is the delivery ring size (hub); zero means 16384.
	Retain int
	// Policy decides what happens to subscribers that cannot keep up:
	// SubBlock (default) stalls the engine — and transitively ingest — until
	// they drain; SubKick disconnects them.
	Policy SubPolicy
	// KeepResults retains every delivered composite in the sink (tests).
	KeepResults bool
	// Trace attaches an observability tracer to the plan (DESIGN.md §9) —
	// the jitserver ops endpoint and the backpressure memory-bound tests
	// hang off it. Nil leaves observation disabled.
	Trace *obs.Tracer

	// Kill-point hooks for the in-process crash harness (tests only): panic
	// at the Nth checkpoint / arrival of this incarnation. Require Dir.
	crashAfterCheckpoints int
	crashAfterArrivals    uint64
}

// Validate rejects configurations the server cannot serve correctly.
func (c Config) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("serve: need at least 2 sources (N=%d)", c.N)
	case c.Window <= 0:
		return fmt.Errorf("serve: window must be positive (window=%v)", c.Window)
	case c.Addr == "":
		return fmt.Errorf("serve: listen address required")
	case c.Band < 0:
		return fmt.Errorf("serve: band tolerance cannot be negative (%d)", c.Band)
	case c.Disorder < 0:
		return fmt.Errorf("serve: disorder bound cannot be negative (%v)", c.Disorder)
	case c.Dir != "" && c.Disorder > 0:
		return fmt.Errorf("serve: checkpointing requires in-order ingest (disorder=%v): the reorder buffer would sit outside the durable cut", c.Disorder)
	case c.Every < 0:
		return fmt.Errorf("serve: checkpoint interval cannot be negative (%v)", c.Every)
	case c.Every > 0 && c.Dir == "":
		return fmt.Errorf("serve: checkpoint interval set but no checkpoint dir")
	case c.MaxPending < 0:
		return fmt.Errorf("serve: ingest buffer cannot be negative (%d)", c.MaxPending)
	case c.Retain < 0:
		return fmt.Errorf("serve: delivery ring size cannot be negative (%d)", c.Retain)
	case (c.crashAfterCheckpoints > 0 || c.crashAfterArrivals > 0) && c.Dir == "":
		return fmt.Errorf("serve: crash hooks require a checkpoint dir")
	}
	return nil
}

// shape resolves the plan shape.
func (c Config) shape() *plan.Node {
	if c.Bushy {
		return plan.Bushy(c.N)
	}
	return plan.LeftDeep(c.N)
}

// identity is the config string stored in checkpoints: restore refuses a
// checkpoint taken under a different query — replaying its rows into this
// plan would silently build wrong state.
func (c Config) identity() string {
	return fmt.Sprintf("n=%d shape=%s window=%d mode=%v indexed=%t band=%d",
		c.N, c.shape().Canonical(), c.Window, c.Mode, c.Indexed, c.Band)
}

// RecoveryInfo describes one recovery performed by Open.
type RecoveryInfo struct {
	Path      string        // checkpoint file restored
	Cut       stream.Time   // its snapshot cut
	Rows      int           // in-window rows replayed
	Keys      int           // dedup seed entries
	Tail      int           // delivery-ring entries restored for re-reads
	IngestHWM uint64        // resume mark handed to ingest clients
	Delivered uint64        // committed delivery sequence
	Elapsed   time.Duration // wall time of decode + replay
}

// Stats is a post-run summary (valid after Wait returns).
type Stats struct {
	Delivered   uint64 // total deliveries, committed prefix included
	ReplayDups  uint64 // recovery regenerations absorbed by the tap
	Checkpoints int    // checkpoints written this incarnation
	Skipped     uint64 // recovery replay frames skipped by ingest sessions
	SaveErr     error  // first checkpoint save failure, if any
}

// Server is one running instance.
type Server struct {
	cfg Config
	b   *plan.Built
	lis net.Listener
	hub *hub
	tap *tap
	st  *checkpoint.Store
	ckp *checkpointer
	ch  chan *stream.Tuple

	recovery *RecoveryInfo
	done     chan struct{}
	wg       sync.WaitGroup

	mu           sync.Mutex
	cond         *sync.Cond // signals ingest-session release (Shutdown waits)
	conns        map[net.Conn]connRole
	stopping     bool
	ingestActive bool
	ingestHWM    uint64
	ingestMaxTS  stream.Time
	ingestSeen   bool
	skipped      uint64
	eosSeen      bool
	crashed      bool
	res          engine.Result
}

// connRole tracks what a connection declared itself to be; Shutdown kicks
// pending and ingest connections but lets subscribers finish their stream.
type connRole int

const (
	rolePending connRole = iota
	roleIngest
	roleSubscribe
)

// Open builds the plan, recovers the newest checkpoint (when Dir is set),
// binds the listener and starts the engine. The server is serving when Open
// returns.
func Open(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cat, conj := predicate.Clique(cfg.N)
	if cfg.Band > 0 {
		conj = conj.WithTol(cfg.Band)
	}
	b := plan.BuildTree(cat, conj, cfg.shape(), plan.Options{
		Window: cfg.Window, Mode: cfg.Mode, NoStateIndex: !cfg.Indexed,
		KeepResults: cfg.KeepResults,
	})
	s := &Server{
		cfg:   cfg,
		b:     b,
		done:  make(chan struct{}),
		conns: make(map[net.Conn]connRole),
	}
	s.cond = sync.NewCond(&s.mu)
	var ck *checkpoint.Checkpoint
	var ckPath string
	if cfg.Dir != "" {
		st, err := checkpoint.OpenStore(cfg.Dir, cfg.Keep)
		if err != nil {
			return nil, err
		}
		s.st = st
		if ck, ckPath, err = st.Latest(); err != nil {
			return nil, err
		}
		if ck != nil && ck.Config != cfg.identity() {
			return nil, fmt.Errorf("serve: checkpoint %s config mismatch: server %q, checkpoint %q",
				ckPath, cfg.identity(), ck.Config)
		}
	}
	var resumeID, resumeSeq uint64
	var seed []checkpoint.DeliveredKey
	var tail []Delivery
	if ck != nil {
		resumeID, resumeSeq, seed = ck.IngestHWM, ck.Delivered, ck.Keys
		// The restored delivery tail must be contiguous and end exactly at
		// the committed mark, or the ring seed would lie about sequence
		// numbers.
		base := resumeSeq - uint64(len(ck.Tail))
		tail = make([]Delivery, len(ck.Tail))
		for i, d := range ck.Tail {
			if d.Seq != base+uint64(i)+1 {
				return nil, fmt.Errorf("serve: checkpoint %s delivery tail is not contiguous at seq %d", ckPath, d.Seq)
			}
			tail[i] = Delivery{Seq: d.Seq, TS: d.TS, Key: d.Key}
		}
	}
	s.hub = newHub(cfg.Retain, cfg.Policy, resumeSeq, tail)
	s.tap = newTap(b.Sink, s.hub, resumeSeq, seed)
	b.RootJoin().SetConsumer(s.tap, operator.Left)
	if cfg.Trace != nil {
		// Attached before the replay, so recovery work is visible in the
		// trace like migration replays are (DESIGN.md §9).
		b.SetTrace(cfg.Trace)
	}
	// Exact-delivery before the replay: the server always drains, and the
	// replayed state must be the state an exact-mode run would hold.
	for _, j := range b.Joins {
		j.SetExact(true)
	}
	if ck != nil {
		start := time.Now() //jitlint:allow wallclock RecoveryInfo.Elapsed is an operator-facing latency report; replayed state is clock-independent
		b.ReplayInWindow(ck.Rows)
		s.recovery = &RecoveryInfo{
			Path: ckPath, Cut: ck.Cut, Rows: len(ck.Rows), Keys: len(ck.Keys),
			Tail: len(ck.Tail), IngestHWM: resumeID, Delivered: resumeSeq,
			Elapsed: time.Since(start), //jitlint:allow wallclock RecoveryInfo.Elapsed is an operator-facing latency report; replayed state is clock-independent
		}
		// Every delivery the replay regenerated was committed pre-crash and
		// absorbed by the seeded tap; the sequence must not have advanced.
		if s.tap.seq != resumeSeq {
			return nil, fmt.Errorf("serve: recovery replay delivered %d uncommitted results — checkpoint %s is inconsistent",
				s.tap.seq-resumeSeq, ckPath)
		}
		s.ingestMaxTS, s.ingestSeen = ck.Cut, true
	}
	s.ingestHWM = resumeID
	pending := cfg.MaxPending
	if pending == 0 {
		pending = 1024
	}
	s.ch = make(chan *stream.Tuple, pending)
	opts := engine.Options{Drain: true, Disorder: cfg.Disorder}
	if s.st != nil {
		every := cfg.Every
		if every == 0 {
			every = cfg.Window
		}
		s.ckp = &checkpointer{
			st: s.st, tap: s.tap, every: every, window: cfg.Window,
			config: cfg.identity(), hwm: resumeID, pending: resumeID,
			lastTS:                resumeID2TS(ck),
			crashAfterCheckpoints: cfg.crashAfterCheckpoints,
			crashAfterArrivals:    cfg.crashAfterArrivals,
		}
		opts.Reopt = s.ckp
	}
	eng := engine.NewWithOptions(b, opts)
	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Addr, err)
	}
	s.lis = lis
	go s.runLoop(eng)
	go s.acceptLoop()
	return s, nil
}

// resumeID2TS seeds the checkpointer's clock from the recovered cut so a
// restart that sees no further arrivals still writes its final checkpoint at
// a sane horizon.
func resumeID2TS(ck *checkpoint.Checkpoint) stream.Time {
	if ck == nil {
		return 0
	}
	return ck.Cut
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Recovery reports the recovery Open performed, or nil for a fresh start.
func (s *Server) Recovery() *RecoveryInfo { return s.recovery }

// runLoop drives the engine to end-of-stream on its own goroutine, recovering
// armed kill-point panics into a crashed shutdown. On a clean finish the
// listener stays open — late subscribers may still fetch the retained ring —
// until Shutdown; a crash closes it, because a crashed server is dead.
func (s *Server) runLoop(eng *engine.Engine) {
	defer close(s.done)
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errCrash) {
				s.mu.Lock()
				s.crashed = true
				s.mu.Unlock()
				s.hub.close(false, 0)
				s.lis.Close()
				return
			}
			panic(r)
		}
	}()
	res := eng.RunStream(engine.ChanSource(s.ch))
	if s.ckp != nil {
		s.ckp.finish(eng.Built())
	}
	s.mu.Lock()
	s.res = res
	s.mu.Unlock()
	s.hub.close(true, s.tap.seq)
}

// acceptLoop hands each connection to its own goroutine until the listener
// closes (end of run or Shutdown).
func (s *Server) acceptLoop() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Wait blocks until the engine finishes and returns its result; ErrCrashed
// when an armed kill point fired instead of a clean end-of-stream.
func (s *Server) Wait() (engine.Result, error) {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return engine.Result{}, ErrCrashed
	}
	return s.res, nil
}

// Stats summarizes the run; call after Wait has returned.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	skipped := s.skipped
	s.mu.Unlock()
	st := Stats{Delivered: s.tap.seq, ReplayDups: s.tap.dups, Skipped: skipped}
	if s.ckp != nil {
		st.Checkpoints = s.ckp.saved
		st.SaveErr = s.ckp.err
	}
	return st
}

// Sink exposes the run's sink (delivery log under KeepResults; tests).
func (s *Server) Sink() *operator.Sink { return s.b.Sink }

// IngestHWM returns the highest tuple ID admitted to the engine so far (the
// mark a new ingest session's greeting would carry).
func (s *Server) IngestHWM() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestHWM
}

// Shutdown stops the server: the listener closes, pending and ingest
// connections are kicked (tuples already admitted stay admitted), the ingest
// channel closes so the engine drains what it has, and in-flight subscriber
// streams run to their eos line before the handlers are reaped. Safe to call
// more than once and after the run already ended.
func (s *Server) Shutdown() {
	s.lis.Close()
	s.mu.Lock()
	s.stopping = true
	//jitlint:allow maporder closes every non-subscriber conn; close order is unobservable (each peer only sees its own socket)
	for c, role := range s.conns {
		if role != roleSubscribe {
			c.Close()
		}
	}
	// The ingest handler is the channel's only sender; wait for it to leave
	// before closing the channel. Kicked above, it exits as soon as its next
	// socket read or channel send returns.
	for s.ingestActive {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.closeIngest()
	<-s.done
	s.wg.Wait()
}

// closeIngest closes the engine's input channel exactly once. Callers must
// guarantee no ingest session is active (the eos path runs on the session's
// own handler; Shutdown waits the session out first).
func (s *Server) closeIngest() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.eosSeen {
		s.eosSeen = true
		close(s.ch)
	}
}
