package serve

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stream"
)

// ---------------------------------------------------------------------------
// The kill-point harness (the tentpole's headline deliverable): kill the
// server at every checkpoint boundary and at mid-epoch arrival points,
// restart it on the same checkpoint directory, resume ingest past the
// recovered high-water mark, and require the delivered sequence — committed
// prefix plus post-recovery deliveries — to be bit-for-bit identical to an
// uninterrupted run with the same checkpoint cadence, in all four modes.
// ---------------------------------------------------------------------------

// incarnation is everything one server lifetime produced, as seen by a
// subscriber that dedups by delivery sequence number (the client half of the
// exactly-once contract).
type incarnation struct {
	deliveries map[uint64]string // seq -> key
	resumeSeq  uint64            // committed mark from the subscribe greeting
	recovery   *RecoveryInfo
	crashed    bool
	stats      Stats
}

// runIncarnation opens a server, attaches a subscriber, feeds the whole
// workload (the server skips IDs its recovery already covers), and waits the
// run out — crash or clean. Always returns with the server shut down.
func runIncarnation(t *testing.T, cfg Config, tuples []*stream.Tuple) incarnation {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Shutdown()
	inc := incarnation{deliveries: map[uint64]string{}, recovery: s.Recovery()}
	type subRes struct {
		sub subscription
		err error
	}
	subCh := make(chan subRes, 1)
	go func() {
		sub, err := collectQuiet(s.Addr(), 0)
		subCh <- subRes{sub, err}
	}()
	// Feed errors are expected on a crash incarnation (the connection dies
	// mid-stream); the crash/clean verdict comes from Wait.
	feedErr := feedQuiet(s.Addr(), tuples)
	_, werr := s.Wait()
	inc.crashed = errors.Is(werr, ErrCrashed)
	if werr != nil && !inc.crashed {
		t.Fatalf("wait: %v", werr)
	}
	if !inc.crashed && feedErr != nil {
		t.Fatalf("feed failed on a clean run: %v", feedErr)
	}
	r := <-subCh
	if !inc.crashed && (r.err != nil || r.sub.errLine != "") {
		t.Fatalf("subscriber failed on a clean run: %v %q", r.err, r.sub.errLine)
	}
	inc.resumeSeq = r.sub.resumeSeq
	for i, seq := range r.sub.seqs {
		inc.deliveries[seq] = r.sub.keys[i]
	}
	inc.stats = s.Stats()
	return inc
}

// mergeIncarnations folds lifetimes into one client-side delivery map,
// failing on the one thing exactly-once forbids: the same sequence number
// naming two different results.
func mergeIncarnations(t *testing.T, incs ...incarnation) map[uint64]string {
	t.Helper()
	merged := map[uint64]string{}
	for n, inc := range incs {
		for seq, key := range inc.deliveries {
			if prev, ok := merged[seq]; ok && prev != key {
				t.Fatalf("incarnation %d re-delivered seq %d as %q, previously %q", n, seq, key, prev)
			}
			merged[seq] = key
		}
	}
	return merged
}

// sequenceOf flattens a delivery map into the key sequence, requiring the
// sequence numbers to be exactly 1..len with no gaps or strays.
func sequenceOf(t *testing.T, m map[uint64]string) []string {
	t.Helper()
	seqs := make([]uint64, 0, len(m))
	for s := range m {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]string, 0, len(m))
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("delivery sequence has a hole: position %d holds seq %d", i, s)
		}
		out = append(out, m[s])
	}
	return out
}

func assertSameSequence(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: delivered %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: delivery %d is %s, want %s", label, i+1, got[i], want[i])
		}
	}
}

// durableParams is testParams plus the crash cadence: checkpoints every 30
// app-seconds, several boundaries inside the 3-minute horizon.
func durableParams(mode core.Mode) (Config, exp.Params) {
	cfg, base := testParams(mode)
	cfg.Every = 30 * stream.Second
	return cfg, base
}

// TestCrashRecoveryMatrix is the in-process kill-point matrix: for each mode,
// arm a crash at every checkpoint boundary the uninterrupted baseline writes,
// and at early / quarter / half / three-quarter arrival points (mid-epoch:
// between checkpoint cuts). One crash + one recovery per point.
func TestCrashRecoveryMatrix(t *testing.T) {
	for _, nm := range exp.AblationModes() {
		nm := nm
		t.Run(nm.Name, func(t *testing.T) {
			t.Parallel()
			cfg, base := durableParams(nm.Mode)
			tuples := workload(base)

			// Uninterrupted baseline with the identical checkpoint cadence —
			// the reference the crash-equivalence property is stated against.
			bcfg := cfg
			bcfg.Dir = t.TempDir()
			bl := runIncarnation(t, bcfg, tuples)
			if bl.crashed {
				t.Fatalf("baseline crashed")
			}
			want := sequenceOf(t, bl.deliveries)
			if len(want) == 0 {
				t.Fatalf("degenerate baseline: no deliveries")
			}
			midCk := bl.stats.Checkpoints - 1 // minus the end-of-run checkpoint
			if midCk < 2 {
				t.Fatalf("cadence too coarse: %d mid-run checkpoints", midCk)
			}

			type killPoint struct {
				name   string
				arm    func(*Config)
				needCk bool // recovery must find a checkpoint
			}
			var points []killPoint
			for k := 1; k <= midCk; k++ {
				k := k
				points = append(points, killPoint{
					name:   fmt.Sprintf("boundary-%d", k),
					arm:    func(c *Config) { c.crashAfterCheckpoints = k },
					needCk: true,
				})
			}
			n := uint64(len(tuples))
			for _, p := range []struct {
				name string
				at   uint64
			}{
				{"arrival-first", 1}, // before anything is durable
				{"arrival-quarter", n / 4},
				{"arrival-half", n / 2},
				{"arrival-threequarter", 3 * n / 4},
			} {
				p := p
				points = append(points, killPoint{
					name: p.name,
					arm:  func(c *Config) { c.crashAfterArrivals = p.at },
				})
			}

			for _, kp := range points {
				kp := kp
				t.Run(kp.name, func(t *testing.T) {
					dir := t.TempDir()
					armed := cfg
					armed.Dir = dir
					kp.arm(&armed)
					i1 := runIncarnation(t, armed, tuples)
					if !i1.crashed {
						t.Fatalf("armed kill point never fired")
					}
					clean := cfg
					clean.Dir = dir
					i2 := runIncarnation(t, clean, tuples)
					if i2.crashed {
						t.Fatalf("recovery incarnation crashed")
					}
					if kp.needCk {
						if i2.recovery == nil {
							t.Fatalf("recovery found no checkpoint after a boundary kill")
						}
						t.Logf("recovered %s: %d rows, %d keys, hwm=%d, delivered=%d in %v",
							filepath.Base(i2.recovery.Path), i2.recovery.Rows, i2.recovery.Keys,
							i2.recovery.IngestHWM, i2.recovery.Delivered, i2.recovery.Elapsed)
					}
					if i2.recovery != nil {
						// The subscribe greeting carries the delivery floor:
						// the committed mark minus the restored ring tail.
						if i2.resumeSeq+uint64(i2.recovery.Tail) != i2.recovery.Delivered {
							t.Fatalf("subscriber floor %d + tail %d != committed %d",
								i2.resumeSeq, i2.recovery.Tail, i2.recovery.Delivered)
						}
					}
					got := sequenceOf(t, mergeIncarnations(t, i1, i2))
					assertSameSequence(t, kp.name, got, want)
				})
			}
		})
	}
}

// TestCrashChainedAtEveryBoundary crashes ONE lineage at its next checkpoint
// boundary, over and over — crash, recover, crash again one checkpoint later
// — until an incarnation survives to end-of-stream. Every recovery must
// splice seamlessly onto the committed prefix.
func TestCrashChainedAtEveryBoundary(t *testing.T) {
	cfg, base := durableParams(core.JIT())
	tuples := workload(base)

	bcfg := cfg
	bcfg.Dir = t.TempDir()
	bl := runIncarnation(t, bcfg, tuples)
	want := sequenceOf(t, bl.deliveries)

	dir := t.TempDir()
	var incs []incarnation
	for i := 0; ; i++ {
		if i >= 25 {
			t.Fatalf("lineage did not converge in 25 incarnations")
		}
		armed := cfg
		armed.Dir = dir
		armed.crashAfterCheckpoints = 1 // the next boundary this incarnation reaches
		inc := runIncarnation(t, armed, tuples)
		incs = append(incs, inc)
		if !inc.crashed {
			t.Logf("lineage converged after %d crashes", i)
			break
		}
	}
	if len(incs) < 3 {
		t.Fatalf("cadence produced only %d incarnations; chain too short to mean anything", len(incs))
	}
	got := sequenceOf(t, mergeIncarnations(t, incs...))
	assertSameSequence(t, "chained", got, want)
}

// ---------------------------------------------------------------------------
// Subprocess SIGKILL variant: the same property with a real kill(2), not a
// panic — the server process dies mid-write with no deferred functions run.
// ---------------------------------------------------------------------------

const (
	helperDirEnv  = "SERVE_CRASH_HELPER_DIR"
	helperAddrEnv = "SERVE_CRASH_HELPER_ADDRFILE"
)

// TestServeCrashHelper is not a test: it is the server subprocess, entered
// only when the parent re-execs the test binary with the env gate set.
func TestServeCrashHelper(t *testing.T) {
	dir := os.Getenv(helperDirEnv)
	if dir == "" {
		t.Skip("helper process entry point; enabled by env only")
	}
	cfg, _ := durableParams(core.JIT())
	cfg.Dir = dir
	s, err := Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper open: %v\n", err)
		os.Exit(2)
	}
	// Publish the bound address atomically; the parent polls for it.
	addrFile := os.Getenv(helperAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(s.Addr()), 0o644); err != nil {
		os.Exit(2)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		os.Exit(2)
	}
	select {} // hold the server until the parent kills the process
}

// spawnHelper starts the server subprocess and waits for its listen address.
func spawnHelper(t *testing.T, dir, addrFile string) *exec.Cmd {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run=^TestServeCrashHelper$")
	cmd.Env = append(os.Environ(), helperDirEnv+"="+dir, helperAddrEnv+"="+addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn helper: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && strings.Contains(string(b), ":") {
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("helper never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashRecoverySIGKILL kills the server process with SIGKILL after its
// first durable checkpoint, restarts it on the same directory, resumes, and
// requires the assembled delivery sequence to equal the uninterrupted run's.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness skipped in -short")
	}
	cfg, base := durableParams(core.JIT())
	tuples := workload(base)

	// In-process baseline with the identical cadence.
	bcfg := cfg
	bcfg.Dir = t.TempDir()
	bl := runIncarnation(t, bcfg, tuples)
	want := sequenceOf(t, bl.deliveries)

	dir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")

	// Incarnation 1: feed most of the stream, wait for a durable checkpoint
	// to exist, then SIGKILL mid-flight.
	cmd := spawnHelper(t, dir, addrFile)
	addr, _ := os.ReadFile(addrFile)
	sub1Ch := make(chan subscription, 1)
	go func() {
		sub, err := collectQuiet(string(addr), 0)
		if err != nil && sub.errLine == "" {
			sub.errLine = err.Error() // a severed socket is expected here
		}
		sub1Ch <- sub
	}()
	c1, err := netDial(string(addr))
	if err != nil {
		t.Fatalf("dial helper: %v", err)
	}
	c1.mustSend(Frame{Cmd: "ingest"})
	if g, ok := c1.tryRecv(); !ok || g["ok"] != true {
		t.Fatalf("helper ingest greeting: %v", g)
	}
	for _, tp := range tuples[:3*len(tuples)/4] {
		c1.mustSend(tupleFrame(tp))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m, _ := filepath.Glob(filepath.Join(dir, "ck-*.jck")); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint appeared before the kill window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill() // SIGKILL: no shutdown path runs
	cmd.Wait()
	c1.close()
	s1 := <-sub1Ch

	// Incarnation 2: restart on the same directory, re-send everything
	// (the server skips what its checkpoint covers), read to eos.
	cmd = spawnHelper(t, dir, addrFile)
	defer func() { cmd.Process.Kill(); cmd.Wait() }()
	addr2, _ := os.ReadFile(addrFile)
	sub2Ch := make(chan subscription, 1)
	go func() {
		sub, err := collectQuiet(string(addr2), 0)
		if err != nil {
			sub.errLine = err.Error()
		}
		sub2Ch <- sub
	}()
	if err := feedQuiet(string(addr2), tuples); err != nil {
		t.Fatalf("resume feed: %v", err)
	}
	s2 := <-sub2Ch
	if s2.errLine != "" {
		t.Fatalf("resume subscriber: %s", s2.errLine)
	}

	toInc := func(s subscription) incarnation {
		inc := incarnation{deliveries: map[uint64]string{}, resumeSeq: s.resumeSeq}
		for i, seq := range s.seqs {
			inc.deliveries[seq] = s.keys[i]
		}
		return inc
	}
	got := sequenceOf(t, mergeIncarnations(t, toInc(s1), toInc(s2)))
	assertSameSequence(t, "sigkill", got, want)
	// The hole-free merged sequence above is the restored-tail property at
	// work: deliveries committed by the checkpoint but never read before the
	// SIGKILL came back from the restarted server's re-seeded ring.
	if len(s2.seqs) == 0 {
		t.Fatalf("recovered incarnation delivered nothing")
	}
}
