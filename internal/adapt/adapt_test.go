package adapt_test

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// allModes is the four-mode ablation the migration-equivalence contract
// covers: the handoff must be lossless under every feedback configuration.
var allModes = []struct {
	name string
	mode core.Mode
}{
	{"jit", core.JIT()},
	{"ref", core.REF()},
	{"doe", core.DOE()},
	{"bloom", core.BloomJIT()},
}

// runDrained executes arrivals through a fresh engine with the end-of-stream
// drain (and optional re-optimizer) and returns the result.
func runDrained(b *plan.Built, arrivals []*stream.Tuple, reopt engine.Reoptimizer) engine.Result {
	eng := engine.NewWithOptions(b, engine.Options{Drain: true, Reopt: reopt})
	return eng.Run(arrivals)
}

// sortedKeys returns the sink's delivered result keys as a sorted multiset.
func sortedKeys(b *plan.Built) []string {
	keys := b.Sink.ResultKeys()
	sort.Strings(keys)
	return keys
}

func sameMultiset(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result multiset differs at %d: %s vs %s", label, i, got[i], want[i])
		}
	}
}

// phaseShift builds the adaptive-policy workload over the 4-source chain
// query (A.x=B.x ∧ B.x=C.x ∧ C.x=D.x): the first half is dense on A/B and
// sparse on C/D (the bushy plan's (C D) sub-join stays tiny while the
// left-deep pipeline would drag every A⋈B pair across the whole C state),
// the second half flips — C/D collapse onto four values while A/B move to a
// disjoint range, so the bushy shape manufactures floods of (C D) pairs
// that can never meet an (A B) partner, exactly the wasted work a left-deep
// shape avoids. Deterministic for a fixed seed.
func phaseShift(seed int64) []*stream.Tuple {
	const (
		horizon = 300 * stream.Second
		phase   = 150 * stream.Second
		gap     = 500 * stream.Millisecond // λ = 2 tuples/sec/source
	)
	rng := rand.New(rand.NewSource(seed))
	var traces [][]*stream.Tuple
	for src := 0; src < 4; src++ {
		var tr []*stream.Tuple
		for ts := stream.Time(int64(src)*29 + 1); ts < horizon; ts += gap {
			var v int64
			switch {
			case ts < phase && src < 2:
				v = rng.Int63n(4) + 1 // dense A/B
			case ts < phase:
				v = rng.Int63n(1000) + 1 // sparse C/D
			case src < 2:
				v = rng.Int63n(50) + 5 // A/B move off the C/D range
			default:
				v = rng.Int63n(4) + 1 // dense C/D
			}
			tr = append(tr, &stream.Tuple{
				Source: stream.SourceID(src), TS: ts, Vals: []stream.Value{stream.Value(v)},
			})
		}
		traces = append(traces, tr)
	}
	return source.Merge(traces...)
}

func chainPlan(shape *plan.Node, mode core.Mode) *plan.Built {
	cat, conj := predicate.Chain(4)
	return plan.BuildTree(cat, conj, shape, plan.Options{
		Window: 50 * stream.Second, Mode: mode, KeepResults: true, NoStateIndex: true,
	})
}

// TestAdaptiveEquivalence is the acceptance run: on the phase-shift
// workload, the epoch policy must fire a bushy→left-deep migration (logged),
// finish with strictly fewer cost units than the static bushy plan —
// including the scoring and replay overhead, which the counters charge to
// the adaptive run — and deliver exactly the static run's final multiset.
func TestAdaptiveEquivalence(t *testing.T) {
	for _, m := range allModes[:2] { // jit and ref: the paper's comparison pair
		t.Run(m.name, func(t *testing.T) {
			arrivals := phaseShift(1)

			static := chainPlan(plan.Bushy(4), m.mode)
			staticRes := runDrained(static, arrivals, nil)

			var log bytes.Buffer
			adaptive := chainPlan(plan.Bushy(4), m.mode)
			ctrl := adapt.New(adapt.Config{
				Epoch:    50 * stream.Second,
				Patience: 1, // the margin is the hysteresis; react within one epoch
				Log:      &log,
			})
			adaptiveRes := runDrained(adaptive, arrivals, ctrl)

			if adaptiveRes.Counters.Migrations < 1 {
				t.Fatalf("no migration fired; log:\n%s", log.String())
			}
			if !strings.Contains(log.String(), "migrate (0 1) (2 3)) -> ") &&
				!strings.Contains(log.String(), "migrate") {
				t.Fatalf("no migration decision logged:\n%s", log.String())
			}
			if adaptiveRes.CostUnits >= staticRes.CostUnits {
				t.Errorf("adaptive cost %d not below static bushy %d (adapt overhead %d)",
					adaptiveRes.CostUnits, staticRes.CostUnits, adaptiveRes.Counters.AdaptUnits)
			}
			sameMultiset(t, m.name, sortedKeys(adaptive), sortedKeys(static))
			t.Logf("static=%d adaptive=%d (%.2fx) migrations=%d dups=%d adaptUnits=%d",
				staticRes.CostUnits, adaptiveRes.CostUnits,
				float64(staticRes.CostUnits)/float64(adaptiveRes.CostUnits),
				adaptiveRes.Counters.Migrations, adaptiveRes.Counters.MigrationDups,
				adaptiveRes.Counters.AdaptUnits)
		})
	}
}

// TestMigrationEquivalence forces a bushy→left-deep migration mid-window on
// the dense 4-way clique workload and checks the handoff is lossless and
// duplicate-free: the migrated run's final multiset must equal the pure
// left-deep run's (which, drained, also equals the pure bushy run's —
// finals are shape-independent under exact delivery). The full suite sweeps
// all four modes across three seeds on both the indexed and the scan-only
// state layout (the cut must rebuild hash indexes and replay scan cursors
// alike); -short, mirroring jitreport's preset, keeps one seed, the JIT/REF
// pair, and the default indexed layout.
func TestMigrationEquivalence(t *testing.T) {
	cat, conj := predicate.Clique(4)
	build := func(shape *plan.Node, mode core.Mode, noIdx bool) *plan.Built {
		return plan.BuildTree(cat, conj, shape, plan.Options{
			Window: 90 * stream.Second, Mode: mode, KeepResults: true, NoStateIndex: noIdx,
		})
	}
	seeds, modes := int64(3), allModes
	layouts := []struct {
		name  string
		noIdx bool
	}{{"indexed", false}, {"scan", true}}
	if testing.Short() {
		seeds, modes, layouts = 1, allModes[:2], layouts[:1]
	}
	for seed := int64(1); seed <= seeds; seed++ {
		cfg := source.UniformConfig(4, 3.0, 30, 225*stream.Second+1, seed)
		arrivals := source.Generate(cat, cfg)
		for _, lay := range layouts {
			for _, m := range modes {
				pure := build(plan.LeftDeep(4), m.mode, lay.noIdx)
				pureRes := runDrained(pure, arrivals, nil)

				migrated := build(plan.Bushy(4), m.mode, lay.noIdx)
				ctrl := adapt.New(adapt.Config{
					ForceAt: 112 * stream.Second, // mid-window: the cut splits live state
					ForceTo: plan.LeftDeep(4),
				})
				migRes := runDrained(migrated, arrivals, ctrl)

				if migRes.Counters.Migrations != 1 {
					t.Fatalf("seed %d %s/%s: %d migrations, want 1", seed, m.name, lay.name, migRes.Counters.Migrations)
				}
				if pureRes.Results == 0 {
					t.Fatalf("seed %d %s/%s: workload delivered no finals — test has no teeth", seed, m.name, lay.name)
				}
				sameMultiset(t, m.name+"/"+lay.name, sortedKeys(migrated), sortedKeys(pure))
			}
		}
	}
}

// TestNoMigrationIsTransparent checks that an attached controller that
// never migrates leaves the run untouched: same deliveries, same order,
// same cost units as a plain drained run.
func TestNoMigrationIsTransparent(t *testing.T) {
	arrivals := phaseShift(2)
	plain := chainPlan(plan.Bushy(4), core.JIT())
	plainRes := runDrained(plain, arrivals, nil)

	tapped := chainPlan(plan.Bushy(4), core.JIT())
	ctrl := adapt.New(adapt.Config{}) // Epoch 0: policy disabled, no force
	tappedRes := runDrained(tapped, arrivals, ctrl)

	if tappedRes.Counters.Migrations != 0 {
		t.Fatalf("unexpected migration")
	}
	if plainRes.CostUnits != tappedRes.CostUnits || plainRes.Results != tappedRes.Results {
		t.Fatalf("idle controller changed the run: cost %d vs %d, results %d vs %d",
			plainRes.CostUnits, tappedRes.CostUnits, plainRes.Results, tappedRes.Results)
	}
	got, want := tapped.Sink.ResultKeys(), plain.Sink.ResultKeys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order differs at %d", i)
		}
	}
}
