// Package adapt implements mid-run plan re-optimization (DESIGN.md §7): the
// streaming analogue of Eddies' per-tuple routing and MJoin's refusal to
// commit to one static join order, built on the paper's own premise that
// just-in-time feedback reveals where join work is being wasted.
//
// A Controller watches the plan-wide metrics.Counters and the per-operator
// feedback counters (core.JoinOp.Stats: MNSDetected, Suspended,
// SuppressedPairs) over fixed decision epochs. At each epoch boundary it
// scores the current shape against candidate plan.Node shapes by shadow
// replay — the epoch's arrivals run through throwaway plans of each shape,
// measured in the same deterministic cost units as the live run, and charged
// to Counters.AdaptUnits so adaptive runs carry their decision overhead
// honestly. When a candidate beats the current shape by the hysteresis
// margin for Patience consecutive epochs, the controller migrates.
//
// # The snapshot cut and the handoff
//
// A migration happens at a quiescent cut between arrivals, after the engine
// has drained the outgoing plan's timer deadlines to the cut time. The §2
// sequence discipline gives the cut its snapshot: every in-window base tuple
// sits in exactly one place — its source's feed side, active in the state or
// parked in a blacklist — so plan.Built.SnapshotInWindow (backed by the
// core.JoinOp.SnapshotBase / state.State.SnapshotLive hooks) reconstructs
// the in-window arrival history in global arrival order. Replaying it into a
// freshly built target plan yields exactly the state that plan would hold
// had it started one window before the cut; intermediate states, blacklists,
// MNS buffers and mark tables are re-derived rather than transplanted,
// because a different shape stores different intermediates. The same
// snapshot+replay pair is the checkpoint/restore primitive the ROADMAP asks
// for: a checkpoint is (cut time, snapshot); restore is Rebuild+replay.
//
// # Why no result is lost or duplicated
//
// The run keeps a single sink across plan instances, fronted by a dedup tap
// keyed on the canonical result identity (stream.Composite.Key). Exact-once
// delivery across the handoff follows from exact-delivery mode (required:
// the engine rejects Reopt without Drain):
//
//   - nothing is lost: draining the outgoing plan to the cut delivers every
//     result whose window closes by the cut; any result still undelivered
//     has all constituents inside the snapshot window, so the successor plan
//     regenerates it — live during replay (delivered through the tap) or
//     suspended, to be delivered by a later resume, sweep or the end-of-run
//     drain;
//   - nothing is duplicated: a result the outgoing plan already delivered
//     and the successor regenerates is absorbed by the tap
//     (Counters.MigrationDups counts these).
//
// Determinism is preserved: the cut point, the snapshot order (tuple IDs are
// the global arrival sequence), the replay and the scoring are all pure
// functions of the seeded workload, so two runs of the same configuration
// migrate at the same instant and deliver byte-identical sink orders.
package adapt

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/plan"
	"repro/internal/stream"
)

// Config tunes the re-optimization policy.
type Config struct {
	// Epoch is the decision-epoch length in application time. Zero disables
	// the epoch policy (only ForceAt/ForceTo migrations can then fire).
	Epoch stream.Time
	// Margin is the hysteresis factor: a candidate wins an epoch only when
	// currentCost > candidateCost × Margin. Zero means 1.25.
	Margin float64
	// Patience is the number of consecutive winning epochs the same
	// candidate needs before the migration fires. Zero means 2.
	Patience int
	// Candidates are the shapes considered. Nil means the bushy and
	// left-deep shapes of Table II over the plan's source count.
	Candidates []*plan.Node
	// MinEpochCost skips scoring for near-idle epochs (observed cost-unit
	// delta below the threshold). Zero means 1024.
	MinEpochCost uint64
	// Rise is the regime-shift trigger: shadow scoring runs only in epochs
	// where a watched signal layer — the observed cost delta, or the
	// per-operator feedback-pressure delta (MNSDetected + Suspended +
	// SuppressedPairs over core.JoinOp.Stats) — exceeds Rise × the previous
	// epoch's, or while a hysteresis streak is pending. Steady-state epochs
	// therefore cost no scoring overhead at all — the shape question is
	// reopened when the observed feedback says the workload changed. Zero
	// means 1.5; values at or below 1 effectively score every non-idle
	// epoch.
	Rise float64
	// MaxMigrations caps how many migrations a run may perform; zero means
	// unlimited.
	MaxMigrations int
	// Log, when non-nil, receives one line per epoch decision and per
	// migration.
	Log io.Writer
	// ForceAt / ForceTo bypass the policy: migrate unconditionally to
	// ForceTo at the first arrival with TS >= ForceAt. The migration-
	// equivalence tests use this to exercise the handoff in modes whose
	// feedback machinery (and thus the policy's signal) is disabled.
	ForceAt stream.Time
	ForceTo *plan.Node
}

func (c Config) margin() float64 {
	if c.Margin <= 0 {
		return 1.25
	}
	return c.Margin
}

func (c Config) patience() int {
	if c.Patience <= 0 {
		return 2
	}
	return c.Patience
}

func (c Config) minEpochCost() uint64 {
	if c.MinEpochCost == 0 {
		return 1024
	}
	return c.MinEpochCost
}

func (c Config) rise() float64 {
	if c.Rise <= 0 {
		return 1.5
	}
	return c.Rise
}

// candidatesFor resolves the candidate set for an n-source plan.
func (c Config) candidatesFor(n int) []*plan.Node {
	if c.Candidates != nil {
		return c.Candidates
	}
	return []*plan.Node{plan.Bushy(n), plan.LeftDeep(n)}
}

// Controller is the engine-facing re-optimizer (engine.Reoptimizer). One
// controller drives one run; it is not safe for concurrent use — in sharded
// execution each replica has its own, synchronized through a Coordinator.
type Controller struct {
	cfg   Config
	coord *Coordinator

	b     *plan.Built
	shape *plan.Node
	cands []*plan.Node
	sink  *operator.Sink
	tap   *tap

	started   bool
	nextEpoch stream.Time
	epochBuf  []*stream.Tuple
	lastCost  uint64
	lastStats []metrics.OpStats
	// prevObserved / prevPressure are the previous epoch's observed cost
	// delta and per-operator feedback-pressure delta (summed MNSDetected +
	// Suspended + SuppressedPairs), the regime-shift baselines; noBaseline
	// marks the first epoch, which only establishes them.
	prevObserved uint64
	prevPressure uint64
	noBaseline   bool
	wins         int
	winner       string
	pending      *plan.Node
	migrations   int
	forced       bool
}

// New creates a self-deciding controller (single-engine runs).
func New(cfg Config) *Controller { return &Controller{cfg: cfg} }

// NewCoordinated creates a controller whose epoch decisions are made
// fleet-wide by the coordinator; local epoch boundaries are ignored and the
// shard runner's barrier markers drive AtBarrier instead.
func NewCoordinated(cfg Config, coord *Coordinator) *Controller {
	return &Controller{cfg: cfg, coord: coord}
}

// Attach implements engine.Reoptimizer: it binds the controller to the
// run's initial plan and splices the dedup tap between the plan root and
// the sink, so every delivery of the run is recorded from the first arrival
// on. The tap's seen-set grows with the run's final-result count — the
// price of exactly-once delivery across handoffs.
func (c *Controller) Attach(b *plan.Built) {
	c.b = b
	c.shape = b.Shape()
	c.sink = b.Sink
	c.cands = c.cfg.candidatesFor(b.Catalog.NumSources())
	c.tap = &tap{sink: b.Sink, seen: make(map[string]bool), ctr: b.Counters}
	b.RootJoin().SetConsumer(c.tap, operator.Left)
	c.lastCost = b.Counters.CostUnits()
	c.noBaseline = true
	c.snapStats()
}

// Decide implements engine.Reoptimizer: it accumulates the epoch's arrival
// buffer, runs the epoch evaluation at boundaries (uncoordinated mode), and
// reports whether a migration is due at this arrival's timestamp.
func (c *Controller) Decide(t *stream.Tuple, b *plan.Built) bool {
	if !c.started {
		c.started = true
		c.nextEpoch = t.TS + c.cfg.Epoch
	}
	if c.cfg.ForceTo != nil && !c.forced && t.TS >= c.cfg.ForceAt {
		c.forced = true
		if c.cfg.ForceTo.Canonical() != c.shape.Canonical() {
			c.pending = c.cfg.ForceTo
		}
	}
	if c.pending == nil && c.coord == nil && c.cfg.Epoch > 0 && t.TS >= c.nextEpoch {
		c.evaluateEpoch(t.TS)
		for c.nextEpoch <= t.TS {
			c.nextEpoch += c.cfg.Epoch
		}
	}
	// The epoch buffer feeds shadow scoring and is trimmed at each epoch
	// close (resetEpoch); with the epoch policy disabled (Epoch 0,
	// ForceTo-only mode) nothing would ever trim it, so don't retain at all.
	if c.cfg.Epoch > 0 {
		c.epochBuf = append(c.epochBuf, t)
	}
	return c.pending != nil
}

// AtBarrier is called by the shard runner's replica source when it reaches
// an epoch-barrier marker: the replica applies the same steady-state gate
// as the single-engine path (first epoch establishes the baseline; scoring
// runs only on a Rise-factor cost jump, or while the fleet's hysteresis
// streak is open), exchanges its observation — with shadow scores only when
// the gate opened — through the coordinator (blocking until every live
// replica has arrived), and adopts the fleet-wide decision, to be applied
// at its next arrival. The coordinator only decides on rounds where every
// replica scored, so partially-gated rounds cost little and skew nothing.
// No-op on uncoordinated controllers.
func (c *Controller) AtBarrier() {
	if c.coord == nil || c.b == nil {
		return
	}
	observed := c.b.Counters.CostUnits() - c.lastCost
	c.b.Trace.Epoch(c.b.Trace.Now(), observed)
	var scores map[string]uint64
	// The idle gate mirrors the single-engine path: a near-idle replica
	// neither scores nor lets the fleet decide this round (the coordinator
	// requires every replica's scores, so a chronically idle shard —
	// extreme key skew — conservatively holds migrations; its signal would
	// be meaningless anyway).
	if observed >= c.cfg.minEpochCost() && (c.reopened(observed) || c.coord.StreakOpen()) {
		scores = c.scoreShapes()
	} else if observed < c.cfg.minEpochCost() {
		c.reopened(observed) // advance the baselines regardless
	}
	if target := c.coord.Exchange(observed, scores); target != nil &&
		target.Canonical() != c.shape.Canonical() {
		c.pending = target
	}
	c.resetEpoch()
}

// Leave deregisters the replica from the coordinator's barriers at
// end-of-stream. No-op on uncoordinated controllers.
func (c *Controller) Leave() {
	if c.coord != nil {
		c.coord.Leave()
	}
}

// Migrate implements engine.Reoptimizer: snapshot the outgoing plan at the
// cut, rebuild under the target shape, replay the snapshot through the
// dedup tap, and hand the merged measurement substrate to the successor.
func (c *Controller) Migrate(cut stream.Time, b *plan.Built) *plan.Built {
	target := c.pending
	c.pending = nil
	if target == nil {
		return nil
	}
	if c.cfg.MaxMigrations > 0 && c.migrations >= c.cfg.MaxMigrations {
		return nil
	}
	note := c.shape.Canonical() + " -> " + target.Canonical()
	b.Trace.MigrationStart(cut, note)
	snap := b.SnapshotInWindow(cut)
	nb := b.Rebuild(target)
	for _, j := range nb.Joins {
		j.SetExact(true)
	}
	// The run's one sink spans the handoff; the successor's own sink is
	// discarded before anything reaches it.
	nb.Sink = c.sink
	nb.RootJoin().SetConsumer(c.tap, operator.Left)
	// The successor inherits the run's tracer before the replay, so replay
	// probes and suspensions are visible in the trace, attributed to the new
	// plan's operators (DESIGN.md §9).
	nb.SetTrace(b.Trace)
	b.Trace.MigrationCut(cut, len(snap), note)
	// Both plans are resident while the snapshot replays: charge the
	// outgoing plan's live bytes to the successor's account for the span of
	// the replay, and absorb the old high-water mark.
	oldLive := b.Account.Live()
	nb.Account.Alloc(oldLive)
	nb.ReplayInWindow(snap)
	nb.Account.Free(oldLive)
	nb.Account.AbsorbPeak(b.Account)
	nb.Counters.Add(b.Counters)
	nb.Counters.Migrations++
	c.sink.SetCounters(nb.Counters)
	c.tap.ctr = nb.Counters
	nb.Trace.MigrationDone(cut, nb.Counters.MigrationDups, note)
	c.logf("adapt: t=%v migrate %s -> %s (replayed %d in-window arrivals, %d dups absorbed so far)",
		cut, c.shape.Canonical(), target.Canonical(), len(snap), nb.Counters.MigrationDups)
	c.shape = target
	c.b = nb
	c.migrations++
	c.lastCost = nb.Counters.CostUnits()
	c.noBaseline = true // the successor re-baselines its steady state
	c.snapStats()
	return nb
}

// evaluateEpoch closes one decision epoch (uncoordinated mode): read the
// observed counter deltas, decide whether the feedback justifies reopening
// the shape question, shadow-score the shapes, apply margin+patience.
func (c *Controller) evaluateEpoch(now stream.Time) {
	observed := c.b.Counters.CostUnits() - c.lastCost
	c.b.Trace.Epoch(now, observed)
	mns, susp, suppr := c.statDeltas()
	prev := c.prevObserved
	if observed < c.cfg.minEpochCost() {
		c.prevObserved, c.prevPressure, c.noBaseline = observed, mns+susp+suppr, false
		c.logf("adapt: epoch t=%v idle (cost=%d mns=%d susp=%d suppressed=%d) — skip scoring",
			now, observed, mns, susp, suppr)
		c.wins, c.winner = 0, ""
		c.resetEpoch()
		return
	}
	// Regime-shift gate: in steady state the shape question stays closed and
	// epochs cost nothing. Scoring reopens when either watched signal layer
	// jumps (Rise ×) against the previous epoch — the observed cost, or the
	// per-operator feedback pressure — and stays open while a hysteresis
	// streak is pending. The first epoch only establishes the baselines.
	if !c.reopened(observed) && c.wins == 0 {
		c.logf("adapt: epoch t=%v steady (cost=%d prev=%d mns=%d susp=%d suppressed=%d) — keep %s",
			now, observed, prev, mns, susp, suppr, c.shape.Canonical())
		c.resetEpoch()
		return
	}
	scores := c.scoreShapes()
	curr := scores[c.shape.Canonical()]
	var best *plan.Node
	var bestCost uint64
	for _, cand := range c.cands {
		k := cand.Canonical()
		if k == c.shape.Canonical() {
			continue
		}
		if s, ok := scores[k]; ok && (best == nil || s < bestCost) {
			best, bestCost = cand, s
		}
	}
	if best != nil && float64(curr) > float64(bestCost)*c.cfg.margin() {
		if c.winner == best.Canonical() {
			c.wins++
		} else {
			c.winner, c.wins = best.Canonical(), 1
		}
	} else {
		c.wins, c.winner = 0, ""
	}
	c.logf("adapt: epoch t=%v cost=%d mns=%d susp=%d suppressed=%d scores=%s wins=%d/%d",
		now, observed, mns, susp, suppr, renderScores(scores), c.wins, c.cfg.patience())
	if c.wins >= c.cfg.patience() &&
		(c.cfg.MaxMigrations == 0 || c.migrations < c.cfg.MaxMigrations) {
		c.pending = best
		c.wins, c.winner = 0, ""
	}
	c.resetEpoch()
}

// scoreShapes shadow-replays the epoch's arrivals through a throwaway plan
// of every distinct shape (current first, then candidates) and returns the
// cost units each accrued, charging the total to Counters.AdaptUnits.
//
// The shadows run in REF mode regardless of the live mode: a shape's score
// is its intrinsic join work on the slice — which intermediates it
// manufactures and drags through probes. Scoring with the feedback
// machinery on would be circular (a shadow plan starts empty, so its very
// first inputs meet empty states and Ø-suspend the whole pipeline,
// flattening every shape to noise), whereas the REF score is exactly the
// production the live mode's suppression then fights; minimizing it helps
// REF and JIT alike.
func (c *Controller) scoreShapes() map[string]uint64 {
	opts := c.b.Opt()
	opts.KeepResults = false
	opts.Mode = core.REF()
	out := make(map[string]uint64, 1+len(c.cands))
	for _, sh := range append([]*plan.Node{c.shape}, c.cands...) {
		k := sh.Canonical()
		if _, done := out[k]; done {
			continue
		}
		sb := plan.BuildTree(c.b.Catalog, c.b.Preds(), sh, opts)
		n := sb.Catalog.NumSources()
		for _, t := range c.epochBuf {
			sb.Sweep(t.TS)
			f := sb.Feeds[t.Source]
			f.Op.Consume(stream.NewComposite(n, t), f.Port)
		}
		out[k] = sb.Counters.CostUnits()
		c.b.Counters.AdaptUnits += sb.Counters.CostUnits()
	}
	return out
}

// reopened applies the regime-shift gate for one epoch close: it compares
// the epoch's two watched signal layers — the observed cost delta and the
// per-operator feedback-pressure delta (summed MNSDetected + Suspended +
// SuppressedPairs over core.JoinOp.Stats) — against the previous epoch's
// baselines, updates the baselines, and reports whether either jumped by
// the Rise factor. The first epoch only establishes the baselines. At most
// one call per epoch close (baselines advance on every call).
func (c *Controller) reopened(observed uint64) bool {
	mns, susp, suppr := c.statDeltas()
	pressure := mns + susp + suppr
	prevCost, prevPressure, first := c.prevObserved, c.prevPressure, c.noBaseline
	c.prevObserved, c.prevPressure, c.noBaseline = observed, pressure, false
	if first {
		return false
	}
	rise := c.cfg.rise()
	return float64(observed) > rise*float64(prevCost) ||
		(pressure > 0 && float64(pressure) > rise*float64(prevPressure))
}

// resetEpoch starts the next observation epoch from the current totals.
func (c *Controller) resetEpoch() {
	c.epochBuf = c.epochBuf[:0]
	c.lastCost = c.b.Counters.CostUnits()
	c.snapStats()
}

// snapStats snapshots the per-operator feedback counters of the current
// plan, the baseline the next epoch's deltas are computed against.
func (c *Controller) snapStats() {
	c.lastStats = c.lastStats[:0]
	for _, j := range c.b.Joins {
		c.lastStats = append(c.lastStats, j.Stats())
	}
}

// statDeltas sums the per-operator feedback deltas since the last epoch.
func (c *Controller) statDeltas() (mns, susp, suppr uint64) {
	for i, j := range c.b.Joins {
		var prev metrics.OpStats
		if i < len(c.lastStats) {
			prev = c.lastStats[i]
		}
		d := j.Stats().Delta(prev)
		mns += d.MNSDetected
		susp += d.Suspended
		suppr += d.SuppressedPairs
	}
	return
}

func (c *Controller) logf(format string, args ...interface{}) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}

// renderScores formats a score map with sorted keys, for deterministic logs.
func renderScores(scores map[string]uint64) string {
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", k, scores[k])
	}
	return s + "}"
}

// tap is the migration dedup filter: the single delivery gate the run's
// plans share. A composite whose canonical key was already delivered is
// absorbed (a replay regeneration); everything else passes to the sink.
type tap struct {
	sink operator.Consumer
	seen map[string]bool
	ctr  *metrics.Counters
}

// Consume implements operator.Consumer.
func (t *tap) Consume(c *stream.Composite, p operator.Port) {
	k := c.Key()
	if t.seen[k] {
		t.ctr.MigrationDups++
		return
	}
	t.seen[k] = true
	t.sink.Consume(c, p)
}
