package adapt

import (
	"sync"

	"repro/internal/plan"
)

// Coordinator makes the epoch decision fleet-wide for sharded execution
// (DESIGN.md §7): the shard runner broadcasts an epoch-barrier marker into
// every replica's channel when the global stream crosses an epoch boundary,
// each replica scores its local epoch slice at the barrier, and the
// coordinator sums the scores and applies one margin+patience decision that
// every replica then adopts — the replicas migrate in lockstep to the same
// shape, each performing its own snapshot+replay handoff at its next local
// arrival.
//
// The exchange is a barrier: Exchange blocks until every live replica has
// reported its round, so the decision is a pure function of the summed
// scores — goroutine scheduling cannot affect it, which keeps sharded
// adaptive runs as deterministic as non-adaptive ones. Replicas whose
// substream ends call Leave, shrinking the barrier; a replica can never
// block the fleet while holding undrained input, because barrier markers
// are enqueued in every channel before any post-boundary tuple.
type Coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config
	// byCanon resolves a decided canonical shape back to its Node; shapes
	// are immutable, so sharing them across replicas is safe.
	byCanon map[string]*plan.Node
	// committed is the canonical shape the fleet currently runs (replicas
	// apply decisions lazily, at their next arrival, but decisions are
	// always made relative to the last committed shape).
	committed string

	n, arrived  int
	scored      int
	round       int
	sumObserved uint64
	sums        map[string]uint64
	wins        int
	winner      string
	decision    *plan.Node
	migrations  int
}

// NewCoordinator creates a coordinator for n replicas of a plan whose
// current shape is base. Candidates default as in Config.
func NewCoordinator(n int, base *plan.Node, numSources int, cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:       cfg,
		n:         n,
		byCanon:   make(map[string]*plan.Node),
		committed: base.Canonical(),
		sums:      make(map[string]uint64),
	}
	c.cond = sync.NewCond(&c.mu)
	c.byCanon[c.committed] = base
	for _, cand := range cfg.candidatesFor(numSources) {
		c.byCanon[cand.Canonical()] = cand
	}
	return c
}

// StreakOpen reports whether a hysteresis streak is pending fleet-wide;
// replicas keep scoring while it is, so streak rounds are never partial.
func (c *Coordinator) StreakOpen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wins > 0
}

// Exchange reports one replica's observed epoch cost — with shadow scores
// only when the replica's steady-state gate opened (nil otherwise) — and
// blocks until the round's fleet-wide decision is available. It returns
// the migration target (nil to stay). The last replica to arrive computes
// the decision.
func (c *Coordinator) Exchange(observed uint64, scores map[string]uint64) *plan.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	round := c.round
	c.sumObserved += observed
	if scores != nil {
		c.scored++
		for k, v := range scores {
			c.sums[k] += v
		}
	}
	c.arrived++
	if c.arrived >= c.n {
		c.finalizeLocked()
	} else {
		for round == c.round {
			c.cond.Wait()
		}
	}
	return c.decision
}

// Leave removes a finished replica from the barrier. If it was the last
// straggler of an open round, the round finalizes without it.
func (c *Coordinator) Leave() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n > 0 && c.arrived >= c.n {
		c.finalizeLocked()
	}
}

// finalizeLocked computes the round's decision from the summed scores and
// opens the next round. A decision requires every arrived replica to have
// scored: the sums are then complete, so partially-gated rounds (a regime
// shift some replicas' slices saw one epoch before others') carry no
// weight and do not perturb the streak. Caller holds mu.
func (c *Coordinator) finalizeLocked() {
	c.decision = nil
	allScored := c.scored == c.arrived && c.scored > 0
	curr, haveCurr := c.sums[c.committed]
	if allScored && c.sumObserved >= c.cfg.minEpochCost() && haveCurr {
		var best string
		var bestCost uint64
		for k, v := range c.sums {
			if k == c.committed || c.byCanon[k] == nil {
				continue
			}
			if best == "" || v < bestCost || (v == bestCost && k < best) {
				best, bestCost = k, v
			}
		}
		if best != "" && float64(curr) > float64(bestCost)*c.cfg.margin() {
			if c.winner == best {
				c.wins++
			} else {
				c.winner, c.wins = best, 1
			}
		} else {
			c.wins, c.winner = 0, ""
		}
		if c.wins >= c.cfg.patience() &&
			(c.cfg.MaxMigrations == 0 || c.migrations < c.cfg.MaxMigrations) {
			c.decision = c.byCanon[best]
			c.committed = best
			c.migrations++
			c.wins, c.winner = 0, ""
		}
	} else if allScored {
		// A complete round whose gates failed closes the streak; a partial
		// round carries no information either way.
		c.wins, c.winner = 0, ""
	}
	c.sumObserved = 0
	c.sums = make(map[string]uint64)
	c.arrived = 0
	c.scored = 0
	c.round++
	c.cond.Broadcast()
}
