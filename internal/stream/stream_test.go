package stream

import (
	"testing"
	"testing/quick"
)

func TestSourceSet(t *testing.T) {
	var s SourceSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("zero set not empty")
	}
	s = s.Add(0).Add(3).Add(3)
	if s.Count() != 2 || !s.Has(0) || !s.Has(3) || s.Has(1) {
		t.Fatalf("bad membership: %v", s)
	}
	o := SourceSet(0).Add(1).Add(3)
	if !s.Intersects(o) || s.Contains(o) {
		t.Fatalf("bad set relations")
	}
	u := s.Union(o)
	if u.Count() != 3 || !u.Contains(s) || !u.Contains(o) {
		t.Fatalf("bad union %v", u)
	}
	ids := u.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 3 {
		t.Fatalf("bad IDs %v", ids)
	}
}

func TestSourceSetProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		sa, sb := SourceSet(a), SourceSet(b)
		u := sa.Union(sb)
		// Union contains both; intersection symmetric; count additive.
		if !u.Contains(sa) || !u.Contains(sb) {
			return false
		}
		if sa.Intersects(sb) != sb.Intersects(sa) {
			return false
		}
		return u.Count() <= sa.Count()+sb.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	a := NewSchema("A", "x", "y")
	idA := cat.MustAdd(a)
	if idA != 0 || a.ID() != 0 {
		t.Fatalf("bad id %d", idA)
	}
	if _, err := cat.Add(NewSchema("A")); err == nil {
		t.Fatal("duplicate source accepted")
	}
	cat.MustAdd(NewSchema("B", "x"))
	if cat.NumSources() != 2 {
		t.Fatalf("want 2 sources")
	}
	if s, ok := cat.ByName("B"); !ok || s.Name != "B" {
		t.Fatal("ByName failed")
	}
	if i, ok := a.ColIndex("y"); !ok || i != 1 {
		t.Fatal("ColIndex failed")
	}
	if _, ok := a.ColIndex("z"); ok {
		t.Fatal("phantom column")
	}
	if cat.AllSources().Count() != 2 {
		t.Fatal("AllSources wrong")
	}
}

func mk(t *testing.T, src SourceID, ts Time, vals ...Value) *Tuple {
	t.Helper()
	return &Tuple{ID: uint64(ts) + uint64(src)*1000, Source: src, TS: ts, Vals: vals}
}

func TestCompositeJoin(t *testing.T) {
	a := NewComposite(3, mk(t, 0, 10, 1, 2))
	b := NewComposite(3, mk(t, 1, 5, 1))
	ab := Join(a, b)
	if ab.TS != 10 || ab.MinTS != 5 {
		t.Fatalf("timestamps: ts=%v min=%v", ab.TS, ab.MinTS)
	}
	if !ab.Sources.Has(0) || !ab.Sources.Has(1) || ab.Sources.Has(2) {
		t.Fatalf("sources wrong: %v", ab.Sources)
	}
	if !a.IsSubTuple(ab) || !b.IsSubTuple(ab) || ab.IsSubTuple(a) {
		t.Fatal("sub-tuple relation wrong")
	}
	// The empty composite is a sub-tuple of everything.
	empty := &Composite{Comps: make([]*Tuple, 3)}
	if !empty.IsSubTuple(ab) || !empty.IsSubTuple(a) {
		t.Fatal("Ø not sub-tuple")
	}
}

func TestCompositeJoinOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overlapping join")
		}
	}()
	a := NewComposite(2, mk(t, 0, 1, 1))
	b := NewComposite(2, mk(t, 0, 2, 2))
	Join(a, b)
}

func TestProject(t *testing.T) {
	a := NewComposite(3, mk(t, 0, 10, 1))
	b := NewComposite(3, mk(t, 1, 20, 2))
	c := NewComposite(3, mk(t, 2, 5, 3))
	abc := Join(Join(a, b), c)
	p := abc.Project(SourceSet(0).Add(0).Add(2))
	if p.Sources.Count() != 2 || p.TS != 10 || p.MinTS != 5 {
		t.Fatalf("projection wrong: %v ts=%v min=%v", p.Sources, p.TS, p.MinTS)
	}
	if !p.IsSubTuple(abc) {
		t.Fatal("projection not sub-tuple")
	}
}

func TestMarks(t *testing.T) {
	c := NewComposite(2, mk(t, 0, 1, 1))
	if c.HasMark(7) {
		t.Fatal("phantom mark")
	}
	c.AddMark(7)
	c.AddMark(9)
	if !c.HasMark(7) || !c.HasMark(9) {
		t.Fatal("marks missing")
	}
	c.RemoveMark(7)
	if c.HasMark(7) || !c.HasMark(9) {
		t.Fatal("remove wrong")
	}
	// Mark union through Join.
	d := NewComposite(2, mk(t, 1, 2, 2))
	d.AddMark(11)
	cd := Join(c, d)
	if !cd.HasMark(9) || !cd.HasMark(11) {
		t.Fatal("join did not union marks")
	}
}

func TestKeysAndSort(t *testing.T) {
	a := NewComposite(2, mk(t, 0, 3, 1))
	b := NewComposite(2, mk(t, 1, 1, 1))
	ab := Join(a, b)
	if ab.Key() == a.Key() {
		t.Fatal("keys collide")
	}
	list := []*Composite{ab, a, b}
	SortComposites(list)
	if list[0].TS > list[1].TS || list[1].TS > list[2].TS {
		t.Fatal("sort not by TS")
	}
}

func TestSizeAccountingStable(t *testing.T) {
	c := NewComposite(4, mk(t, 0, 1, 1, 2, 3))
	before := c.DeepSizeBytes()
	c.AddMark(3)
	c.AddMark(4)
	if c.DeepSizeBytes() != before {
		t.Fatal("size changed with marks; accounting would corrupt")
	}
}

func TestTimeString(t *testing.T) {
	if (2*Minute).String() != "2m" || (1500*Millisecond).String() != "1500ms" || (3*Second).String() != "3s" {
		t.Fatalf("time rendering: %v %v", (2 * Minute).String(), (3 * Second).String())
	}
}
