// Package stream defines the data model of the DSMS: application time,
// column values, per-source schemas, base tuples and composite (joined)
// tuples, together with the sub-tuple relation that underpins the JIT
// feedback mechanism (MNS / NPR detection).
//
// Terminology follows Yang & Papadias, "Just-In-Time Processing of
// Continuous Queries" (ICDE 2008):
//
//   - a base tuple is a record arriving from one streaming source;
//   - a composite is a (partial) join result holding one base tuple per
//     participating source;
//   - s is a sub-tuple of t when every component of s also appears in t.
//
// The package sits at the bottom of the layering (DESIGN.md §1): every
// other package speaks in its Time, Value, Tuple and Composite types, and
// application time is integral milliseconds precisely so that runs are
// deterministic — no float drift ever reorders two deadlines.
package stream

import (
	"fmt"
	"sort"
	"strings"
)

// Time is application time in milliseconds. All window arithmetic is done in
// this unit; wall-clock time never enters the semantics of the engine.
type Time int64

// Common durations expressed in Time units.
const (
	Millisecond Time = 1
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

func (t Time) String() string {
	if t%Minute == 0 {
		return fmt.Sprintf("%dm", int64(t/Minute))
	}
	if t%Second == 0 {
		return fmt.Sprintf("%ds", int64(t/Second))
	}
	return fmt.Sprintf("%dms", int64(t))
}

// Value is a column value. The paper's workloads use integer domains
// [1..dmax]; using a fixed-width integer keeps tuples compact and makes
// memory accounting exact.
type Value int64

// SourceID identifies a streaming source within a Catalog.
type SourceID int

// SourceSet is a bitmask over SourceIDs. Plans in this repo never exceed 64
// sources, far above the paper's maximum of N=8.
type SourceSet uint64

// Add returns s with the given source included.
func (s SourceSet) Add(id SourceID) SourceSet { return s | 1<<uint(id) }

// Has reports whether id is a member of s.
func (s SourceSet) Has(id SourceID) bool { return s&(1<<uint(id)) != 0 }

// Union returns the set union of s and o.
func (s SourceSet) Union(o SourceSet) SourceSet { return s | o }

// Intersects reports whether s and o share any source.
func (s SourceSet) Intersects(o SourceSet) bool { return s&o != 0 }

// Contains reports whether every member of o is also in s.
func (s SourceSet) Contains(o SourceSet) bool { return s&o == o }

// Empty reports whether the set has no members.
func (s SourceSet) Empty() bool { return s == 0 }

// Count returns the number of sources in the set.
func (s SourceSet) Count() int {
	n := 0
	for v := uint64(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// IDs returns the members in ascending order.
func (s SourceSet) IDs() []SourceID {
	ids := make([]SourceID, 0, s.Count())
	for i := SourceID(0); s != 0; i++ {
		if s.Has(i) {
			ids = append(ids, i)
			s &^= 1 << uint(i)
		}
	}
	return ids
}

func (s SourceSet) String() string {
	parts := make([]string, 0, s.Count())
	for _, id := range s.IDs() {
		parts = append(parts, fmt.Sprintf("%d", id))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Schema describes the columns of one streaming source.
type Schema struct {
	Name string
	Cols []string

	id     SourceID
	colIdx map[string]int
}

// NewSchema builds a schema with the given source name and column names.
func NewSchema(name string, cols ...string) *Schema {
	s := &Schema{Name: name, Cols: append([]string(nil), cols...), colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.colIdx[c] = i
	}
	return s
}

// ID returns the source's identifier within its catalog. Valid only after
// the schema has been registered with a Catalog.
func (s *Schema) ID() SourceID { return s.id }

// ColIndex returns the index of the named column and whether it exists.
func (s *Schema) ColIndex(name string) (int, bool) {
	i, ok := s.colIdx[name]
	return i, ok
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.Cols) }

// Catalog is the set of sources participating in a query.
type Catalog struct {
	schemas []*Schema
	byName  map[string]*Schema
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Schema)}
}

// Add registers a schema and assigns its SourceID. It returns an error when
// the name is already taken.
func (c *Catalog) Add(s *Schema) (SourceID, error) {
	if _, dup := c.byName[s.Name]; dup {
		return 0, fmt.Errorf("stream: duplicate source %q", s.Name)
	}
	s.id = SourceID(len(c.schemas))
	c.schemas = append(c.schemas, s)
	c.byName[s.Name] = s
	return s.id, nil
}

// MustAdd is Add but panics on error; convenient for static catalogs.
func (c *Catalog) MustAdd(s *Schema) SourceID {
	id, err := c.Add(s)
	if err != nil {
		panic(err)
	}
	return id
}

// Source returns the schema with the given id.
func (c *Catalog) Source(id SourceID) *Schema { return c.schemas[id] }

// ByName returns the schema with the given name, if registered.
func (c *Catalog) ByName(name string) (*Schema, bool) {
	s, ok := c.byName[name]
	return s, ok
}

// NumSources returns the number of registered sources.
func (c *Catalog) NumSources() int { return len(c.schemas) }

// AllSources returns the set of every registered source.
func (c *Catalog) AllSources() SourceSet {
	var s SourceSet
	for i := range c.schemas {
		s = s.Add(SourceID(i))
	}
	return s
}

// Names returns the source names in id order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.schemas))
	for i, s := range c.schemas {
		out[i] = s.Name
	}
	return out
}

// Tuple is a base tuple: one record from one source.
type Tuple struct {
	// ID is unique across the whole run; assigned by the generator or
	// engine at arrival.
	ID uint64
	// Source identifies the origin stream.
	Source SourceID
	// TS is the arrival timestamp; the tuple is alive during [TS, TS+w).
	TS Time
	// Vals holds one Value per schema column.
	Vals []Value
}

// SizeBytes estimates the in-memory footprint of the tuple for the memory
// accounting used by the experiments (struct header + value payload).
func (t *Tuple) SizeBytes() int64 {
	// 8 (ID) + 8 (Source, padded) + 8 (TS) + slice header 24 + payload.
	return 48 + int64(len(t.Vals))*8
}

func (t *Tuple) String() string {
	return fmt.Sprintf("%c%d", 'a'+rune(t.Source), t.ID)
}

// Composite is a (partial) join result: at most one base tuple per source.
// A raw source tuple is wrapped in a single-component composite so that all
// operator inputs share one representation.
type Composite struct {
	// TS is the composite's timestamp: the maximum of its components'
	// timestamps (the earliest time the composite could exist).
	TS Time
	// MinTS is the minimum component timestamp; the composite expires when
	// MinTS + w <= now, because its oldest component can no longer join.
	MinTS Time
	// Comps maps SourceID -> base tuple; nil entries mean the source is
	// absent. The slice is sized to the catalog's source count.
	Comps []*Tuple
	// Sources is the set of sources present, kept in sync with Comps.
	Sources SourceSet
	// Marks is the set of active mark-result identifiers this composite
	// carries (Type II MNS handling, Sec. IV-B). Nil when unmarked, which is
	// the overwhelmingly common case.
	Marks map[uint64]bool
}

// NewComposite wraps a base tuple in a composite, given the catalog size.
func NewComposite(numSources int, t *Tuple) *Composite {
	c := &Composite{
		TS:      t.TS,
		MinTS:   t.TS,
		Comps:   make([]*Tuple, numSources),
		Sources: SourceSet(0).Add(t.Source),
	}
	c.Comps[t.Source] = t
	return c
}

// Join combines two composites with disjoint source sets into a new one.
// The timestamp is the max of the two (per CQL semantics), the expiry
// anchor the min. Marks are unioned. Join panics if the source sets overlap,
// which would indicate a malformed plan.
func Join(a, b *Composite) *Composite {
	if a.Sources.Intersects(b.Sources) {
		panic(fmt.Sprintf("stream: joining overlapping composites %v and %v", a.Sources, b.Sources))
	}
	c := &Composite{
		TS:      maxTime(a.TS, b.TS),
		MinTS:   minTime(a.MinTS, b.MinTS),
		Comps:   make([]*Tuple, len(a.Comps)),
		Sources: a.Sources.Union(b.Sources),
	}
	copy(c.Comps, a.Comps)
	for i, t := range b.Comps {
		if t != nil {
			c.Comps[i] = t
		}
	}
	if len(a.Marks) > 0 || len(b.Marks) > 0 {
		c.Marks = make(map[uint64]bool, len(a.Marks)+len(b.Marks))
		for m := range a.Marks {
			c.Marks[m] = true
		}
		for m := range b.Marks {
			c.Marks[m] = true
		}
	}
	return c
}

// Comp returns the component from the given source, or nil.
func (c *Composite) Comp(id SourceID) *Tuple { return c.Comps[id] }

// HasMark reports whether the composite carries the given mark id.
func (c *Composite) HasMark(m uint64) bool { return c.Marks != nil && c.Marks[m] }

// AddMark tags the composite with a mark id.
func (c *Composite) AddMark(m uint64) {
	if c.Marks == nil {
		c.Marks = make(map[uint64]bool, 1)
	}
	c.Marks[m] = true
}

// RemoveMark clears a mark id from the composite.
func (c *Composite) RemoveMark(m uint64) {
	if c.Marks != nil {
		delete(c.Marks, m)
	}
}

// IsSubTuple reports whether every component of c also appears in t
// (matching by tuple identity). The empty composite is a sub-tuple of
// everything, mirroring the paper's empty tuple Ø.
func (c *Composite) IsSubTuple(t *Composite) bool {
	if !t.Sources.Contains(c.Sources) {
		return false
	}
	for i, comp := range c.Comps {
		if comp != nil && t.Comps[i] != comp {
			return false
		}
	}
	return true
}

// Project returns the sub-composite of c restricted to the given sources.
// All requested sources must be present.
func (c *Composite) Project(set SourceSet) *Composite {
	if !c.Sources.Contains(set) {
		panic(fmt.Sprintf("stream: projecting %v out of %v", set, c.Sources))
	}
	p := &Composite{Comps: make([]*Tuple, len(c.Comps))}
	first := true
	for _, id := range set.IDs() {
		t := c.Comps[id]
		p.Comps[id] = t
		p.Sources = p.Sources.Add(id)
		if first {
			p.TS, p.MinTS = t.TS, t.TS
			first = false
		} else {
			p.TS = maxTime(p.TS, t.TS)
			p.MinTS = minTime(p.MinTS, t.TS)
		}
	}
	return p
}

// Key returns a canonical identity for the composite based on component
// tuple IDs, usable as a map key for result-set comparison in tests.
func (c *Composite) Key() string {
	ids := make([]string, 0, c.Sources.Count())
	for _, sid := range c.Sources.IDs() {
		ids = append(ids, fmt.Sprintf("%d:%d", sid, c.Comps[sid].ID))
	}
	return strings.Join(ids, "|")
}

// SizeBytes estimates the memory footprint of the composite itself
// (components are accounted once where they are stored, not per reference):
// struct header plus the component pointer slice. The estimate is
// deliberately independent of the mutable mark set so that a stored
// composite's accounting charge is stable between insertion and removal.
func (c *Composite) SizeBytes() int64 {
	return int64(64) + int64(len(c.Comps))*8
}

// DeepSizeBytes additionally charges the payload of each component. Operator
// states use this: a stored partial result keeps its base tuples alive.
func (c *Composite) DeepSizeBytes() int64 {
	n := c.SizeBytes()
	for _, t := range c.Comps {
		if t != nil {
			n += t.SizeBytes()
		}
	}
	return n
}

func (c *Composite) String() string {
	parts := make([]string, 0, c.Sources.Count())
	for _, sid := range c.Sources.IDs() {
		parts = append(parts, c.Comps[sid].String())
	}
	return strings.Join(parts, "")
}

// SortComposites orders composites by (TS, Key) for deterministic
// comparisons in tests and result dumps.
func SortComposites(cs []*Composite) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].TS != cs[j].TS {
			return cs[i].TS < cs[j].TS
		}
		return cs[i].Key() < cs[j].Key()
	})
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
