package shard_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/shard"
	"repro/internal/source"
	"repro/internal/stream"
)

// shiftWorkload is the sharded twin of the adapt package's phase-shift
// workload: a 4-source chain query whose first half favors the bushy shape
// and whose second half floods the bushy (C D) sub-join with partnerless
// pairs. The chain's single shared column is also the plan-wide partition
// key, so the stream routes across replicas with no broadcasts.
func shiftWorkload(seed int64) []*stream.Tuple {
	const (
		horizon = 300 * stream.Second
		phase   = 150 * stream.Second
		gap     = 500 * stream.Millisecond
	)
	rng := rand.New(rand.NewSource(seed))
	var traces [][]*stream.Tuple
	for src := 0; src < 4; src++ {
		var tr []*stream.Tuple
		for ts := stream.Time(int64(src)*29 + 1); ts < horizon; ts += gap {
			var v int64
			switch {
			case ts < phase && src < 2:
				v = rng.Int63n(4) + 1
			case ts < phase:
				v = rng.Int63n(1000) + 1
			case src < 2:
				v = rng.Int63n(50) + 5
			default:
				v = rng.Int63n(4) + 1
			}
			tr = append(tr, &stream.Tuple{
				Source: stream.SourceID(src), TS: ts, Vals: []stream.Value{stream.Value(v)},
			})
		}
		traces = append(traces, tr)
	}
	return source.Merge(traces...)
}

// TestShardedAdaptiveEquivalence runs the fleet under lockstep
// re-optimization: the merged delivery multiset must equal the static
// single-engine run's, the replicas must actually migrate, and the whole
// thing must be bit-reproducible across repeated runs.
func TestShardedAdaptiveEquivalence(t *testing.T) {
	cat, conj := predicate.Chain(4)
	build := func(shape *plan.Node) *plan.Built {
		return plan.BuildTree(cat, conj, shape, plan.Options{
			Window: 50 * stream.Second, Mode: core.JIT(), KeepResults: true, NoStateIndex: true,
		})
	}
	arrivals := shiftWorkload(1)

	static := build(plan.Bushy(4))
	engine.NewWithOptions(static, engine.Options{Drain: true}).Run(arrivals)
	want := sortedCopy(static.Sink.ResultKeys())

	runOnce := func() ([]string, shard.Result) {
		runner := shard.New(build(plan.Bushy(4)), shard.Options{
			Shards: 2,
			Adapt: &adapt.Config{
				Epoch:    50 * stream.Second,
				Patience: 1,
			},
		})
		if runner.Shards() != 2 {
			t.Fatalf("chain plan should shard, got %d replicas", runner.Shards())
		}
		res := runner.Run(arrivals)
		return res.ResultKeys(), res
	}

	got, res := runOnce()
	if res.Merged.Counters.Migrations == 0 {
		t.Fatalf("no replica migrated")
	}
	t.Logf("migrations=%d (lockstep fleet of 2) dups=%d", res.Merged.Counters.Migrations,
		res.Merged.Counters.MigrationDups)
	gotSorted := sortedCopy(got)
	if len(gotSorted) != len(want) {
		t.Fatalf("merged %d results, static %d", len(gotSorted), len(want))
	}
	for i := range want {
		if gotSorted[i] != want[i] {
			t.Fatalf("result multiset differs at %d", i)
		}
	}

	again, _ := runOnce()
	if len(again) != len(got) {
		t.Fatalf("non-deterministic result count: %d vs %d", len(again), len(got))
	}
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("merge order not reproducible at %d", i)
		}
	}
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
