package shard

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/state"
	"repro/internal/stream"
)

// Broadcast is the Route result for tuples that must go to every shard:
// their source has no attribute in the partition key class (or the key
// component is missing from the tuple), so any shard's results may need
// them.
const Broadcast = -1

// Key is a plan-wide compatible partitioning key: one column per routed
// source, all transitively equated by the plan's crossing predicates, so
// every final result's routed components carry equal key values and land
// in the same shard.
type Key struct {
	// Cols maps each routed source to the column whose value selects its
	// shard. Sources absent from the map broadcast to all shards.
	Cols map[stream.SourceID]int
	// Class is the underlying attribute equivalence class the key was
	// chosen from, in (Source, Col) order — kept for display and tests.
	Class []predicate.Attr
}

// DeriveKey computes the partition key for a plan: it derives each
// operator's aligned equi-key columns from the predicates crossing its two
// sides (predicate.Conj.EquiKeyCols, exactly the pairs the §3 hash index
// is built on) and intersects them up the tree by uniting each aligned
// pair into one equivalence class. Any class is sound (its attributes are
// equal in every final result), so the class covering the most sources is
// chosen — fewer broadcast sources, better scaling — with ties broken by
// the smallest (Source, Col) attribute. ok is false when no predicate
// crosses any join (a pure cross product): no key exists and the caller
// must fall back to a single shard, mirroring the §3 scan fallback.
func DeriveKey(preds predicate.Conj, shape *plan.Node) (Key, bool) {
	var pairs predicate.Conj
	collectPairs(preds, shape, &pairs)
	classes := pairs.EquiClosure()
	if len(classes) == 0 {
		return Key{}, false
	}
	best := classes[0]
	bestCover := coverage(best)
	for _, cl := range classes[1:] {
		if c := coverage(cl); c > bestCover {
			best, bestCover = cl, c
		}
	}
	k := Key{Cols: make(map[stream.SourceID]int, bestCover), Class: best}
	for _, a := range best {
		// A class can hold two attributes of one source (equated through a
		// third); either column routes identically on final results, so the
		// smallest wins — Class is already in (Source, Col) order.
		if _, dup := k.Cols[a.Source]; !dup {
			k.Cols[a.Source] = a.Col
		}
	}
	return k, true
}

// collectPairs walks the shape and appends, per internal node, one Eq per
// aligned equi-key column pair of that operator. The union of these pairs
// over the whole tree is what EquiClosure intersects into classes.
func collectPairs(preds predicate.Conj, n *plan.Node, out *predicate.Conj) {
	if n.IsLeaf() {
		return
	}
	collectPairs(preds, n.Left, out)
	collectPairs(preds, n.Right, out)
	lk, rk, ok := preds.EquiKeyCols(n.Left.Sources(), n.Right.Sources())
	if !ok {
		return
	}
	for i := range lk {
		*out = append(*out, predicate.Eq{
			Left: lk[i].Source, LCol: lk[i].Col,
			Right: rk[i].Source, RCol: rk[i].Col,
		})
	}
}

// coverage counts the distinct sources a class keys.
func coverage(class []predicate.Attr) int {
	var set stream.SourceSet
	for _, a := range class {
		set = set.Add(a.Source)
	}
	return set.Count()
}

// Covered returns the set of routed sources.
func (k Key) Covered() stream.SourceSet {
	var set stream.SourceSet
	//jitlint:allow maporder commutative bitset union of routed sources; any visit order yields the same set
	for id := range k.Cols {
		set = set.Add(id)
	}
	return set
}

// Route returns the shard in [0, shards) for a tuple, or Broadcast when
// the tuple's source is unrouted or the key component is missing. Routing
// is a pure function of the key value (state.FoldValue, the same FNV-1a
// fold the §3 state index hashes with), so the same value always lands on
// the same shard — the property shard-local completeness rests on.
func (k Key) Route(t *stream.Tuple, shards int) int {
	col, ok := k.Cols[t.Source]
	if !ok || col >= len(t.Vals) {
		return Broadcast
	}
	return int(state.FoldValue(state.FNVOffset, t.Vals[col]) % uint64(shards))
}

func (k Key) String() string {
	ids := make([]stream.SourceID, 0, len(k.Cols))
	for id := range k.Cols {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("s%d.c%d", id, k.Cols[id])
	}
	return "[" + strings.Join(parts, " ") + "]"
}
