package shard

import (
	"io"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stream"
)

// Options configures a sharded run.
type Options struct {
	// Shards is the requested replica count. Values below 2 — or a plan
	// with no partition key — collapse to a single replica.
	Shards int
	// Engine is applied to every replica. Drain should normally be on: each
	// shard sees only a key-slice of the stream, and the drain is what
	// guarantees the slice delivers its REF-equal finals (DESIGN.md §4), so
	// the union over shards equals the single-engine multiset (§5).
	Engine engine.Options
	// BufferSize is the per-shard dispatch channel depth; zero means 256.
	BufferSize int
	// Adapt, when non-nil, runs the fleet under adaptive re-optimization
	// (internal/adapt, DESIGN.md §7) with lockstep migrations: the
	// dispatcher broadcasts an epoch-barrier marker into every replica
	// channel when the global stream crosses an epoch boundary, the
	// replicas exchange their local shadow scores through one coordinator
	// at the barrier, and all adopt the same fleet-wide shape decision.
	// Drain is forced on (the migration handoff requires exact delivery).
	Adapt *adapt.Config
	// TraceFor, when non-nil, supplies each replica's observability tracer
	// (nil returns leave that replica untraced). One tracer per replica —
	// tracers are single-goroutine like the engines that drive them; the ops
	// endpoint aggregates their snapshots with per-shard labels (DESIGN.md
	// §9), and the merged Result aggregates per-operator stats by name.
	TraceFor func(shard int) *obs.Tracer
}

// Result is the outcome of a sharded run.
type Result struct {
	// Merged aggregates the per-shard results: counters via
	// metrics.Counters.Add, result/arrival counts summed (a broadcast
	// arrival is ingested once per shard and counted as such), PeakMemKB
	// the sum of per-shard peaks (the fleet's total footprint), WallTime
	// the whole run's wall clock — dispatch start to last shard drained.
	Merged engine.Result
	// Shards holds each replica's own result, indexed by shard.
	Shards []engine.Result
	// Key is the partition key; Fallback reports that no plan-wide key
	// existed and the run collapsed to one replica.
	Key      Key
	Fallback bool
	// Routed counts arrivals sent to exactly one shard; Broadcasts counts
	// arrivals replicated to every shard. Routed+Broadcasts is the global
	// arrival count.
	Routed     uint64
	Broadcasts uint64
	// Deliveries is the deterministic merge of the per-shard sink streams
	// (nil unless the plan was built with Options.KeepResults).
	Deliveries []*stream.Composite
}

// ResultKeys returns the canonical keys of the merged deliveries in merge
// order, for multiset and determinism comparison against a single engine.
func (r *Result) ResultKeys() []string {
	keys := make([]string, len(r.Deliveries))
	for i, c := range r.Deliveries {
		keys[i] = c.Key()
	}
	return keys
}

// Imbalance measures the partition skew of a keyed run: the hottest
// replica's routed-arrival count over the fair per-replica share. A
// perfectly balanced fleet scores 1; a Zipf-skewed key pushes the score
// toward the replica owning the hot value (the scenario harness asserts
// this reaches routing, and a future autoscaler would treat it as the
// re-key trigger). Single-replica and fallback runs score 1 — there is no
// routing decision to be skewed.
func (r *Result) Imbalance() float64 {
	if len(r.Shards) < 2 || r.Routed == 0 {
		return 1
	}
	var hot uint64
	for _, sh := range r.Shards {
		if routed := uint64(sh.Arrivals) - r.Broadcasts; routed > hot {
			hot = routed
		}
	}
	return float64(hot) * float64(len(r.Shards)) / float64(r.Routed)
}

// Runner executes one plan across key-partitioned engine replicas.
type Runner struct {
	base   *plan.Built
	opt    Options
	key    Key
	keyed  bool
	shards int
}

// New creates a runner for the plan. The partition key is derived from the
// plan's predicates and shape (DeriveKey); when none exists, or fewer than
// two shards are requested, the runner degenerates to one replica.
func New(b *plan.Built, opt Options) *Runner {
	r := &Runner{base: b, opt: opt, shards: opt.Shards}
	if r.shards < 1 {
		r.shards = 1
	}
	r.key, r.keyed = DeriveKey(b.Preds(), b.Shape())
	if !r.keyed {
		r.shards = 1
	}
	return r
}

// Shards returns the effective replica count after fallback.
func (r *Runner) Shards() int { return r.shards }

// Key returns the derived partition key; ok is false on fallback.
func (r *Runner) Key() (Key, bool) { return r.key, r.keyed }

// Run adapts a materialized arrival slice to RunStream.
func (r *Runner) Run(arrivals []*stream.Tuple) Result {
	i := 0
	return r.RunStream(func() (*stream.Tuple, bool) {
		if i >= len(arrivals) {
			return nil, false
		}
		t := arrivals[i]
		i++
		return t, true
	})
}

// RunStream splits the stream across the replicas and merges the results.
// The calling goroutine dispatches: it pulls tuples from next in order and
// sends each to its key shard (or to every shard for broadcast sources),
// while one goroutine per replica drives engine.RunStream over its
// channel; closing the channels starts each shard's end-of-stream drain.
// Tuples are shared by pointer across shards — they are immutable once
// dispatched — while every replica's operators, counters and sink are its
// own (plan.Built.Replicate), so the engines never synchronize.
//
// Everything about the run is deterministic for a fixed shard count: the
// per-shard input sequence is a pure function of the stream and the key,
// each replica is the deterministic single-threaded engine, and the merge
// order is defined below — goroutine scheduling cannot affect any output.
//
// Under Options.Adapt the same loop additionally broadcasts an epoch-
// barrier marker (a nil tuple) into EVERY replica channel the moment the
// global stream first crosses an epoch boundary — before any post-boundary
// tuple — so each replica, draining its channel in order, reaches barrier
// k after exactly its slice of epoch k. At the barrier the replica blocks
// in the adapt.Coordinator until every live replica has reported; the
// fleet-wide decision is a pure function of the summed scores, and each
// replica applies it at its next local arrival via its own snapshot+replay
// handoff (DESIGN.md §7). Liveness: a replica waiting at a barrier has an
// empty channel prefix only behind other replicas' unconsumed input, which
// those replicas drain without needing the dispatcher; the dispatcher may
// block on a full channel, but never while a marker it already enqueued is
// needed to release anyone.
func (r *Runner) RunStream(next func() (*stream.Tuple, bool)) Result {
	n := r.shards
	buf := r.opt.BufferSize
	if buf <= 0 {
		buf = 256
	}
	var cfg adapt.Config
	var coord *adapt.Coordinator
	var ctrls []*adapt.Controller
	if r.opt.Adapt != nil {
		cfg = *r.opt.Adapt
		if cfg.Log != nil {
			// The replicas' controllers log from their own goroutines;
			// serialize writes so lines never interleave mid-write. The
			// cross-replica line ORDER remains scheduling-dependent — only
			// the log; every measured output is deterministic.
			cfg.Log = &lockedWriter{w: cfg.Log}
		}
		coord = adapt.NewCoordinator(n, r.base.Shape(), r.base.Catalog.NumSources(), cfg)
		ctrls = make([]*adapt.Controller, n)
	}
	replicas := make([]*plan.Built, n)
	chans := make([]chan *stream.Tuple, n)
	for i := range replicas {
		replicas[i] = r.base.Replicate()
		chans[i] = make(chan *stream.Tuple, buf)
		if r.opt.TraceFor != nil {
			replicas[i].SetTrace(r.opt.TraceFor(i))
		}
		if coord != nil {
			ctrls[i] = adapt.NewCoordinated(cfg, coord)
		}
	}

	start := time.Now() //jitlint:allow wallclock merged Result.Wall is operator-facing elapsed time; counters and results never depend on it
	shardRes := make([]engine.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := r.opt.Engine
			src := engine.ChanSource(chans[i])
			if coord != nil {
				o.Drain = true // the migration handoff requires exact delivery
				o.Reopt = ctrls[i]
				src = func() (*stream.Tuple, bool) {
					for t := range chans[i] {
						if t == nil {
							ctrls[i].AtBarrier()
							continue
						}
						return t, true
					}
					ctrls[i].Leave()
					return nil, false
				}
			}
			eng := engine.NewWithOptions(replicas[i], o)
			shardRes[i] = eng.RunStream(src)
		}(i)
	}

	res := Result{Key: r.key, Fallback: !r.keyed}
	started := false
	var nextBarrier stream.Time
	for {
		t, ok := next()
		if !ok {
			break
		}
		if coord != nil && cfg.Epoch > 0 {
			if !started {
				started = true
				nextBarrier = t.TS + cfg.Epoch
			}
			if t.TS >= nextBarrier {
				for _, ch := range chans {
					ch <- nil // barrier marker, before any post-boundary tuple
				}
				for nextBarrier <= t.TS {
					nextBarrier += cfg.Epoch
				}
			}
		}
		if n == 1 {
			res.Routed++
			chans[0] <- t
			continue
		}
		switch s := r.key.Route(t, n); s {
		case Broadcast:
			res.Broadcasts++
			for _, ch := range chans {
				ch <- t
			}
		default:
			res.Routed++
			chans[s] <- t
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	r.merge(&res, replicas, shardRes, time.Since(start)) //jitlint:allow wallclock merged Result.Wall is operator-facing elapsed time; counters and results never depend on it
	return res
}

// lockedWriter serializes the adaptive controllers' log writes across
// replica goroutines.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// merge assembles the per-shard results into the deterministic fleet
// result (the merge-order contract of DESIGN.md §5).
func (r *Runner) merge(res *Result, replicas []*plan.Built, shardRes []engine.Result, wall time.Duration) {
	res.Shards = shardRes
	merged := engine.Result{WallTime: wall}
	var ctr metrics.Counters
	logs := make([][]*stream.Composite, len(shardRes))
	for i := range shardRes {
		sr := &shardRes[i]
		merged.Results += sr.Results
		merged.Arrivals += sr.Arrivals
		merged.PeakMemKB += sr.PeakMemKB
		merged.OrderViolations += sr.OrderViolations
		ctr.Add(&sr.Counters)
		logs[i] = replicas[i].Sink.Results()
		// Aggregate per-operator stats by operator name: replicas share one
		// shape, so names align; a migrated fleet's successor operators merge
		// under the successor names (order follows first appearance).
		for _, op := range sr.Ops {
			found := false
			for k := range merged.Ops {
				if merged.Ops[k].Name == op.Name {
					merged.Ops[k].Stats.Add(op.Stats)
					found = true
					break
				}
			}
			if !found {
				merged.Ops = append(merged.Ops, op)
			}
		}
	}
	merged.Counters = ctr
	merged.CostUnits = ctr.CostUnits()
	res.Merged = merged
	res.Deliveries = mergeDeliveries(logs)
}

// mergeDeliveries k-way merges the per-shard sink streams into one
// deterministic order — the merge-order contract of DESIGN.md §5:
// repeatedly deliver, among the shards' next undelivered results, the one
// with the smallest (timestamp, shard id). Only heads are eligible, so
// each shard's own delivery order (its seq order, including documented
// late-recovery timestamp inversions) is preserved verbatim, and with one
// shard the merge reproduces the single engine's sink order exactly.
func mergeDeliveries(logs [][]*stream.Composite) []*stream.Composite {
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]*stream.Composite, 0, total)
	pos := make([]int, len(logs))
	for len(out) < total {
		best := -1
		for i, l := range logs {
			if pos[i] >= len(l) {
				continue
			}
			// Strict < keeps the lowest shard id on timestamp ties.
			if best < 0 || l[pos[i]].TS < logs[best][pos[best]].TS {
				best = i
			}
		}
		out = append(out, logs[best][pos[best]])
		pos[best]++
	}
	return out
}
