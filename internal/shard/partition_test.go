package shard

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// TestDeriveKeyClique pins the worst-case derivation: every clique
// predicate is on a distinct column pair, so the closure's classes all
// cover exactly two sources and the deterministic tie-break picks the
// lexicographically smallest — A and B on their mutual columns — leaving
// the other sources to broadcast.
func TestDeriveKeyClique(t *testing.T) {
	_, conj := predicate.Clique(4)
	for _, shape := range []*plan.Node{plan.Bushy(4), plan.LeftDeep(4)} {
		k, ok := DeriveKey(conj, shape)
		if !ok {
			t.Fatalf("clique must derive a key")
		}
		if got := len(k.Cols); got != 2 {
			t.Fatalf("clique key covers %d sources (%v), want 2", got, k)
		}
		if c, ok := k.Cols[0]; !ok || c != 0 {
			t.Errorf("source A keyed on col %d (present=%v), want col 0 (x_B)", c, ok)
		}
		if c, ok := k.Cols[1]; !ok || c != 0 {
			t.Errorf("source B keyed on col %d (present=%v), want col 0 (x_A)", c, ok)
		}
	}
}

// TestDeriveKeyChain pins the best case: the chain conjunction closes into
// one class covering every source, so nothing broadcasts.
func TestDeriveKeyChain(t *testing.T) {
	cat, conj := predicate.Chain(5)
	k, ok := DeriveKey(conj, plan.LeftDeep(5))
	if !ok {
		t.Fatalf("chain must derive a key")
	}
	if got, want := k.Covered(), cat.AllSources(); got != want {
		t.Fatalf("chain key covers %v, want all sources %v", got, want)
	}
	for id, col := range k.Cols {
		if col != 0 {
			t.Errorf("source %d keyed on col %d, want 0", id, col)
		}
	}
}

// TestDeriveKeyCrossProduct asserts the single-shard fallback: with no
// predicates, no operator has equi-key columns and no key exists.
func TestDeriveKeyCrossProduct(t *testing.T) {
	if _, ok := DeriveKey(nil, plan.Bushy(4)); ok {
		t.Fatalf("cross product derived a key")
	}
}

// TestDeriveKeyMatchesClosure cross-checks the tree-walk derivation
// against the predicate-level transitive closure: for a tree covering all
// sources every predicate crosses exactly one operator, so the per-operator
// pairs united up the tree must reproduce the closure's best class.
func TestDeriveKeyMatchesClosure(t *testing.T) {
	for n := 3; n <= 6; n++ {
		_, conj := predicate.Clique(n)
		classes := conj.EquiClosure()
		if len(classes) != n*(n-1)/2 {
			t.Fatalf("N=%d: closure has %d classes, want %d", n, len(classes), n*(n-1)/2)
		}
		for _, shape := range []*plan.Node{plan.Bushy(n), plan.LeftDeep(n)} {
			k, ok := DeriveKey(conj, shape)
			if !ok {
				t.Fatalf("N=%d: no key", n)
			}
			if len(k.Class) != len(classes[0]) {
				t.Errorf("N=%d: key class %v does not match closure class %v", n, k.Class, classes[0])
			}
			for i, a := range classes[0] {
				if k.Class[i] != a {
					t.Errorf("N=%d: key class %v != closure class %v", n, k.Class, classes[0])
					break
				}
			}
		}
	}
}

// TestRoute asserts the routing contract: keyed sources map by value —
// stably, and equal values to equal shards — while unrouted sources
// broadcast.
func TestRoute(t *testing.T) {
	_, conj := predicate.Clique(4)
	k, _ := DeriveKey(conj, plan.Bushy(4))
	a1 := &stream.Tuple{Source: 0, Vals: []stream.Value{7, 1, 2}}
	b1 := &stream.Tuple{Source: 1, Vals: []stream.Value{7, 3, 4}}
	for _, n := range []int{2, 4, 8} {
		sa, sb := k.Route(a1, n), k.Route(b1, n)
		if sa != sb {
			t.Errorf("shards=%d: equal key values routed apart (%d vs %d)", n, sa, sb)
		}
		if sa < 0 || sa >= n {
			t.Errorf("shards=%d: route %d out of range", n, sa)
		}
		if got := k.Route(a1, n); got != sa {
			t.Errorf("shards=%d: routing not stable (%d then %d)", n, sa, got)
		}
		if got := k.Route(&stream.Tuple{Source: 2, Vals: []stream.Value{7, 7, 7}}, n); got != Broadcast {
			t.Errorf("shards=%d: unrouted source got shard %d, want Broadcast", n, got)
		}
	}
}

// TestImbalance pins the load-skew metric: hottest routed share over the
// fair share, with broadcasts (ingested once per replica) excluded.
func TestImbalance(t *testing.T) {
	r := Result{
		Routed:     90,
		Broadcasts: 5,
		Shards:     []engine.Result{{Arrivals: 65}, {Arrivals: 35}},
	}
	// Routed per shard: 60 and 30; fair share 45; hot/fair = 4/3.
	if got, want := r.Imbalance(), 60.0/45.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Imbalance() = %v, want %v", got, want)
	}
	single := Result{Routed: 10, Shards: []engine.Result{{Arrivals: 10}}}
	if got := single.Imbalance(); got != 1 {
		t.Fatalf("single-replica Imbalance() = %v, want 1", got)
	}
}
