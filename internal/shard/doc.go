// Package shard scales one continuous query across key-partitioned engine
// replicas (DESIGN.md §5). Since every crossing predicate is an equi-join,
// two tuples that disagree on a plan-wide compatible partitioning key can
// never meet in a result, so hash-partitioning the sources on that key
// gives shard-local completeness: N independent plan replicas, each driven
// by its own engine goroutine over a key-slice of the stream, together
// deliver exactly the single-engine result multiset. Sources outside the
// key class broadcast to every shard, and a deterministic k-way merge
// reassembles the per-shard sink streams into one reproducible output.
//
// Layout: partition.go derives the key (DeriveKey over the predicate
// closure's equivalence classes) and routes tuples (Route, FNV-1a on the
// key value, Broadcast for uncovered sources); runner.go owns the
// goroutine topology — one dispatcher feeding per-shard channels, one
// engine per replica, and the (timestamp, shard) merge that makes a
// sharded run bit-reproducible for a fixed shard count.
//
// Nothing is shared between replicas: no operator, state, or feedback
// structure crosses a shard boundary, which is why JIT suspension stays
// correct per shard (feedback can only ever suppress pairs the local
// shard could form). The completeness guarantee needs the end-of-stream
// drain (engine.Options.Drain, DESIGN.md §4) on every replica — per-shard
// exact delivery is what makes the union over shards equal the
// single-engine multiset. The runner applies Options.Engine verbatim, so
// callers must set Drain themselves; exp.Params.RunSharded and `jitrun
// -shards` both force it.
package shard
