package shard_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/shard"
	"repro/internal/source"
	"repro/internal/stream"
)

// cliqueWorkload is a 4-way clique stream of the ROADMAP workload family
// (w=2min, h=3min). The tests run λ=3, dmax=30 — the same ~10 join
// partners per tuple per predicate as the dense λ=8, dmax=100 roadmap
// point, at a fraction of the arrivals, with ~60 finals to compare; the
// λ=8 point itself is exercised by the root shard benchmarks
// (BENCH_shard.json).
func cliqueWorkload(rate float64, dmax, seed int64) (*stream.Catalog, predicate.Conj, []*stream.Tuple) {
	cat, conj := predicate.Clique(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, rate, dmax, 3*stream.Minute, seed))
	return cat, conj, arrivals
}

func buildDense(cat *stream.Catalog, conj predicate.Conj, mode core.Mode) *plan.Built {
	return plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
		Window: 2 * stream.Minute, Mode: mode, KeepResults: true,
	})
}

// multiset folds result keys into a count map.
func multiset(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for _, k := range keys {
		m[k]++
	}
	return m
}

func diffMultisets(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: result %s delivered %d times, want %d", label, k, got[k], n)
			return
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("%s: spurious result %s (delivered %d times)", label, k, n)
			return
		}
	}
}

// TestShardedEquivalence is the §5 acceptance contract on the dense
// workload: for shard counts 1, 2 and 4 and every execution mode, the
// sharded run's merged result multiset equals the drained single-engine
// run's, with one shard reproducing the single engine's sink order
// exactly, and the merged order bit-reproducible run-to-run for a fixed
// shard count.
func TestShardedEquivalence(t *testing.T) {
	cat, conj, arrivals := cliqueWorkload(3, 30, 1)
	type namedMode struct {
		name  string
		mode  core.Mode
		rerun bool // also verify run-to-run merge determinism
	}
	modes := []namedMode{
		{"REF", core.REF(), true},
		{"JIT", core.JIT(), true},
		{"DOE", core.DOE(), false},
		{"Bloom", core.BloomJIT(), false},
	}
	counts := []int{1, 2, 4}
	if testing.Short() {
		// The dispatcher and merge paths are mode-independent; the cheap
		// modes keep the race-detector CI job fast while the full sweep
		// covers all four modes.
		modes = []namedMode{{"REF", core.REF(), true}, {"Bloom", core.BloomJIT(), true}}
		counts = []int{1, 4}
	}
	for _, m := range modes {
		single := buildDense(cat, conj, m.mode)
		engine.NewWithOptions(single, engine.Options{Drain: true}).Run(arrivals)
		refKeys := single.Sink.ResultKeys()
		want := multiset(refKeys)
		if len(want) == 0 {
			t.Fatalf("%s: degenerate workload, single engine delivered nothing", m.name)
		}
		for _, n := range counts {
			runner := shard.New(buildDense(cat, conj, m.mode), shard.Options{
				Shards: n, Engine: engine.Options{Drain: true},
			})
			if runner.Shards() != n {
				t.Fatalf("%s shards=%d: effective count %d", m.name, n, runner.Shards())
			}
			res := runner.Run(arrivals)
			got := res.ResultKeys()
			if uint64(len(got)) != res.Merged.Results {
				t.Errorf("%s shards=%d: %d deliveries vs merged count %d",
					m.name, n, len(got), res.Merged.Results)
			}
			diffMultisets(t, m.name+" sharded", multiset(got), want)
			if n == 1 {
				for i := range got {
					if got[i] != refKeys[i] {
						t.Errorf("%s shards=1: merge order diverges from single engine at %d: %s vs %s",
							m.name, i, got[i], refKeys[i])
						break
					}
				}
			}
			// Determinism: an identical re-run must merge identically.
			if n == 1 || !m.rerun {
				continue
			}
			again := shard.New(buildDense(cat, conj, m.mode), shard.Options{
				Shards: n, Engine: engine.Options{Drain: true},
			}).Run(arrivals)
			rerun := again.ResultKeys()
			if len(rerun) != len(got) {
				t.Fatalf("%s shards=%d: rerun delivered %d results vs %d", m.name, n, len(rerun), len(got))
			}
			for i := range got {
				if rerun[i] != got[i] {
					t.Errorf("%s shards=%d: merge order not reproducible at %d: %s vs %s",
						m.name, n, i, rerun[i], got[i])
					break
				}
			}
		}
	}
}

// TestShardedChainFullCoverage runs the fully partitionable chain workload
// — every source routed, nothing broadcast — and asserts the same
// equivalence, so partial coverage (clique) and full coverage (chain) are
// both pinned.
func TestShardedChainFullCoverage(t *testing.T) {
	cat, conj := predicate.Chain(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, 4, 200, 3*stream.Minute, 1))
	build := func() *plan.Built {
		return plan.BuildTree(cat, conj, plan.LeftDeep(4), plan.Options{
			Window: 2 * stream.Minute, Mode: core.JIT(), KeepResults: true,
		})
	}
	single := build()
	engine.NewWithOptions(single, engine.Options{Drain: true}).Run(arrivals)
	want := multiset(single.Sink.ResultKeys())
	if len(want) == 0 {
		t.Fatalf("degenerate chain workload")
	}
	for _, n := range []int{2, 4} {
		res := shard.New(build(), shard.Options{Shards: n, Engine: engine.Options{Drain: true}}).Run(arrivals)
		if res.Broadcasts != 0 {
			t.Errorf("shards=%d: %d broadcasts on a fully covered key", n, res.Broadcasts)
		}
		if res.Routed != uint64(len(arrivals)) {
			t.Errorf("shards=%d: routed %d of %d arrivals", n, res.Routed, len(arrivals))
		}
		diffMultisets(t, "chain", multiset(res.ResultKeys()), want)
	}
}

// TestShardedFallback asserts the cross-product fallback: no crossing
// predicates, no key — the run collapses to one replica and still matches
// the single engine.
func TestShardedFallback(t *testing.T) {
	cat := stream.NewCatalog()
	cat.MustAdd(stream.NewSchema("A", "x"))
	cat.MustAdd(stream.NewSchema("B", "x"))
	arrivals := source.Generate(cat, source.UniformConfig(2, 2, 10, time30s(), 1))
	build := func() *plan.Built {
		return plan.BuildTree(cat, nil, plan.Bushy(2), plan.Options{
			Window: 15 * stream.Second, Mode: core.REF(), KeepResults: true,
		})
	}
	single := build()
	engine.NewWithOptions(single, engine.Options{Drain: true}).Run(arrivals)
	runner := shard.New(build(), shard.Options{Shards: 4, Engine: engine.Options{Drain: true}})
	if runner.Shards() != 1 {
		t.Fatalf("cross product ran %d shards, want 1", runner.Shards())
	}
	res := runner.Run(arrivals)
	if !res.Fallback {
		t.Errorf("fallback not reported")
	}
	if got, want := res.Merged.Results, single.Sink.Count(); got != want {
		t.Errorf("fallback delivered %d results, single engine %d", got, want)
	}
}

func time30s() stream.Time { return 30 * stream.Second }

// TestShardedMetricsMerge asserts the counter contract: merged counters
// are the field-wise sum of the per-shard counters (metrics.Counters.Add),
// and the per-shard arrival counts sum to routed + shards×broadcast.
func TestShardedMetricsMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("full JIT counter merge runs in the non-short suite")
	}
	cat, conj, arrivals := cliqueWorkload(3, 30, 2)
	res := shard.New(buildDense(cat, conj, core.JIT()), shard.Options{
		Shards: 4, Engine: engine.Options{Drain: true},
	}).Run(arrivals)
	if res.Routed+res.Broadcasts != uint64(len(arrivals)) {
		t.Errorf("routed %d + broadcast %d != %d arrivals", res.Routed, res.Broadcasts, len(arrivals))
	}
	var wantArrivals uint64 = res.Routed + 4*res.Broadcasts
	if got := uint64(res.Merged.Arrivals); got != wantArrivals {
		t.Errorf("merged arrivals %d, want routed+4*broadcast = %d", got, wantArrivals)
	}
	var sum uint64
	for _, sr := range res.Shards {
		sum += sr.Counters.FinalResults
	}
	if sum != res.Merged.Counters.FinalResults {
		t.Errorf("merged finals %d != per-shard sum %d", res.Merged.Counters.FinalResults, sum)
	}
	if res.Merged.CostUnits != res.Merged.Counters.CostUnits() {
		t.Errorf("merged cost units inconsistent")
	}
}
