package core
