package core

import (
	"fmt"
	"sort"

	"repro/internal/feedback"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/predicate"
	"repro/internal/state"
	"repro/internal/stream"
)

// Config assembles a JoinOp.
type Config struct {
	Name       string
	NumSources int
	Window     stream.Time
	// Preds is the full query conjunction; the operator evaluates the
	// subset crossing its two input sides.
	Preds predicate.Conj
	Mode  Mode
	// Counters and Account are shared across the plan.
	Counters *metrics.Counters
	Account  *metrics.Account
	// NextMNS supplies plan-unique MNS / mark identifiers.
	NextMNS func() uint64
	// LeftSources / RightSources are the source sets of the two inputs.
	LeftSources  stream.SourceSet
	RightSources stream.SourceSet
	// LeftKey / RightKey are the aligned equi-key columns of the crossing
	// predicates (predicate.Conj.EquiKeyCols): position i of LeftKey and
	// RightKey are the two endpoints of the same predicate. When set, each
	// side's state maintains a hash index on its key and probes walk only
	// the matching bucket (DESIGN.md §3). Nil disables indexing (probes
	// scan linearly, as the seed implementation always did).
	LeftKey  []predicate.Attr
	RightKey []predicate.Attr
	// LeftProd / RightProd are the upstream producers; nil when the input
	// is a raw source (no feedback possible on that side).
	LeftProd  operator.Producer
	RightProd operator.Producer
}

// side holds everything attached to one input of the join.
type side struct {
	port    operator.Port
	sources stream.SourceSet
	prod    operator.Producer
	seq     *state.Side
	st      *state.State
	black   *feedback.Blacklist
	buf     *feedback.Buffer // MNSs detected on THIS side's inputs
	// key holds THIS side's half of the aligned equi-key columns: the state
	// st is indexed on it, and inputs arriving here hash their values at it
	// to probe the opposite state's index. Nil when indexing is disabled or
	// no predicate crosses the join.
	key state.Key
	// Lattice atoms for inputs arriving on this side: the input's
	// components that participate in predicates crossing to the opposite
	// side, with the per-atom predicate lists.
	atoms      []stream.SourceID
	atomPreds  []predicate.Conj
	level1Only bool
	detectable bool
	// Bloom filters over THIS side's state values, keyed by attribute;
	// queried when detecting MNSs on the opposite side's inputs.
	blooms *bloomSet
	// Exact-mode graveyard: entries purged from st, retained because a
	// late recovery emission (an upstream resumption's catch-up result)
	// may still form pairs REF formed live with them. Only inputs with
	// TS < now scan it — an in-order arrival fails pairValid against
	// every retired entry by construction. Nil outside exact mode.
	// graveIdx buckets entries by equi-key hash so probeGrave scans one
	// bucket instead of the whole yard (mirroring the live state index);
	// graveNoKey lists entries whose key doesn't hash (scanned on every
	// probe, like unindexed live entries); graveSeq resolves a parked
	// pending sequence to its entry in O(1) for the probePending fallback.
	grave      []state.Entry
	graveIdx   map[uint64][]int32
	graveNoKey []int32
	graveSeq   map[uint64]int32
}

// retire moves a tuple leaving the live structures into the exact-mode
// graveyard, maintaining the hash-bucket and sequence indexes.
func (s *side) retire(e state.Entry) {
	i := int32(len(s.grave))
	s.grave = append(s.grave, e)
	if s.graveSeq == nil {
		s.graveSeq = make(map[uint64]int32)
		s.graveIdx = make(map[uint64][]int32)
	}
	s.graveSeq[e.Seq] = i
	if len(s.key) > 0 {
		if h, ok := s.key.Hash(e.C); ok {
			s.graveIdx[h] = append(s.graveIdx[h], i)
			return
		}
	}
	s.graveNoKey = append(s.graveNoKey, i)
}

// probeFrame tracks one in-progress probe so that re-entrant suspension
// feedback can park the probing input mid-scan (Sec. III-B).
type probeFrame struct {
	input       *stream.Composite
	port        operator.Port
	seq         uint64
	lastPartner uint64 // sequence of the last opposite entry processed
	parked      bool
	fullMatch   bool
	// parkEntry, when set by a suspension received mid-probe, defers the
	// parking of this input until its current probe completes: aborting the
	// scan would strand pairs behind resumption cycles across operators
	// (two mutually-suspended partners each waiting for the other's resume
	// trigger). Completing the probe keeps the cursor claim exact.
	parkEntry *feedback.Entry
	done      map[uint64]bool // pairs pre-generated while suspended
}

// JoinOp is a binary sliding-window join with optional JIT machinery. It is
// both a Consumer (of its two inputs) and a Producer (toward its consumer).
type JoinOp struct {
	name    string
	numSrc  int
	window  stream.Time
	preds   predicate.Conj
	mode    Mode
	ctr     *metrics.Counters
	acct    *metrics.Account
	nextMNS func() uint64

	consumer operator.Consumer
	outPort  operator.Port

	// stats mirrors the feedback-relevant counters per operator (the shared
	// ctr aggregates plan-wide): the adaptive re-optimizer reads these deltas
	// each epoch to see where the current shape wastes work (DESIGN.md §7).
	stats metrics.OpStats

	// trace is the attached observability layer; nil disables it. The tracer
	// only observes — it never writes anything the counters measure
	// (DESIGN.md §9), and every emission site is nil-safe.
	trace *obs.Tracer

	in     [2]*side
	marks  *feedback.MarkTable
	now    stream.Time
	frames []*probeFrame
	// exact enables exact-delivery recovery (DESIGN.md §4): demand-buffer
	// probes precede diversion, expiry-boundary recoveries generate the
	// pairs REF formed live (guarded by pairValid), and parked tuples get a
	// last-gasp catch-up when their own window closes. Off by default: the
	// paper's 2008 prototype drops never-demanded suspended results at
	// expiry, and the figure reproductions measure exactly that behaviour.
	exact bool
}

// NewJoin builds a join operator from the configuration.
func NewJoin(cfg Config) *JoinOp {
	if cfg.LeftSources.Intersects(cfg.RightSources) {
		panic(fmt.Sprintf("core: join %q has overlapping inputs", cfg.Name))
	}
	j := &JoinOp{
		name:    cfg.Name,
		numSrc:  cfg.NumSources,
		window:  cfg.Window,
		preds:   cfg.Preds,
		mode:    cfg.Mode,
		ctr:     cfg.Counters,
		acct:    cfg.Account,
		nextMNS: cfg.NextMNS,
	}
	if j.mode.MaxAtoms <= 0 {
		j.mode.MaxAtoms = 12
	}
	j.marks = feedback.NewMarkTable(cfg.Account)
	if (cfg.LeftKey == nil) != (cfg.RightKey == nil) || len(cfg.LeftKey) != len(cfg.RightKey) {
		panic(fmt.Sprintf("core: join %q has misaligned keys (%d vs %d columns)",
			cfg.Name, len(cfg.LeftKey), len(cfg.RightKey)))
	}
	mk := func(port operator.Port, srcs stream.SourceSet, prod operator.Producer, other stream.SourceSet, key []predicate.Attr) *side {
		seq := &state.Side{}
		s := &side{
			port:    port,
			sources: srcs,
			prod:    prod,
			seq:     seq,
			st:      state.New(fmt.Sprintf("S_%s.%s", cfg.Name, port), seq, cfg.Account),
			black:   feedback.NewBlacklist(fmt.Sprintf("B_%s.%s", cfg.Name, port), cfg.Account),
			buf:     feedback.NewBuffer(fmt.Sprintf("NB_%s.%s", cfg.Name, port), cfg.Account),
			key:     state.Key(key),
		}
		s.st.SetKey(s.key)
		s.atoms = cfg.Preds.SourcesLinkedTo(srcs, other)
		for _, src := range s.atoms {
			s.atomPreds = append(s.atomPreds, cfg.Preds.TouchingAcross(src, other))
		}
		s.level1Only = len(s.atoms) > j.mode.MaxAtoms || len(s.atoms) > lattice.MaxAtoms
		s.detectable = j.mode.enabled() && prod != nil && prod.CanSuspend() && len(s.atoms) > 0
		if j.mode.Detect == DetectBloom {
			s.blooms = new(bloomSet)
		}
		return s
	}
	j.in[operator.Left] = mk(operator.Left, cfg.LeftSources, cfg.LeftProd, cfg.RightSources, cfg.LeftKey)
	j.in[operator.Right] = mk(operator.Right, cfg.RightSources, cfg.RightProd, cfg.LeftSources, cfg.RightKey)
	return j
}

// SetConsumer wires the downstream consumer and the port our outputs feed.
func (j *JoinOp) SetConsumer(c operator.Consumer, port operator.Port) {
	j.consumer, j.outPort = c, port
}

// Name implements operator.Op.
func (j *JoinOp) Name() string { return j.name }

// SetTrace attaches (or, with nil, detaches) the observability tracer.
// plan.Built.SetTrace fans it out across the wired tree.
func (j *JoinOp) SetTrace(tr *obs.Tracer) { j.trace = tr }

// OutSources implements operator.Op.
func (j *JoinOp) OutSources() stream.SourceSet {
	return j.in[0].sources.Union(j.in[1].sources)
}

// CanSuspend implements operator.Producer: a join honours feedback unless
// it is configured to ignore it or runs as the REF baseline.
func (j *JoinOp) CanSuspend() bool { return j.mode.enabled() && !j.mode.IgnoreFeedback }

// Window returns the operator's window length.
func (j *JoinOp) Window() stream.Time { return j.window }

// SetExact toggles exact-delivery recovery (DESIGN.md §4). The engine
// enables it for drained runs, where every suspended result must resume or
// expire by the horizon; the default (off) reproduces the paper prototype's
// drop-at-expiry semantics bit for bit.
func (j *JoinOp) SetExact(on bool) { j.exact = on }

// pairValid reports whether joining a and b respects the sliding window:
// the result's constituents all lie within one window span. Live probes
// enforce this implicitly (states are purged before probing, so a stored
// partner is joinable exactly when the span holds); exact-mode recovery
// paths join against structures that can still hold expired tuples, where
// this explicit check admits exactly the pairs REF formed live and nothing
// more.
func (j *JoinOp) pairValid(a, b *stream.Composite) bool {
	min, max := a.MinTS, a.TS
	if b.MinTS < min {
		min = b.MinTS
	}
	if b.TS > max {
		max = b.TS
	}
	return max < min+j.window
}

// Side exposes internals for white-box tests: the state, blacklist and MNS
// buffer of one port.
func (j *JoinOp) Side(p operator.Port) (*state.State, *feedback.Blacklist, *feedback.Buffer) {
	s := j.in[p]
	return s.st, s.black, s.buf
}

// Marks exposes the mark table for white-box tests.
func (j *JoinOp) Marks() *feedback.MarkTable { return j.marks }

// Stats returns the operator's own feedback counters — the per-operator
// slice of the plan-wide metrics.Counters that the adaptive re-optimizer
// watches over decision epochs (DESIGN.md §7).
func (j *JoinOp) Stats() metrics.OpStats { return j.stats }

// SnapshotBase exports the base tuples a source-fed side still holds inside
// the window at the cut — active state entries plus blacklist-parked tuples
// — in ascending sequence order. This is the operator half of the §2
// snapshot cut (DESIGN.md §7): between arrivals, every in-window base tuple
// of a source sits either in its feed side's state or parked in that side's
// blacklist, so the union over a plan's feed ports reconstructs the exact
// in-window arrival history a successor plan (or a restored checkpoint)
// must replay. Panics if the side is not source-fed (its composites would
// be intermediates, which a different plan shape cannot adopt).
func (j *JoinOp) SnapshotBase(p operator.Port, cut stream.Time) []*stream.Tuple {
	s := j.in[p]
	if s.prod != nil {
		panic(fmt.Sprintf("core: SnapshotBase on non-leaf port %v of %s", p, j.name))
	}
	var out []*stream.Tuple
	add := func(c *stream.Composite) {
		if c.MinTS+j.window <= cut {
			return // expired at the cut; a purge would drop it
		}
		ids := c.Sources.IDs()
		if len(ids) != 1 {
			panic(fmt.Sprintf("core: composite %v on leaf port of %s", c.Sources, j.name))
		}
		out = append(out, c.Comp(ids[0]))
	}
	for _, e := range s.st.SnapshotLive(cut, j.window) {
		add(e.C)
	}
	for _, entry := range s.black.Entries() {
		for i := range entry.Tuples {
			add(entry.Tuples[i].E.C)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Consume implements operator.Consumer: the Process_Input procedure of
// Fig. 6, preceded by the blacklist fast path (diversion of arrivals whose
// signature is already suspended, Sec. IV-B).
func (j *JoinOp) Consume(c *stream.Composite, port operator.Port) {
	if c.TS > j.now {
		j.now = c.TS
	}
	j.purge()
	s := j.in[port]
	if j.exact {
		// Exact mode follows the paper's Process_Input order: the MNS
		// buffer probe (resumption trigger) comes first, so an arrival that
		// both satisfies a pending demand and matches a blacklist signature
		// still fires the resumption before it is diverted (divertCheck).
		j.activate(activation{c: c, port: port, detect: true, divertCheck: true})
		return
	}
	if j.mode.enabled() && !j.mode.IgnoreFeedback && s.black.Len() > 0 {
		e, n := s.black.MatchArrival(c, j.now, j.mode.Generalize)
		j.ctr.Comparisons += uint64(n)
		if e != nil {
			seq := s.seq.Next()
			s.black.Park(e, feedback.Suspended{E: state.Entry{C: c, Seq: seq}, Cursor: 0})
			j.ctr.Suspended++
			j.stats.Suspended++
			j.trace.Suspend(j.name, 1)
			return
		}
	}
	j.activate(activation{c: c, port: port, detect: true})
}

// activation describes one tuple entering (or re-entering) a side.
type activation struct {
	c    *stream.Composite
	port operator.Port
	// seq is the pre-assigned stable sequence (reuse=true) or ignored.
	seq   uint64
	reuse bool
	// cursor: only opposite entries with Seq > cursor are scanned.
	cursor uint64
	// scanBlack additionally scans the opposite blacklists (catch-up).
	scanBlack bool
	// detect runs Identify_MNS after the probe (fresh inputs only).
	detect bool
	// collect, when non-nil, receives results instead of downstream
	// emission (resumption responses, Sec. III-A lines 14-17).
	collect *[]*stream.Composite
	// done lists opposite sequences whose pairs were already generated
	// while this tuple was suspended (see feedback.Suspended.Done).
	done map[uint64]bool
	// pending lists opposite sequences at or below cursor whose pairs were
	// never joined (see feedback.Suspended.Pending).
	pending []uint64
	// divertCheck runs the blacklist diversion check after the MNS buffer
	// probe (exact mode): a diverted input skips probe and insertion but
	// demanded upstream results are still processed.
	divertCheck bool
	// ephemeral marks an exact-mode recovery of a tuple past its own
	// window: it probes (generating its deferred pairs) but is neither
	// parked by mid-probe suspensions nor reinserted into the state — it
	// can never join a future arrival, and letting it re-enter a blacklist
	// would re-arm an already-due deadline forever.
	ephemeral bool
}

// activate runs purge-probe-insert for one input, with the JIT additions:
// MNS-buffer probe and resumption (lines 1-9 of Process_Input), detection
// and suspension feedback (lines 11-12), and S_Π processing (lines 14-17).
func (j *JoinOp) activate(a activation) {
	s, o := j.in[a.port], j.in[a.port.Opposite()]
	if !a.reuse {
		a.seq = s.seq.Next()
	}

	// Probe the opposite MNS buffer and issue resumption feedback.
	var spi []*stream.Composite
	if j.mode.enabled() && !j.mode.IgnoreFeedback && o.buf.Len() > 0 {
		matched, n := o.buf.Probe(a.c)
		j.ctr.Comparisons += uint64(n)
		if len(matched) > 0 && o.prod != nil {
			j.ctr.Feedbacks++
			spi = o.prod.Feedback(feedback.Message{Cmd: feedback.Resume, MNS: matched})
		}
	}

	// Exact-mode diversion: runs after the buffer probe (the resumption
	// trigger always fires first, Process_Input lines 1-9), parking the
	// input without a probe when it matches a blacklist signature. The
	// demanded upstream results below are processed either way.
	diverted := false
	if a.divertCheck && !a.ephemeral && j.mode.enabled() && !j.mode.IgnoreFeedback && s.black.Len() > 0 {
		e, n := s.black.MatchArrival(a.c, j.now, j.mode.Generalize)
		j.ctr.Comparisons += uint64(n)
		if e != nil {
			s.black.Park(e, feedback.Suspended{E: state.Entry{C: a.c, Seq: a.seq}, Cursor: 0})
			j.ctr.Suspended++
			j.stats.Suspended++
			j.trace.Suspend(j.name, 1)
			diverted = true
		}
	}
	if !diverted {
		j.probeInsert(a, s, o)
	}

	// Process S_Π: the demanded partial results returned by the producer.
	// Each is a brand-new input on the opposite side; by the resumption
	// argument (DESIGN.md §2) only the current input can match them, so the
	// full probe below performs exactly the paper's "join t with S_Π" plus
	// cheap failing comparisons, while keeping cascaded resumption and mark
	// bookkeeping uniform.
	for _, u := range spi {
		if !j.exact && u.MinTS+j.window <= j.now {
			continue // expired while suspended upstream
		}
		if j.exact {
			j.activate(activation{c: u, port: a.port.Opposite(), collect: a.collect,
				divertCheck: true, ephemeral: u.MinTS+j.window <= j.now})
			continue
		}
		if j.divert(u, a.port.Opposite()) {
			continue
		}
		j.activate(activation{c: u, port: a.port.Opposite(), collect: a.collect})
	}
}

// probeInsert is the probe-and-insert body of activate: pre-probe marking,
// state/blacklist/pending probes, detection, deferred parking, and state
// insertion.
func (j *JoinOp) probeInsert(a activation, s, o *side) {
	// Pre-probe marking: an input matching an origin mark entry's side
	// signature acquires the mark id now, so suppression applies during its
	// own probe (otherwise a live pair would be generated and later
	// regenerated by the unmark catch-up). Enrollment into the entry's
	// marked list happens at insertion, with the cursor rules of
	// registerMarks.
	if j.marks.NumOrigins() > 0 {
		for _, e := range j.marks.Origins() {
			sig := e.SigR
			if a.port == operator.Left {
				sig = e.SigL
			}
			if len(sig) > 0 {
				j.ctr.Comparisons += uint64(len(sig))
				if sig.MatchedBy(a.c) {
					a.c.AddMark(e.MNS.ID)
				}
			}
		}
	}

	var det *detectCtx
	if a.detect && s.detectable {
		det = j.newDetect(s)
	}

	// Probe the opposite state (and, for catch-up, the blacklists).
	f := &probeFrame{input: a.c, port: a.port, seq: a.seq, lastPartner: a.cursor, done: a.done}
	j.frames = append(j.frames, f)
	j.probeState(f, s, o, det, a.collect, a.cursor == 0 && !a.scanBlack)
	if a.scanBlack && !f.parked {
		j.probeBlacklists(f, o, a.cursor, a.collect)
	}
	if len(a.pending) > 0 && !f.parked {
		j.probePending(f, o, a.pending, a.collect)
	}
	if j.exact && !f.parked && len(o.grave) > 0 && a.c.TS < j.now {
		j.probeGrave(f, o, a.cursor, a.collect)
	}
	if a.reuse && !f.parked {
		// A reactivation can happen re-entrantly while an opposite input is
		// mid-probe (a resumption cascade triggered from that input's own
		// emission chain). If the in-flight scan has already passed this
		// tuple's (old) sequence slot, neither side would ever produce the
		// pair — generate it here, exactly once.
		j.probeInFlight(f, o, a.cursor, a.collect)
	}
	j.frames = j.frames[:len(j.frames)-1]

	// Identify_MNS and suspension feedback. A full match means no node of
	// the lattice can be alive, so detection is skipped (Fig. 8 semantics
	// at zero cost).
	if det != nil && !f.parked && !f.fullMatch {
		j.reportMNS(f, s, o, det)
	}

	// A suspension received mid-probe parks the input now that its probe is
	// complete (cursor = full opposite watermark), unless the entry has
	// already been resumed or expired in the meantime. Ephemeral recoveries
	// are never parked or inserted: their catch-up is complete and they are
	// past their window, so they simply vanish.
	if a.ephemeral {
		return
	}
	if !f.parked && f.parkEntry != nil {
		if cur, ok := s.black.Entry(f.parkEntry.MNS.Key()); ok && cur == f.parkEntry {
			var pending []uint64
			cursor := o.seq.Watermark()
			for _, oe := range o.black.Entries() {
				for i := range oe.Tuples {
					w := &oe.Tuples[i]
					if w.Cursor < f.seq && w.E.Seq <= cursor && !w.IsDone(f.seq) {
						pending = append(pending, w.E.Seq)
					}
				}
			}
			s.black.Park(f.parkEntry, feedback.Suspended{
				E: state.Entry{C: a.c, Seq: a.seq}, Cursor: cursor, Pending: pending,
			})
			j.ctr.Suspended++
			j.stats.Suspended++
			j.trace.Suspend(j.name, 1)
			f.parked = true
		}
	}

	// Insert the input into its state — unless a re-entrant suspension
	// parked it mid-probe, in which case it already sits in a blacklist.
	if !f.parked {
		se := state.Entry{C: a.c, Seq: a.seq}
		s.st.Reinsert(se)
		j.ctr.Inserted++
		if s.blooms != nil {
			j.bloomInsert(s, a.c)
		}
		j.registerMarks(se, a.port)
	}
}

// divert checks an arrival against the side's blacklist signatures and
// parks it on a hit; returns true when the tuple was diverted.
func (j *JoinOp) divert(c *stream.Composite, port operator.Port) bool {
	s := j.in[port]
	if !j.mode.enabled() || j.mode.IgnoreFeedback || s.black.Len() == 0 {
		return false
	}
	e, n := s.black.MatchArrival(c, j.now, j.mode.Generalize)
	j.ctr.Comparisons += uint64(n)
	if e == nil {
		return false
	}
	seq := s.seq.Next()
	s.black.Park(e, feedback.Suspended{E: state.Entry{C: c, Seq: seq}, Cursor: 0})
	j.ctr.Suspended++
	j.stats.Suspended++
	j.trace.Suspend(j.name, 1)
	return true
}

// probePhase selects joinPair's role within a probe (DESIGN.md §3). A
// probe without a detection context runs entirely in phaseFull. A detection
// probe over an indexed state splits in two: an indexed phaseFull pass that
// performs ALL result bookkeeping (emission, mark-suppression recording,
// exactly-once dedup), followed — only when that pass produced no full
// match — by a phaseObserve linear pass that feeds the detection lattice
// every pair's matched-atom mask and performs no bookkeeping at all. The
// split keeps every bookkeeping decision single-shot per pair: in
// particular marks.SuppressedBy, whose choice among several covering marks
// is not deterministic, is consulted at most once per pair, so a suppressed
// pair is recorded under exactly one origin entry (recording it under two
// would generate it twice at their unmarks).
type probePhase int8

const (
	phaseFull    probePhase = iota // full bookkeeping (emission, suppression, dedup)
	phaseExist                     // indexed pass fronting a detection probe
	phaseObserve                   // detection observation only, no bookkeeping
)

// probeState probes the opposite state in sequence order, evaluating the
// crossing predicates pair by pair.
//
// When the opposite state is hash-indexed and the input's key columns are
// all present, the probe walks only the bucket matching the input's key
// hash (plus unkeyable loose entries) via ProbeNext — the indexed fast path
// of DESIGN.md §3. Skipped entries differ from the input on some equi
// column, so they can neither produce results nor change the frame's
// cursor claims (a pair that fails its equi predicates needs no exactly-
// once bookkeeping: there is nothing to generate). With a lattice detection
// context the indexed walk runs first: any full match makes Identify_MNS
// moot (no lattice node can be alive, and reportMNS is skipped), so the
// linear observation pass below runs only for inputs with no live partner —
// exactly the inputs whose suspension the observations then pay for.
//
// The linear loop is resilient to re-entrant state mutations (suspension
// feedback triggered by emitted results): it snapshots the state version
// and re-synchronizes on the last processed sequence number when it
// changes. The indexed path gets the same resilience for free, because
// ProbeNext re-reads the index on every call.
func (j *JoinOp) probeState(f *probeFrame, s, o *side, det *detectCtx, collect *[]*stream.Composite, fresh bool) {
	j.ctr.Probes++
	j.stats.Probes++
	if j.trace != nil {
		// Explicit guard: the scan-bound argument costs a state read.
		j.trace.Probe(j.name, o.st.Len(), f.seq)
	}
	if len(s.key) > 0 && o.st.Indexed() {
		if h, ok := s.key.Hash(f.input); ok {
			start := f.lastPartner
			j.probeIndexed(f, s, o, h, det != nil, collect, fresh)
			if det == nil || f.parked || f.fullMatch {
				return
			}
			// No full match exists: rewind and rescan linearly so the
			// detection context observes every pair's matched-atom mask.
			// The indexed pass emitted nothing (a full non-suppressed match
			// would have set fullMatch), so no re-entrant feedback can have
			// run and the state is exactly as it was; its bookkeeping for
			// suppressed pairs is complete, so the rescan only observes.
			f.lastPartner = start
			j.probeLinear(f, s, o, det, collect, fresh, phaseObserve)
			return
		}
	}
	j.probeLinear(f, s, o, det, collect, fresh, phaseFull)
}

// probeLinear is the sequential scan of probeState, over every live entry
// beyond the frame's cursor.
func (j *JoinOp) probeLinear(f *probeFrame, s, o *side, det *detectCtx, collect *[]*stream.Composite, fresh bool, phase probePhase) {
	ver := o.st.Version()
	i := o.st.IndexAfter(f.lastPartner)
	for !f.parked {
		if ver != o.st.Version() {
			ver = o.st.Version()
			i = o.st.IndexAfter(f.lastPartner)
		}
		if i >= o.st.Len() {
			break
		}
		e := o.st.At(i)
		i++
		f.lastPartner = e.Seq
		if f.done != nil && f.done[e.Seq] {
			continue // pair already generated during this tuple's suspension
		}
		j.joinPair(f, s, e, det, collect, fresh, phase)
	}
}

// probeIndexed is the bucket walk of probeState: partners sharing the
// input's key hash (plus loose entries), in ascending sequence order,
// starting after the frame's cursor. Hash collisions are rejected by the
// predicate evaluation inside joinPair. When the walk fronts a detection
// probe (detecting), suppressed pairs are recorded only if they fully
// match, mirroring the bookkeeping the baseline detection scan would do —
// the observation pass that may follow does none.
func (j *JoinOp) probeIndexed(f *probeFrame, s, o *side, h uint64, detecting bool, collect *[]*stream.Composite, fresh bool) {
	for !f.parked {
		e, ok := o.st.ProbeNext(h, f.lastPartner)
		if !ok {
			break
		}
		f.lastPartner = e.Seq
		if f.done != nil && f.done[e.Seq] {
			continue // pair already generated during this tuple's suspension
		}
		phase := phaseFull
		if detecting {
			phase = phaseExist
		}
		j.joinPair(f, s, e, nil, collect, fresh, phase)
	}
}

// probeBlacklists performs the catch-up part of resumption: suspended
// opposite tuples beyond the cursor are joined too, so that pairs whose
// both endpoints were suspended are generated exactly once (DESIGN.md §2).
// Entries incompatible with the probing input's equi-key are skipped whole
// (entrySkip), the blacklist leg of the indexed probing of DESIGN.md §3.
func (j *JoinOp) probeBlacklists(f *probeFrame, o *side, cursor uint64, collect *[]*stream.Composite) {
	s := j.in[f.port]
	for _, entry := range o.black.Entries() {
		if j.entrySkip(f, s, o, entry) {
			continue
		}
		for i := range entry.Tuples {
			susp := &entry.Tuples[i]
			if f.parked {
				return
			}
			if susp.E.Seq <= cursor {
				continue
			}
			if !j.exact && susp.E.C.MinTS+j.window <= j.now {
				continue // exact mode: joinPair's pairValid decides instead
			}
			if f.done != nil && f.done[susp.E.Seq] {
				continue
			}
			j.ctr.CatchUpJoins++
			if j.joinPair(f, j.in[f.port], susp.E, nil, collect, false, phaseFull) {
				// The pair is produced now, while the partner is still
				// suspended; its own resumption must not regenerate it.
				susp.MarkDone(f.seq)
			}
		}
	}
}

// entrySkip reports whether every tuple parked under the blacklist entry is
// guaranteed to fail the crossing equi predicates against f.input. All
// parked tuples share the entry signature's values (they matched it on
// diversion, or are super-tuples of its anchor), so for each aligned key
// column pair (s.key[i], o.key[i]) whose opposite column the signature
// constrains, one value comparison rejects the whole entry. Ø entries have
// empty signatures and are never skipped; rejected pairs need no exactly-
// once bookkeeping because no result exists for them (DESIGN.md §3).
func (j *JoinOp) entrySkip(f *probeFrame, s, o *side, entry *feedback.Entry) bool {
	if len(s.key) == 0 || len(entry.MNS.Sig) == 0 {
		return false
	}
	for i, oa := range o.key {
		v, ok := entry.MNS.Sig.Lookup(oa)
		if !ok {
			continue
		}
		t := f.input.Comp(s.key[i].Source)
		if t == nil {
			continue
		}
		j.ctr.Comparisons++
		if t.Vals[s.key[i].Col] != v {
			return true
		}
	}
	return false
}

// recordSuppressed parks a mark-suppressed pair (probing input f against
// state entry e) in the covering origin entry's pending list, in left/right
// order.
func (j *JoinOp) recordSuppressed(f *probeFrame, e state.Entry, id uint64) {
	oe := j.marks.EntryByID(id)
	if oe == nil {
		return
	}
	fe := state.Entry{C: f.input, Seq: f.seq}
	if f.port == operator.Left {
		j.marks.RecordSuppressed(oe, fe, e)
	} else {
		j.marks.RecordSuppressed(oe, e, fe)
	}
}

// probePending generates the pairs recorded as uncovered at park time: for
// each pending opposite sequence, locate the tuple in the opposite state or
// blacklists (it may have resumed, still be suspended, or be gone) and join
// it, respecting the Done dedup in both directions.
func (j *JoinOp) probePending(f *probeFrame, o *side, pending []uint64, collect *[]*stream.Composite) {
	for _, seq := range pending {
		if f.parked {
			return
		}
		if f.done != nil && f.done[seq] {
			continue
		}
		// Look in the active state first.
		i := o.st.IndexAfter(seq - 1)
		if i < o.st.Len() {
			if e := o.st.At(i); e.Seq == seq {
				if j.exact || e.C.MinTS+j.window > j.now {
					j.ctr.CatchUpJoins++
					j.joinPair(f, j.in[f.port], e, nil, collect, false, phaseFull)
				}
				continue
			}
		}
		// Then in the blacklists.
		found := false
		for _, entry := range o.black.Entries() {
			for k := range entry.Tuples {
				susp := &entry.Tuples[k]
				if susp.E.Seq != seq {
					continue
				}
				found = true
				if susp.IsDone(f.seq) || (!j.exact && susp.E.C.MinTS+j.window <= j.now) {
					break
				}
				j.ctr.CatchUpJoins++
				if j.joinPair(f, j.in[f.port], susp.E, nil, collect, false, phaseFull) {
					susp.MarkDone(f.seq)
				}
				break
			}
			if found {
				break
			}
		}
		// Finally the graveyard: in exact mode the partner may have been
		// retired from the state while this tuple was parked; pairValid
		// inside joinPair decides whether REF formed the pair.
		if !found && j.exact {
			if i, ok := o.graveSeq[seq]; ok {
				j.ctr.CatchUpJoins++
				j.joinPair(f, j.in[f.port], o.grave[i], nil, collect, false, phaseFull)
			}
		}
	}
}

// probeGrave joins an exact-mode late input against partners already purged
// from the opposite state (DESIGN.md §4). A composite released by an
// upstream resumption arrives after the operator clock has moved on; the
// partners REF joined it with live may have expired here in the meantime.
// Only inputs with TS < now reach this scan (an in-order arrival fails
// pairValid against every retired entry, since retirement implies
// MinTS + window <= now <= input.TS), and pairValid inside joinPair admits
// exactly the pairs REF formed. Sequences at or below the park-time cursor
// are covered by the live probe or the pending list and are skipped.
func (j *JoinOp) probeGrave(f *probeFrame, o *side, cursor uint64, collect *[]*stream.Composite) {
	s := j.in[f.port]
	try := func(e state.Entry) bool {
		if f.parked {
			return false
		}
		if e.Seq <= cursor {
			return true
		}
		if !j.pairValid(f.input, e.C) {
			return true // REF never formed this pair; not recovery work
		}
		if f.done != nil && f.done[e.Seq] {
			return true
		}
		j.ctr.CatchUpJoins++
		j.joinPair(f, s, e, nil, collect, false, phaseFull)
		return true
	}
	// Mirror the indexed live probe's bucket filter: a keyed input scans
	// only its own hash bucket plus the unhashable entries — exactly the
	// set the flat scan would keep after the per-entry key comparison —
	// merged by grave index to preserve retirement order.
	inHash, inKeyed := uint64(0), false
	if len(s.key) > 0 {
		inHash, inKeyed = s.key.Hash(f.input)
	}
	if inKeyed {
		bucket, nokey := o.graveIdx[inHash], o.graveNoKey
		bi, ni := 0, 0
		for bi < len(bucket) || ni < len(nokey) {
			var i int32
			if ni >= len(nokey) || (bi < len(bucket) && bucket[bi] < nokey[ni]) {
				i = bucket[bi]
				bi++
			} else {
				i = nokey[ni]
				ni++
			}
			if !try(o.grave[i]) {
				return
			}
		}
		return
	}
	for i := range o.grave {
		if !try(o.grave[i]) {
			return
		}
	}
}

// probeInFlight joins a reactivated tuple with in-flight opposite inputs
// whose scans have already passed its sequence slot (they resynchronize via
// IndexAfter and would otherwise skip the reinserted tuple forever).
func (j *JoinOp) probeInFlight(f *probeFrame, o *side, cursor uint64, collect *[]*stream.Composite) {
	for _, g := range j.frames {
		if g == f || g.parked || g.port != o.port {
			continue
		}
		if g.seq <= cursor || g.lastPartner < f.seq {
			// Covered by the cursor claim, or the in-flight scan has not
			// reached this tuple's slot yet and will see it in the state.
			continue
		}
		if f.done != nil && f.done[g.seq] {
			continue
		}
		if g.done != nil && g.done[f.seq] {
			continue
		}
		j.ctr.CatchUpJoins++
		j.joinPair(f, j.in[f.port], state.Entry{C: g.input, Seq: g.seq}, nil, collect, false, phaseFull)
	}
}

// joinPair evaluates one (input, partner) pair: mark suppression, predicate
// evaluation (feeding the detection context), and result construction.
func (j *JoinOp) joinPair(f *probeFrame, s *side, e state.Entry, det *detectCtx, collect *[]*stream.Composite, fresh bool, phase probePhase) bool {
	if phase == phaseObserve {
		// Observation pass of a two-phase detection probe: emission and
		// suppression bookkeeping were completed by the indexed pass; only
		// feed the detection context the exact matched-atom mask. A full
		// match cannot appear here (the indexed pass would have emitted it
		// and skipped this pass), so nothing is ever generated.
		mask, full, n := j.evalAtoms(f.input, s, e.C, true)
		j.ctr.Comparisons += uint64(n)
		det.observe(j, mask, full)
		return false
	}
	if j.exact && !j.pairValid(f.input, e.C) {
		// Exact-mode recovery probe against a partner outside the pair's
		// window span: REF never formed this pair, so neither bookkeeping
		// nor generation may happen (recording it as suppressed would
		// resurrect it at unmark).
		return false
	}
	suppressedID := uint64(0)
	if fresh && !j.marks.Empty() {
		suppressedID = j.marks.SuppressedBy(f.input, e.C, 0)
	}
	if suppressedID != 0 && det == nil && phase != phaseExist {
		// No detection: skip the evaluation entirely (the point of
		// mark-result suppression is saving this work) and park the pair
		// for generation at unmark. The phaseExist pass instead falls
		// through to the evaluation and records only full matches — the
		// bookkeeping the baseline detection scan performs, so the
		// observation pass that may follow can record nothing.
		j.ctr.SuppressedPairs++
		j.stats.SuppressedPairs++
		j.recordSuppressed(f, e, suppressedID)
		return false
	}
	mask, full, n := j.evalAtoms(f.input, s, e.C, det != nil)
	j.ctr.Comparisons += uint64(n)
	if det != nil {
		det.observe(j, mask, full)
	}
	if !full {
		return false
	}
	if suppressedID != 0 {
		j.ctr.SuppressedPairs++
		j.stats.SuppressedPairs++
		j.recordSuppressed(f, e, suppressedID)
		return false
	}
	f.fullMatch = true
	r := stream.Join(f.input, e.C)
	j.ctr.Results++
	if !j.marks.Empty() {
		j.ctr.Comparisons += uint64(j.marks.StampOutput(r))
	}
	if collect != nil {
		*collect = append(*collect, r)
		return true
	}
	j.emit(r)
	return true
}

// emit delivers a result downstream. Emission may re-enter this operator
// with feedback (the consumer processes the result immediately in the
// pipelined engine and may detect an MNS on it).
func (j *JoinOp) emit(r *stream.Composite) {
	if j.consumer != nil {
		j.consumer.Consume(r, j.outPort)
	}
}

// evalAtoms evaluates the crossing predicates between input c (on side s)
// and partner v, grouped by lattice atom. When detecting, every atom is
// evaluated to produce the exact matched-atom mask; otherwise evaluation
// short-circuits at the first failing atom, matching REF's nested-loop cost.
func (j *JoinOp) evalAtoms(c *stream.Composite, s *side, v *stream.Composite, detecting bool) (mask uint32, full bool, comparisons int) {
	full = true
	for k := range s.atoms {
		matched := true
		for _, p := range s.atomPreds[k] {
			comparisons++
			if !p.Holds(c, v) {
				matched = false
				break
			}
		}
		if matched {
			if k < 32 {
				mask |= 1 << uint(k)
			}
		} else {
			full = false
			if !detecting {
				return mask, false, comparisons
			}
		}
	}
	return mask, full, comparisons
}

// purge applies window expiry to every stored structure, charging the work
// to the Purged counter.
func (j *JoinOp) purge() {
	for p := 0; p < 2; p++ {
		s := j.in[p]
		var purged int
		if j.exact {
			// Retire rather than drop: a parked tuple elsewhere in the plan
			// can still release a late composite whose REF-valid partners
			// expired here first. The graveyard keeps them reachable for
			// probeGrave (memory is unbounded by the window, but exact mode
			// only runs on drained, horizon-bounded streams).
			purged = s.st.PurgeRetired(j.now, j.window, s.retire)
		} else {
			purged = s.st.Purge(j.now, j.window)
		}
		j.ctr.Purged += uint64(purged)
		if purged > 0 && s.blooms != nil {
			j.bloomNoteDeletes(s, purged)
		}
		if j.mode.enabled() {
			if !j.exact {
				// Exact mode replaces the silent drop with a last-gasp
				// catch-up at each parked tuple's window close (Sweep), and
				// keeps pending suppressed pairs until their mark unmarks —
				// both were formed live and stay deliverable (pairValid).
				j.ctr.Purged += uint64(s.black.PurgeTuples(j.now, j.window))
			}
			s.buf.Purge(j.now)
		}
	}
	if j.mode.enabled() && !j.exact && !j.marks.Empty() {
		j.ctr.Purged += uint64(j.marks.PurgePending(j.now, j.window))
	}
}

func (j *JoinOp) String() string {
	return fmt.Sprintf("%s(%v⋈%v)", j.name, j.in[0].sources, j.in[1].sources)
}
