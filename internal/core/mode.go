// Package core implements the paper's primary contribution: the JIT-enabled
// sliding-window join operator with MNS detection (Sec. IV-A), dynamic
// production control (Sec. IV-B), feedback propagation (Sec. III-C), and the
// REF / DOE baselines obtained by disabling parts of the mechanism.
package core

// DetectKind selects the consumer-side MNS detection strategy.
type DetectKind int

// Detection strategies. The paper's REF baseline is DetectNone; DOE [21] is
// subsumed as the Ø-only special case; the full JIT uses the CNS lattice;
// DetectBloom is the Bloom-filter acceleration of Sec. IV-A (sound but
// incomplete: detects a subset of Level-1 MNSs plus Ø).
const (
	DetectNone DetectKind = iota
	DetectDOE
	DetectBloom
	DetectLattice
)

func (d DetectKind) String() string {
	switch d {
	case DetectNone:
		return "none"
	case DetectDOE:
		return "doe"
	case DetectBloom:
		return "bloom"
	case DetectLattice:
		return "lattice"
	}
	return "?"
}

// Mode configures how much of the JIT machinery an operator uses. The paper
// stresses that JIT is a best-effort optimization with many valid partial
// configurations (end of Sec. IV-B); these knobs power the ablation benches.
type Mode struct {
	// Detect selects the MNS detection strategy on the consumer side.
	Detect DetectKind
	// TypeII enables mark-result handling of Type II MNSs on the producer
	// side. When off, Type II MNSs in suspension feedback are ignored
	// (explicitly permitted by the paper).
	TypeII bool
	// Generalize enables same-signature suspension of new arrivals (the a2
	// fast path of Sec. IV-B).
	Generalize bool
	// Propagate enables upstream feedback propagation (Sec. III-C).
	Propagate bool
	// IgnoreFeedback makes the operator, as a producer, discard all
	// feedback — the paper's "OP may decide to ignore the message".
	IgnoreFeedback bool
	// MaxAtoms bounds the CNS lattice size; inputs with more predicate
	// components fall back to Level-1-only detection.
	MaxAtoms int
}

// REF is the reference execution without any JIT machinery.
func REF() Mode { return Mode{Detect: DetectNone} }

// JIT is the full mechanism with lattice detection.
func JIT() Mode {
	return Mode{Detect: DetectLattice, TypeII: true, Generalize: true, Propagate: true, MaxAtoms: 12}
}

// DOE reproduces demand-driven operator execution [21]: producers suspend
// only when a consumer state is empty (the Ø MNS).
func DOE() Mode {
	return Mode{Detect: DetectDOE, Propagate: true, MaxAtoms: 12}
}

// BloomJIT uses Bloom-filter detection instead of the lattice.
func BloomJIT() Mode {
	return Mode{Detect: DetectBloom, TypeII: false, Generalize: true, Propagate: true, MaxAtoms: 12}
}

// enabled reports whether any feedback machinery is active.
func (m Mode) enabled() bool { return m.Detect != DetectNone }

// Trace, when non-nil, receives debug events from join operators. Used only
// by tests chasing protocol issues; nil in production.
var Trace func(format string, args ...interface{})
