package core

import (
	"sort"

	"repro/internal/bloom"
	"repro/internal/feedback"
	"repro/internal/lattice"
	"repro/internal/operator"
	"repro/internal/predicate"
	"repro/internal/state"
	"repro/internal/stream"
)

// detectCtx accumulates per-partner observations for lattice-based MNS
// detection; it only exists for DetectLattice (DOE needs no per-pair work
// and Bloom detection queries filters after the probe).
type detectCtx struct {
	lat   *lattice.Lattice // nil when falling back to Level-1 only
	ever  uint32           // union of matched atoms (Level-1 fallback)
	atoms int
}

// newDetect prepares a detection context for one fresh input on side s.
func (j *JoinOp) newDetect(s *side) *detectCtx {
	if j.mode.Detect != DetectLattice || len(s.atoms) == 0 {
		return nil
	}
	d := &detectCtx{atoms: len(s.atoms)}
	if !s.level1Only {
		d.lat = lattice.New(len(s.atoms))
	}
	return d
}

// observe feeds one partner's matched-atom mask into the context.
func (d *detectCtx) observe(j *JoinOp, mask uint32, full bool) {
	if d.lat != nil {
		before := d.lat.Ops()
		if full {
			d.lat.ObserveAllDead()
		} else {
			d.lat.Observe(mask)
		}
		j.ctr.LatticeNodes += d.lat.Ops() - before
		return
	}
	d.ever |= mask
	j.ctr.LatticeNodes += uint64(d.atoms)
}

// reportMNS implements the tail of Identify_MNS (Fig. 8) plus feedback
// dispatch: compute the MNS set Ω for input f.input, record it in the MNS
// buffer, and send a suspension feedback to the producer. Called only when
// the probe produced no full match (otherwise no node can be alive).
func (j *JoinOp) reportMNS(f *probeFrame, s, o *side, det *detectCtx) {
	var mnses []*feedback.MNS
	if o.st.Empty() {
		// Fig. 8 line 2: empty opposite state → Ø is the only MNS. This is
		// the DOE special case; the producer suspends entirely.
		mnses = append(mnses, &feedback.MNS{ID: j.nextMNS(), Expiry: feedback.NoExpiry})
	} else {
		switch j.mode.Detect {
		case DetectLattice:
			if det == nil {
				return
			}
			var masks []uint32
			if det.lat != nil {
				before := det.lat.Ops()
				masks = det.lat.MNSes()
				j.ctr.LatticeNodes += det.lat.Ops() - before
			} else {
				for k := range s.atoms {
					if det.ever&(1<<uint(k)) == 0 {
						masks = append(masks, 1<<uint(k))
					}
				}
			}
			for _, mask := range masks {
				if m := j.buildMNS(f.input, s, o, mask); m != nil {
					mnses = append(mnses, m)
				}
			}
		case DetectBloom:
			for k := range s.atoms {
				if j.bloomAtomAbsent(f.input, s, o, k) {
					if m := j.buildMNS(f.input, s, o, 1<<uint(k)); m != nil {
						mnses = append(mnses, m)
					}
				}
			}
		default: // DetectDOE: Ø only, handled above.
			return
		}
	}
	if len(mnses) == 0 {
		return
	}
	j.ctr.MNSDetected += uint64(len(mnses))
	j.stats.MNSDetected += uint64(len(mnses))
	j.trace.MNS(j.name, len(mnses))
	for _, m := range mnses {
		s.buf.Add(m)
	}
	if s.prod != nil {
		j.ctr.Feedbacks++
		s.prod.Feedback(feedback.Message{Cmd: feedback.Suspend, MNS: mnses})
	}
}

// buildMNS materializes the MNS for an atom mask of input c: the spanned
// sources, the value signature over the consumer's join attributes, the
// crossing predicates (for buffer probing), the anchor sub-tuple, and the
// expiry (when the anchor's oldest component leaves the window).
//
// Atoms whose crossing predicates include a band predicate (Tol != 0) are
// never reported: the MNS buffer reactivates on exact opposite-value
// matches (feedback.Buffer.Probe), which would miss a within-band partner
// and leave the suspension permanent — so band joins simply run without
// signature feedback on those atoms (DESIGN.md §8). The empty MNS Ø is
// unaffected (it reactivates on any opposite arrival).
func (j *JoinOp) buildMNS(c *stream.Composite, s, o *side, mask uint32) *feedback.MNS {
	var srcSet stream.SourceSet
	var preds predicate.Conj
	minTS := stream.Time(1) << 61
	for k, src := range s.atoms {
		if mask&(1<<uint(k)) == 0 {
			continue
		}
		comp := c.Comp(src)
		if comp == nil {
			return nil
		}
		srcSet = srcSet.Add(src)
		for _, p := range s.atomPreds[k] {
			if p.IsBand() {
				return nil
			}
		}
		preds = append(preds, s.atomPreds[k]...)
		if comp.TS < minTS {
			minTS = comp.TS
		}
	}
	if srcSet.Empty() {
		return nil
	}
	var attrs []predicate.Attr
	for _, src := range srcSet.IDs() {
		attrs = append(attrs, j.preds.JoinAttrs(src, o.sources)...)
	}
	sig := feedback.MakeSignature(attrs, c.Comp)
	return &feedback.MNS{
		ID:      j.nextMNS(),
		Sources: srcSet,
		Sig:     sig,
		Preds:   preds,
		Expiry:  minTS + j.window,
		Anchor:  c.Project(srcSet),
	}
}

// bloomAtomAbsent reports whether the Bloom filters over the opposite state
// prove that atom k of input c has no join partner: some predicate's value
// is certainly absent from the corresponding opposite column (Sec. IV-A).
func (j *JoinOp) bloomAtomAbsent(c *stream.Composite, s, o *side, k int) bool {
	if o.blooms == nil {
		return false
	}
	for _, p := range s.atomPreds[k] {
		if p.IsBand() {
			// A filter proving the exact value absent proves nothing about
			// within-band partners; band predicates contribute no absence
			// evidence (DESIGN.md §8).
			continue
		}
		var inAttr, opAttr predicate.Attr
		if s.sources.Has(p.Left) {
			inAttr = predicate.Attr{Source: p.Left, Col: p.LCol}
			opAttr = predicate.Attr{Source: p.Right, Col: p.RCol}
		} else {
			inAttr = predicate.Attr{Source: p.Right, Col: p.RCol}
			opAttr = predicate.Attr{Source: p.Left, Col: p.LCol}
		}
		flt := o.blooms.get(opAttr)
		if flt == nil {
			continue
		}
		comp := c.Comp(inAttr.Source)
		if comp == nil {
			continue
		}
		j.ctr.BloomChecks++
		if !flt.MayContain(comp.Vals[inAttr.Col]) {
			return true
		}
	}
	return false
}

// bloomInsert adds a newly stored tuple's crossing-attribute values to the
// side's filters (creating them lazily).
func (j *JoinOp) bloomInsert(s *side, c *stream.Composite) {
	o := j.in[s.port.Opposite()]
	for _, src := range s.sources.IDs() {
		comp := c.Comp(src)
		if comp == nil {
			continue
		}
		for _, a := range j.preds.JoinAttrs(src, o.sources) {
			flt := s.blooms.get(a)
			if flt == nil {
				flt = bloom.NewForCapacity(256)
				s.blooms.put(a, flt)
				j.acct.Alloc(flt.SizeBytes())
			}
			j.ctr.BloomChecks++
			flt.Insert(comp.Vals[a.Col])
		}
	}
}

// bloomNoteDeletes records purges against the side's filters, rebuilding
// them from the live state when stale bits accumulate. The bloomSet keeps
// its filters in attribute order, so sweep and rebuild work is charged in
// the same order every run.
func (j *JoinOp) bloomNoteDeletes(s *side, n int) {
	for i, flt := range s.blooms.filters {
		a := s.blooms.attrs[i]
		for i := 0; i < n; i++ {
			flt.NoteDelete()
		}
		if !flt.NeedsRebuild() {
			continue
		}
		var vals []stream.Value
		s.st.Scan(func(e state.Entry) bool {
			if comp := e.C.Comp(a.Source); comp != nil {
				vals = append(vals, comp.Vals[a.Col])
			}
			return true
		})
		j.ctr.BloomChecks += uint64(len(vals))
		flt.Rebuild(vals)
	}
}

// bloomSet holds a side's per-attribute filters as parallel slices in
// (Source, Col) order. The set is tiny — one entry per crossing join
// attribute — so ordered linear lookup costs less than a map, and unlike a
// map its iteration order is fixed: the purge-path sweep above is
// deterministic by construction rather than by argument (jitlint maporder
// would flag a map range here).
type bloomSet struct {
	attrs   []predicate.Attr
	filters []*bloom.Filter
}

// get returns the filter for a, or nil. A nil receiver (bloom detection
// off) has no filters.
func (b *bloomSet) get(a predicate.Attr) *bloom.Filter {
	if b == nil {
		return nil
	}
	for i, at := range b.attrs {
		if at == a {
			return b.filters[i]
		}
	}
	return nil
}

// put inserts the filter for a new attribute, keeping (Source, Col) order.
func (b *bloomSet) put(a predicate.Attr, f *bloom.Filter) {
	i := sort.Search(len(b.attrs), func(i int) bool {
		at := b.attrs[i]
		if at.Source != a.Source {
			return at.Source > a.Source
		}
		return at.Col >= a.Col
	})
	b.attrs = append(b.attrs, predicate.Attr{})
	copy(b.attrs[i+1:], b.attrs[i:])
	b.attrs[i] = a
	b.filters = append(b.filters, nil)
	copy(b.filters[i+1:], b.filters[i:])
	b.filters[i] = f
}

// registerMarks enrolls a freshly stored tuple in any origin mark entry it
// belongs to — either because an upstream relay stamped it or because its
// values match the entry's side signature — so joins with marked partners
// on the other side are suppressed and recorded.
func (j *JoinOp) registerMarks(se state.Entry, port operator.Port) {
	if j.marks.NumOrigins() == 0 {
		return
	}
	for _, e := range j.marks.Origins() {
		sig := e.SigR
		if port == operator.Left {
			sig = e.SigL
		}
		if se.C.HasMark(e.MNS.ID) || (len(sig) > 0 && sig.MatchedBy(se.C)) {
			j.marks.Enroll(e, port == operator.Left, se)
		}
	}
}
