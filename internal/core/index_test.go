package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/operator"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// runKeys executes one engine over the arrivals and returns the sink's
// result keys in delivery order.
func runKeys(cat *stream.Catalog, conj predicate.Conj, shape *plan.Node, arrivals []*stream.Tuple, m core.Mode, noIndex bool) []string {
	b := plan.BuildTree(cat, conj, shape, plan.Options{
		Window: 90 * stream.Second, Mode: m, KeepResults: true, NoStateIndex: noIndex,
	})
	engine.New(b).Run(arrivals)
	return b.Sink.ResultKeys()
}

func sameSequence(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d results with scans, %d with the index", label, len(want), len(got))
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: delivery %d differs: scan=%s indexed=%s", label, i, want[i], got[i])
			return
		}
	}
}

// TestIndexedEquivalentToScan is invariant 4 of DESIGN.md §2 applied to the
// state index: for every execution mode, an indexed run delivers exactly
// the same results in exactly the same sink order as a scan-only run.
// -short keeps one seed and the REF/JIT pair (the jitreport short preset);
// the DOE/Bloom ablations run in the full suite.
func TestIndexedEquivalentToScan(t *testing.T) {
	modes := []struct {
		name string
		m    core.Mode
	}{
		{"REF", core.REF()}, {"JIT", core.JIT()},
		{"DOE", core.DOE()}, {"Bloom", core.BloomJIT()},
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
		modes = modes[:2]
	}
	for _, bushy := range []bool{true, false} {
		cat, conj := predicate.Clique(4)
		shape := plan.Bushy(4)
		if !bushy {
			shape = plan.LeftDeep(4)
		}
		for _, seed := range seeds {
			arrivals := source.Generate(cat, source.UniformConfig(4, 0.8, 5, 5*stream.Minute, seed))
			for _, mode := range modes {
				label := fmt.Sprintf("%s_bushy%v_seed%d", mode.name, bushy, seed)
				scan := runKeys(cat, conj, shape, arrivals, mode.m, true)
				indexed := runKeys(cat, conj, shape, arrivals, mode.m, false)
				sameSequence(t, label, scan, indexed)
			}
		}
	}
}

// crossQuery builds a 3-source query whose root join has no crossing
// predicate: ((A B) C) with only A.x = B.x. The root is a windowed cross
// product, the no-equi-key fallback case of DESIGN.md §3.
func crossQuery() (*stream.Catalog, predicate.Conj, *plan.Node) {
	cat := stream.NewCatalog()
	cat.MustAdd(stream.NewSchema("A", "x"))
	cat.MustAdd(stream.NewSchema("B", "x"))
	cat.MustAdd(stream.NewSchema("C", "y"))
	conj := predicate.Conj{{Left: 0, LCol: 0, Right: 1, RCol: 0}}
	return cat, conj, plan.J(plan.J(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))
}

// TestIndexFallbackCrossProduct verifies that a join without crossing equi
// predicates stays scan-only and that results match an index-disabled run.
func TestIndexFallbackCrossProduct(t *testing.T) {
	cat, conj, shape := crossQuery()
	b := plan.BuildTree(cat, conj, shape, plan.Options{Window: 90 * stream.Second, Mode: core.REF()})
	if len(b.Joins) != 2 {
		t.Fatalf("want 2 joins, got %d", len(b.Joins))
	}
	// Op1 ({A}×{B}) carries the equi key; the root ({A,B}×{C}) must not.
	for p := operator.Port(0); p < 2; p++ {
		if st, _, _ := b.Joins[0].Side(p); !st.Indexed() {
			t.Errorf("Op1 side %v should be indexed", p)
		}
		if st, _, _ := b.Joins[1].Side(p); st.Indexed() {
			t.Errorf("root side %v must be scan-only (cross product)", p)
		}
	}
	modes := []core.Mode{core.REF(), core.JIT()}
	if testing.Short() {
		modes = modes[:1]
	}
	for _, m := range modes {
		arrivals := source.Generate(cat, source.UniformConfig(3, 1.0, 4, 3*stream.Minute, 9))
		scan := runKeys(cat, conj, shape, arrivals, m, true)
		indexed := runKeys(cat, conj, shape, arrivals, m, false)
		if len(scan) == 0 {
			t.Fatal("workload produced no results; test is vacuous")
		}
		sameSequence(t, fmt.Sprintf("cross_%v", m.Detect), scan, indexed)
	}
}

// TestIndexDisabledOption verifies the plan-level switch reaches every
// operator state.
func TestIndexDisabledOption(t *testing.T) {
	cat, conj := predicate.Clique(4)
	b := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
		Window: time90s(), Mode: core.JIT(), NoStateIndex: true,
	})
	for _, j := range b.Joins {
		for p := operator.Port(0); p < 2; p++ {
			if st, _, _ := j.Side(p); st.Indexed() {
				t.Errorf("%s side %v indexed despite NoStateIndex", j.Name(), p)
			}
		}
	}
}

func time90s() stream.Time { return 90 * stream.Second }
