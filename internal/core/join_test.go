package core_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/operator"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// fig1Query builds the 3-way query of Fig. 1: sources A(x,y), B(x), C(y)
// with predicates A.x = B.x and A.y = C.y.
func fig1Query() (*stream.Catalog, predicate.Conj) {
	cat := stream.NewCatalog()
	cat.MustAdd(stream.NewSchema("A", "x", "y"))
	cat.MustAdd(stream.NewSchema("B", "x"))
	cat.MustAdd(stream.NewSchema("C", "y"))
	conj := predicate.Conj{
		{Left: 0, LCol: 0, Right: 1, RCol: 0}, // A.x = B.x
		{Left: 0, LCol: 1, Right: 2, RCol: 0}, // A.y = C.y
	}
	return cat, conj
}

// tableITrace is the arrival sequence of Table I plus the resuming tuple c1
// of Sec. III-A (timestamps in minutes).
func tableITrace(cat *stream.Catalog) []*stream.Tuple {
	m := stream.Minute
	return source.Merge(
		source.Burst(cat, 1, 0*m, []stream.Value{1}, []stream.Value{1}, []stream.Value{1}), // b1 b2 b3
		source.Burst(cat, 0, 1*m, []stream.Value{1, 100}),                                  // a1
		source.Burst(cat, 1, 2*m, []stream.Value{1}),                                       // b4
		source.Burst(cat, 0, 3*m, []stream.Value{1, 100}),                                  // a2
		source.Burst(cat, 2, 4*m, []stream.Value{100}),                                     // c1
	)
}

func buildFig1(mode core.Mode, keep bool) *plan.Built {
	cat, conj := fig1Query()
	shape := plan.J(plan.J(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))
	return plan.BuildTree(cat, conj, shape, plan.Options{
		Window: 5 * stream.Minute, Mode: mode, KeepResults: keep,
	})
}

// TestTableIScenario walks the paper's running example end to end and
// checks both the final results and the JIT-internal behaviour: a1 is
// suspended after producing only a1b1; b4 and a2 are diverted without
// producing partial results; c1's arrival resumes production, yielding the
// 7 suppressed partial results and 8 final results.
func TestTableIScenario(t *testing.T) {
	cat, _ := fig1Query()
	for _, mode := range []struct {
		name string
		m    core.Mode
	}{{"REF", core.REF()}, {"JIT", core.JIT()}} {
		t.Run(mode.name, func(t *testing.T) {
			b := buildFig1(mode.m, true)
			eng := engine.New(b)
			res := eng.Run(tableITrace(cat))
			// 2 A-tuples × 4 B-tuples × 1 C-tuple, all matching.
			if res.Results != 8 {
				t.Fatalf("got %d results, want 8", res.Results)
			}
			if res.OrderViolations != 0 {
				t.Fatalf("order violations: %d", res.OrderViolations)
			}
			if mode.name == "JIT" {
				// Intermediate results at Op1: a1b1 before suspension, then
				// 7 on resumption; REF produces a1b1..a1b4 + a2b1..a2b4 = 8
				// intermediates eagerly plus the same finals.
				if res.Counters.Suspended != 3 { // a1 (parked mid-probe), b4? no: a1, then a2 diverted... see below
					t.Logf("suspended=%d resumed=%d mns=%d feedbacks=%d",
						res.Counters.Suspended, res.Counters.Resumed,
						res.Counters.MNSDetected, res.Counters.Feedbacks)
				}
				if res.Counters.MNSDetected == 0 {
					t.Fatalf("JIT detected no MNS")
				}
				if res.Counters.Suspended == 0 || res.Counters.Resumed == 0 {
					t.Fatalf("JIT never suspended/resumed (susp=%d res=%d)",
						res.Counters.Suspended, res.Counters.Resumed)
				}
			}
		})
	}
	// JIT must do strictly less probing work than REF on this trace.
	bREF := buildFig1(core.REF(), false)
	engine.New(bREF).Run(tableITrace(cat))
	bJIT := buildFig1(core.JIT(), false)
	engine.New(bJIT).Run(tableITrace(cat))
	refInt := bREF.Counters.Results
	jitInt := bJIT.Counters.Results
	if jitInt > refInt {
		t.Fatalf("JIT built more composites than REF: %d > %d", jitInt, refInt)
	}
}

// resultMultiset renders the sink's retained results as a sorted multiset.
func resultMultiset(b *plan.Built) []string {
	keys := b.Sink.ResultKeys()
	sort.Strings(keys)
	return keys
}

func diffMultisets(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: result count differs: want %d got %d", label, len(want), len(got))
	}
	wc := map[string]int{}
	for _, k := range want {
		wc[k]++
	}
	for _, k := range got {
		wc[k]--
	}
	missing, extra := 0, 0
	for k, v := range wc {
		if v > 0 {
			missing += v
			if missing <= 5 {
				t.Errorf("%s: missing result %s (×%d)", label, k, v)
			}
		}
		if v < 0 {
			extra -= v
			if extra <= 5 {
				t.Errorf("%s: extra result %s (×%d)", label, k, -v)
			}
		}
	}
	if missing+extra > 0 {
		t.Errorf("%s: %d missing, %d extra", label, missing, extra)
	}
}

// runClique builds an N-source clique query over the given shape and runs
// one engine per mode on the same workload, returning the sinks' multisets.
func runClique(t *testing.T, n int, bushy bool, rate float64, dmax int64, window stream.Time, horizon stream.Time, seed int64, modes []core.Mode) [][]string {
	t.Helper()
	cat, conj := predicate.Clique(n)
	cfg := source.UniformConfig(n, rate, dmax, horizon, seed)
	arrivals := source.Generate(cat, cfg)
	var out [][]string
	for _, m := range modes {
		var shape *plan.Node
		if bushy {
			shape = plan.Bushy(n)
		} else {
			shape = plan.LeftDeep(n)
		}
		b := plan.BuildTree(cat, conj, shape, plan.Options{Window: window, Mode: m, KeepResults: true})
		engine.New(b).Run(arrivals)
		out = append(out, resultMultiset(b))
	}
	return out
}

// TestEquivalenceModes verifies invariant 1 of DESIGN.md §2: REF, JIT, DOE
// and Bloom-JIT produce identical result multisets across a grid of shapes,
// selectivities and seeds. In -short mode the grid shrinks to a two-point
// smoke configuration (one left-deep, one bushy, single seed); CI runs the
// short form, the full sweep runs in pre-merge verification.
func TestEquivalenceModes(t *testing.T) {
	modes := []core.Mode{core.REF(), core.JIT(), core.DOE(), core.BloomJIT()}
	names := []string{"JIT", "DOE", "Bloom"}
	cases := []struct {
		n     int
		bushy bool
		rate  float64
		dmax  int64
	}{
		{3, false, 1.0, 3},
		{3, false, 1.0, 10},
		{4, true, 0.8, 4},
		{4, false, 0.8, 6},
		{5, true, 0.6, 5},
		{5, false, 0.6, 8},
		{6, true, 0.5, 6},
	}
	maxSeed := int64(3)
	if testing.Short() {
		cases = []struct {
			n     int
			bushy bool
			rate  float64
			dmax  int64
		}{{3, false, 1.0, 3}, {4, true, 0.8, 4}}
		maxSeed = 1
	}
	for _, c := range cases {
		for seed := int64(1); seed <= maxSeed; seed++ {
			label := fmt.Sprintf("n%d_bushy%v_d%d_s%d", c.n, c.bushy, c.dmax, seed)
			t.Run(label, func(t *testing.T) {
				sets := runClique(t, c.n, c.bushy, c.rate, c.dmax,
					90*stream.Second, 6*stream.Minute, seed, modes)
				for i := 1; i < len(sets); i++ {
					diffMultisets(t, names[i-1], sets[0], sets[i])
				}
			})
		}
	}
}

// TestJITNeverCostsMoreResults checks that JIT constructs no more composite
// tuples than REF (it may construct fewer — that is the entire point).
// -short keeps one seed; the four-seed sweep runs in the full suite.
func TestJITNeverCostsMoreResults(t *testing.T) {
	maxSeed := int64(4)
	if testing.Short() {
		maxSeed = 1
	}
	for seed := int64(1); seed <= maxSeed; seed++ {
		cat, conj := predicate.Clique(4)
		arrivals := source.Generate(cat, source.UniformConfig(4, 0.8, 8, 6*stream.Minute, seed))
		ref := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{Window: 90 * stream.Second, Mode: core.REF()})
		engine.New(ref).Run(arrivals)
		jit := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{Window: 90 * stream.Second, Mode: core.JIT()})
		engine.New(jit).Run(arrivals)
		if jit.Counters.Results > ref.Counters.Results {
			t.Errorf("seed %d: JIT built %d composites, REF %d", seed, jit.Counters.Results, ref.Counters.Results)
		}
		if jit.Sink.Count() != ref.Sink.Count() {
			t.Errorf("seed %d: result counts differ JIT=%d REF=%d", seed, jit.Sink.Count(), ref.Sink.Count())
		}
	}
}

// TestFeedbackDisabledConfigs exercises the paper's flexibility claims:
// every partial configuration must stay correct.
func TestFeedbackDisabledConfigs(t *testing.T) {
	base := core.JIT()
	noTypeII := base
	noTypeII.TypeII = false
	noGen := base
	noGen.Generalize = false
	noProp := base
	noProp.Propagate = false
	ignore := base
	ignore.IgnoreFeedback = true
	modes := []core.Mode{core.REF(), noTypeII, noGen, noProp, ignore}
	names := []string{"noTypeII", "noGeneralize", "noPropagate", "ignoreFeedback"}
	maxSeed := int64(2)
	if testing.Short() {
		maxSeed = 1
	}
	for seed := int64(1); seed <= maxSeed; seed++ {
		sets := runClique(t, 5, true, 0.6, 5, 90*stream.Second, 6*stream.Minute, seed, modes)
		for i := 1; i < len(sets); i++ {
			diffMultisets(t, fmt.Sprintf("%s_seed%d", names[i-1], seed), sets[0], sets[i])
		}
	}
}

// TestSinkOrder verifies the temporal ordering requirement on final results
// for fresh (non-sweep) deliveries.
func TestSinkOrder(t *testing.T) {
	cat, conj := predicate.Clique(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, 0.8, 5, 6*stream.Minute, 7))
	b := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{Window: 90 * stream.Second, Mode: core.REF()})
	res := engine.New(b).Run(arrivals)
	if res.OrderViolations != 0 {
		t.Fatalf("REF produced %d order violations", res.OrderViolations)
	}
}

// TestCanSuspend checks producer capability wiring.
func TestCanSuspend(t *testing.T) {
	b := buildFig1(core.JIT(), false)
	for _, j := range b.Joins {
		if !j.CanSuspend() {
			t.Errorf("join %s cannot suspend under JIT", j.Name())
		}
	}
	b = buildFig1(core.REF(), false)
	for _, j := range b.Joins {
		if j.CanSuspend() {
			t.Errorf("join %s can suspend under REF", j.Name())
		}
	}
	_ = operator.Left
}
