package core

import (
	"repro/internal/feedback"
	"repro/internal/operator"
	"repro/internal/state"
	"repro/internal/stream"
)

// Feedback implements operator.Producer — the Handle_Feedback procedure of
// Fig. 6. Per the scheduling policies of Sec. III-B/C the handling is
// pre-emptive and synchronous: propagation happens before local handling,
// and for resumptions the demanded partial results S_Π are returned to the
// calling consumer.
func (j *JoinOp) Feedback(msg feedback.Message) []*stream.Composite {
	if !j.mode.enabled() || j.mode.IgnoreFeedback {
		return nil
	}
	j.trace.Feedback(j.name, msg.Cmd.String(), len(msg.MNS))
	switch msg.Cmd {
	case feedback.Suspend:
		for _, m := range msg.MNS {
			j.handleSuspend(m)
		}
	case feedback.Resume:
		var out []*stream.Composite
		for _, m := range msg.MNS {
			j.handleResume(m, &out)
		}
		return out
	case feedback.Mark:
		if j.mode.TypeII {
			for _, m := range msg.MNS {
				j.marks.AddRelay(m)
			}
		}
	case feedback.Unmark:
		for _, m := range msg.MNS {
			j.marks.RemoveRelay(m.Key())
		}
	}
	return nil
}

// handleSuspend dispatches one MNS of a suspension feedback by type:
// Ø (total suspension, the DOE case), Type I (contained in one input side),
// or Type II (spanning both sides → mark-result protocol).
func (j *JoinOp) handleSuspend(m *feedback.MNS) {
	if m.IsEmpty() {
		j.suspendTotal(m)
		return
	}
	switch {
	case j.in[operator.Left].sources.Contains(m.Sources):
		j.suspendTypeI(j.in[operator.Left], m)
	case j.in[operator.Right].sources.Contains(m.Sources):
		j.suspendTypeI(j.in[operator.Right], m)
	default:
		j.suspendTypeII(m)
	}
}

// suspendTotal handles the Ø MNS: all production stops. Arrivals on both
// sides are diverted to the Ø blacklist entries; existing state tuples stay
// in place (they are fully caught up and will not be probed, since no new
// arrivals reach the states). The suspension propagates upstream because a
// fully suspended operator has no demand for inputs.
func (j *JoinOp) suspendTotal(m *feedback.MNS) {
	for p := operator.Port(0); p < 2; p++ {
		s := j.in[p]
		if j.mode.Propagate && s.prod != nil && s.prod.CanSuspend() {
			j.ctr.Feedbacks++
			s.prod.Feedback(feedback.Message{Cmd: feedback.Suspend, MNS: []*feedback.MNS{m}})
		}
	}
	for p := operator.Port(0); p < 2; p++ {
		s := j.in[p]
		entry, _ := s.black.Ensure(m)
		// Mark any in-flight probing input on this port for deferred
		// parking: Ø covers everything.
		for _, f := range j.frames {
			if f.parked || f.parkEntry != nil || f.port != p {
				continue
			}
			f.parkEntry = entry
		}
	}
}

// suspendTypeI implements Suspend_Production for a Type I MNS on side s:
// propagate upstream, then move matching tuples (by signature when
// generalization is on, else exact super-tuples of the anchor) from the
// state to the blacklist entry, recording their resumption cursors.
func (j *JoinOp) suspendTypeI(s *side, m *feedback.MNS) {
	if j.exact && m.Expiry <= j.now {
		// Born-expired anchor (exact-mode recovery cascades can detect
		// MNSes on composites already at their window boundary): parking
		// under it would only bounce the tuples back out at the very next
		// sweep — leave production live instead.
		return
	}
	o := j.in[s.port.Opposite()]
	if j.mode.Propagate && s.prod != nil && s.prod.CanSuspend() {
		j.ctr.Feedbacks++
		s.prod.Feedback(feedback.Message{Cmd: feedback.Suspend, MNS: []*feedback.MNS{m}})
	}
	entry, created := s.black.Ensure(m)
	if !created {
		// Already suspended: the consumer re-detected the MNS on a queued
		// super-tuple; the entry's expiry has been extended, nothing else
		// to do (Sec. III-B).
		return
	}
	// Mark a matching in-flight probing input on this port for parking: "if
	// right before handling the feedback, OP was joining a super-tuple t of
	// s, t is also inserted to BL" (Sec. IV-B). Parking is deferred until
	// the input's current probe completes (see probeFrame.parkEntry).
	for _, f := range j.frames {
		if f.parked || f.parkEntry != nil || f.port != s.port {
			continue
		}
		if j.mnsMatches(m, f.input) {
			f.parkEntry = entry
		}
	}
	// Move matching state tuples. Tuples carrying an active mark decline
	// suspension (they must stay joinable for the mark protocol; JIT is
	// best-effort, so leaving them active is always sound).
	opFrame := j.topFrameOn(o.port)
	removed := s.st.RemoveIf(func(c *stream.Composite) bool {
		return j.mnsMatches(m, c)
	})
	for _, se := range removed {
		cursor := o.seq.Watermark()
		if opFrame != nil && opFrame.lastPartner < se.Seq {
			// The in-flight opposite input has not reached this tuple yet;
			// exclude it from the "already joined" claim.
			cursor = opFrame.seq - 1
		}
		// The watermark claim is false for opposite tuples that are
		// currently suspended with scan cursors short of this tuple: their
		// aborted or never-started probes never reached it. Record those
		// pairs explicitly so resumption can generate them (deduplicated
		// against Done if the other side resumes first) — without this,
		// mutually suspended partners across operators deadlock and lose
		// results (DESIGN.md §2).
		var pending []uint64
		for _, oe := range o.black.Entries() {
			for i := range oe.Tuples {
				w := &oe.Tuples[i]
				if w.Cursor < se.Seq && w.E.Seq <= cursor && !w.IsDone(se.Seq) {
					pending = append(pending, w.E.Seq)
				}
			}
		}
		s.black.Park(entry, feedback.Suspended{E: se, Cursor: cursor, Pending: pending})
		j.ctr.Suspended++
		j.trace.Suspend(j.name, 1)
	}
}

// suspendTypeII implements the mark-result protocol of Sec. IV-B: the MNS
// is decomposed over the two input sides; upstream producers are told to
// mark matching outputs; locally an origin entry suppresses joins between
// left-marked and right-marked tuples.
func (j *JoinOp) suspendTypeII(m *feedback.MNS) {
	if !j.mode.TypeII {
		return // explicitly permitted: implementations may skip Type II
	}
	L, R := j.in[operator.Left], j.in[operator.Right]
	mL, mR := restrictMNS(m, L.sources), restrictMNS(m, R.sources)
	if j.mode.Propagate && L.prod != nil && L.prod.CanSuspend() && len(mL.Sig) > 0 {
		j.ctr.Feedbacks++
		L.prod.Feedback(feedback.Message{Cmd: feedback.Mark, MNS: []*feedback.MNS{mL}})
	}
	if j.mode.Propagate && R.prod != nil && R.prod.CanSuspend() && len(mR.Sig) > 0 {
		j.ctr.Feedbacks++
		R.prod.Feedback(feedback.Message{Cmd: feedback.Mark, MNS: []*feedback.MNS{mR}})
	}
	e := j.marks.ActivateOrigin(m, L.sources, R.sources)
	if e == nil {
		return // duplicate; expiry extended
	}
	j.markScan(e, L, e.SigL)
	j.markScan(e, R, e.SigR)
}

// markScan marks the existing state tuples (and any in-flight input) of one
// side that match the entry's side signature.
func (j *JoinOp) markScan(e *feedback.OriginEntry, s *side, sig feedback.Signature) {
	if len(sig) == 0 {
		return
	}
	for _, se := range s.st.Entries() {
		j.ctr.Comparisons += uint64(len(sig))
		if sig.MatchedBy(se.C) {
			j.marks.Enroll(e, s.port == operator.Left, se)
		}
	}
	for _, f := range j.frames {
		if f.parked || f.port != s.port {
			continue
		}
		j.ctr.Comparisons += uint64(len(sig))
		if sig.MatchedBy(f.input) {
			// The in-flight input becomes marked mid-probe: the rest of its
			// scan applies suppression and records the suppressed pairs.
			j.marks.Enroll(e, s.port == operator.Left, stateEntryOf(f))
		}
	}
}

// handleResume dispatches one MNS of a resumption feedback and appends the
// demanded partial results to out.
func (j *JoinOp) handleResume(m *feedback.MNS, out *[]*stream.Composite) {
	if m.IsEmpty() {
		j.resumeTotal(m, out)
		return
	}
	switch {
	case j.in[operator.Left].sources.Contains(m.Sources):
		j.resumeTypeI(j.in[operator.Left], m, out)
	case j.in[operator.Right].sources.Contains(m.Sources):
		j.resumeTypeI(j.in[operator.Right], m, out)
	default:
		j.resumeTypeII(m, out)
	}
}

// resumeTotal lifts an Ø suspension: propagate upstream first (gathering the
// inputs suppressed there), process them, then reactivate the locally
// diverted arrivals.
func (j *JoinOp) resumeTotal(m *feedback.MNS, out *[]*stream.Composite) {
	for p := operator.Port(0); p < 2; p++ {
		s := j.in[p]
		if j.mode.Propagate && s.prod != nil && s.prod.CanSuspend() {
			j.ctr.Feedbacks++
			ups := s.prod.Feedback(feedback.Message{Cmd: feedback.Resume, MNS: []*feedback.MNS{m}})
			j.processUpstream(s, ups, out)
		}
	}
	for p := operator.Port(0); p < 2; p++ {
		s := j.in[p]
		if e, ok := s.black.Take(m.Key()); ok {
			j.reactivate(s, e, out)
		}
	}
}

// resumeTypeI implements Resume_Production for a Type I MNS: propagate
// upstream first and process the returned inputs, then reactivate the
// entry's suspended tuples with their catch-up scans.
func (j *JoinOp) resumeTypeI(s *side, m *feedback.MNS, out *[]*stream.Composite) {
	if j.mode.Propagate && s.prod != nil && s.prod.CanSuspend() {
		j.ctr.Feedbacks++
		ups := s.prod.Feedback(feedback.Message{Cmd: feedback.Resume, MNS: []*feedback.MNS{m}})
		j.processUpstream(s, ups, out)
	}
	if e, ok := s.black.Take(m.Key()); ok {
		j.reactivate(s, e, out)
	}
}

// processUpstream feeds inputs returned by an upstream resumption through
// normal processing (diversion check, probe, insert), collecting results.
func (j *JoinOp) processUpstream(s *side, ups []*stream.Composite, out *[]*stream.Composite) {
	for _, u := range ups {
		if j.exact {
			// The composite may be past its own window here; pairValid
			// inside the probes admits exactly the REF-formed pairs, and an
			// expired composite stays ephemeral (probe-only).
			j.activate(activation{c: u, port: s.port, collect: out,
				divertCheck: true, ephemeral: u.MinTS+j.window <= j.now})
			continue
		}
		if u.MinTS+j.window <= j.now {
			continue
		}
		if j.divert(u, s.port) {
			continue
		}
		j.activate(activation{c: u, port: s.port, collect: out})
	}
}

// reactivate returns an entry's surviving tuples to the active state,
// performing the exactly-once catch-up join (opposite sequence beyond each
// tuple's cursor, over both the opposite state and blacklists).
func (j *JoinOp) reactivate(s *side, e *feedback.Entry, out *[]*stream.Composite) {
	s.black.ReleaseTuples(e)
	for _, susp := range e.Tuples {
		if !j.exact && susp.E.C.MinTS+j.window <= j.now {
			continue // expired while suspended; its results were never demanded
		}
		j.ctr.Resumed++
		j.trace.Resume(j.name, 1)
		ephemeral := susp.E.C.MinTS+j.window <= j.now
		j.activate(activation{
			c:         susp.E.C,
			port:      s.port,
			seq:       susp.E.Seq,
			reuse:     true,
			cursor:    susp.Cursor,
			scanBlack: true,
			collect:   out,
			done:      susp.Done,
			pending:   susp.Pending,
			ephemeral: ephemeral,
		})
		if ephemeral && j.exact {
			// An ephemeral recovery vanishes from the live structures, but a
			// later recovery emission on the opposite side may still form a
			// REF-valid pair with it — retire it to the graveyard, like a
			// state entry purged at window close (probeGrave).
			s.retire(state.Entry{C: susp.E.C, Seq: susp.E.Seq})
		}
	}
}

// resumeTypeII dissolves an origin mark entry: unmark upstream, then
// generate the suppressed marked×marked pairs exactly once via the XOR
// cursor rule.
func (j *JoinOp) resumeTypeII(m *feedback.MNS, out *[]*stream.Composite) {
	if !j.mode.TypeII {
		return
	}
	e, ok := j.marks.TakeOrigin(m.Key())
	if !ok {
		return
	}
	j.propagateUnmark(e.MNS)
	j.unmarkCatchup(e, out)
}

// propagateUnmark tells upstream relays to stop stamping for this MNS.
func (j *JoinOp) propagateUnmark(m *feedback.MNS) {
	L, R := j.in[operator.Left], j.in[operator.Right]
	mL, mR := restrictMNS(m, L.sources), restrictMNS(m, R.sources)
	if j.mode.Propagate && L.prod != nil && L.prod.CanSuspend() && len(mL.Sig) > 0 {
		j.ctr.Feedbacks++
		L.prod.Feedback(feedback.Message{Cmd: feedback.Unmark, MNS: []*feedback.MNS{mL}})
	}
	if j.mode.Propagate && R.prod != nil && R.prod.CanSuspend() && len(mR.Sig) > 0 {
		j.ctr.Feedbacks++
		R.prod.Feedback(feedback.Message{Cmd: feedback.Unmark, MNS: []*feedback.MNS{mR}})
	}
}

// unmarkCatchup generates the pairs that were suppressed while the mark was
// active — exactly the entry's recorded pending pairs. A pair still covered
// by another active mark is deferred to that entry; a pair whose endpoint is
// an in-flight probe that will still reach the partner live is left to that
// scan. Generation is deduplicated per pair.
func (j *JoinOp) unmarkCatchup(e *feedback.OriginEntry, out *[]*stream.Composite) {
	id := e.MNS.ID
	L := j.in[operator.Left]
	gen := make(map[[2]uint64]bool, len(e.Pending))
	for _, p := range e.Pending {
		key := [2]uint64{p.L.Seq, p.R.Seq}
		if gen[key] {
			continue
		}
		gen[key] = true
		if j.exact {
			if !j.pairValid(p.L.C, p.R.C) {
				continue // outside the window span: REF never formed it
			}
		} else if p.L.C.MinTS+j.window <= j.now || p.R.C.MinTS+j.window <= j.now {
			continue // expired: fruitless partial result, never needed
		}
		// If either endpoint is an in-flight probing input whose paused
		// scan has not yet reached the partner's slot, the live scan will
		// generate the pair itself once the mark is gone.
		if g := j.frameOf(p.L.C); g != nil && g.lastPartner < p.R.Seq {
			continue
		}
		if g := j.frameOf(p.R.C); g != nil && g.lastPartner < p.L.Seq {
			continue
		}
		if other := j.marks.SuppressedBy(p.L.C, p.R.C, id); other != 0 {
			// Still covered by another active mark: defer the pair there.
			j.ctr.SuppressedPairs++
			if oe := j.marks.EntryByID(other); oe != nil {
				j.marks.RecordSuppressed(oe, p.L, p.R)
			}
			continue
		}
		j.ctr.CatchUpJoins++
		_, full, n := j.evalAtoms(p.L.C, L, p.R.C, false)
		j.ctr.Comparisons += uint64(n)
		if !full {
			continue
		}
		res := stream.Join(p.L.C, p.R.C)
		j.ctr.Results++
		if !j.marks.Empty() {
			j.ctr.Comparisons += uint64(j.marks.StampOutput(res))
		}
		*out = append(*out, res)
	}
	j.marks.ReleasePending(e)
	for _, l := range e.Left {
		l.C.RemoveMark(id)
	}
	for _, r := range e.Right {
		r.C.RemoveMark(id)
	}
}

// Sweep is called by the engine before each arrival: expired MNS anchors
// release their surviving suspended tuples (which re-enter processing and,
// if still unmatched, are re-suspended under fresh anchors by the
// downstream consumer), and expired mark entries run their unmark catch-up.
// See DESIGN.md §2 (expiry sweep).
func (j *JoinOp) Sweep(now stream.Time) {
	if now > j.now {
		j.now = now
	}
	if !j.mode.enabled() {
		return
	}
	if j.exact {
		j.sweepExact()
		return
	}
	j.purge()
	if !j.marks.Empty() {
		j.marks.PurgeRelays(j.now)
		if j.marks.HasExpired(j.now) {
			for _, e := range j.marks.TakeExpiredOrigins(j.now) {
				var out []*stream.Composite
				j.propagateUnmark(e.MNS)
				j.unmarkCatchup(e, &out)
				for _, r := range out {
					j.emit(r)
				}
			}
		}
	}
	for p := operator.Port(0); p < 2; p++ {
		s := j.in[p]
		if !s.black.HasExpired(j.now) {
			continue
		}
		for _, e := range s.black.TakeExpired(j.now) {
			var out []*stream.Composite
			j.reactivate(s, e, &out)
			for _, r := range out {
				j.emit(r)
			}
		}
	}
}

// sweepExact is the exact-delivery sweep (DESIGN.md §4): recoveries run
// before purging, so pairs whose generation was deferred to an expiry
// boundary are produced while their partners are still reachable. Order:
// expired mark entries run their unmark catch-up, expired blacklist anchors
// reactivate their entries, parked tuples whose own window closed get a
// last-gasp catch-up (generating the pairs REF formed live while they were
// suspended), and only then does window expiry garbage-collect the states.
func (j *JoinOp) sweepExact() {
	if !j.marks.Empty() {
		j.marks.PurgeRelays(j.now)
		if j.marks.HasExpired(j.now) {
			for _, e := range j.marks.TakeExpiredOrigins(j.now) {
				var out []*stream.Composite
				j.propagateUnmark(e.MNS)
				j.unmarkCatchup(e, &out)
				for _, r := range out {
					j.emit(r)
				}
			}
		}
	}
	for p := operator.Port(0); p < 2; p++ {
		s := j.in[p]
		if !s.black.HasExpired(j.now) {
			continue
		}
		for _, e := range s.black.TakeExpired(j.now) {
			var out []*stream.Composite
			j.reactivate(s, e, &out)
			for _, r := range out {
				j.emit(r)
			}
		}
	}
	// Last gasp: a parked tuple whose own window closes under a still-live
	// anchor can never be demanded again (any future pair would violate the
	// window span), so its deferred pairs are generated now — exactly the
	// pairs REF formed while it sat suspended — and the tuple is dropped.
	for p := operator.Port(0); p < 2; p++ {
		s := j.in[p]
		for _, susp := range s.black.TakeExpiredTuples(j.now, j.window) {
			j.ctr.Purged++
			j.ctr.Resumed++
			j.trace.Resume(j.name, 1)
			var out []*stream.Composite
			j.activate(activation{
				c:         susp.E.C,
				port:      s.port,
				seq:       susp.E.Seq,
				reuse:     true,
				cursor:    susp.Cursor,
				scanBlack: true,
				collect:   &out,
				done:      susp.Done,
				pending:   susp.Pending,
				ephemeral: true,
			})
			// Retire the tuple to the graveyard (see reactivate): its own
			// catch-up is complete, but it can still be the partner of a
			// late recovery emission on the opposite side.
			s.retire(state.Entry{C: susp.E.C, Seq: susp.E.Seq})
			for _, r := range out {
				j.emit(r)
			}
		}
	}
	j.purge()
}

// NoDeadline is the sentinel NextDeadline returns when the operator has no
// pending timer work: nothing it stores can expire, so Sweep is a no-op at
// any time and the engine schedules no timer event for it (DESIGN.md §4).
const NoDeadline = feedback.NoExpiry

// NextDeadline implements the deadline contract of DESIGN.md §4: it returns
// the earliest application time at which Sweep(now) would have any effect —
// the minimum over every expiry the sweep acts on. For a time t strictly
// below the returned deadline, Sweep(t) is exactly a no-op (no purge, no
// reactivation, no counter movement), which is what lets the engine skip it.
// The components:
//
//   - window expiry of stored state tuples (both sides): min MinTS + w,
//   - blacklist anchor expiry (both sides): suspended tuples reactivate,
//   - window expiry of suspended (parked) tuples: min MinTS + w,
//   - MNS buffer expiry (both sides): forgotten demands are purged,
//   - mark origin / relay expiry: unmark catch-up generates pending pairs,
//   - window expiry of pending suppressed-pair endpoints: min MinTS + w.
//
// The underlying minima are cached lower bounds (state / feedback min
// tracking): after removals they may be momentarily stale-low, so a deadline
// can fire early — a no-op sweep — but never late. REF operators report
// NoDeadline: their Sweep is unconditionally a no-op.
func (j *JoinOp) NextDeadline() stream.Time {
	if !j.mode.enabled() {
		return NoDeadline
	}
	d := NoDeadline
	for p := 0; p < 2; p++ {
		s := j.in[p]
		if ts, ok := s.st.MinTS(); ok && ts+j.window < d {
			d = ts + j.window
		}
		if e := s.black.NextAnchorExpiry(); e < d {
			d = e
		}
		if ts, ok := s.black.NextTupleMinTS(); ok && ts+j.window < d {
			d = ts + j.window
		}
		if e := s.buf.NextExpiry(); e < d {
			d = e
		}
	}
	if e := j.marks.NextExpiry(); e < d {
		d = e
	}
	// Pending suppressed pairs: in legacy mode their window expiry is a
	// purge event; in exact mode they are retained until their mark's
	// unmark catch-up (covered by NextExpiry above), so no deadline.
	if !j.exact {
		if ts, ok := j.marks.NextPendingMinTS(); ok && ts+j.window < d {
			d = ts + j.window
		}
	}
	return d
}

// InvalidateDeadlineCaches flushes every cached minimum NextDeadline reads,
// so the next call is exact. The engine uses it as a liveness valve: a
// cached lower bound can go stale-low when a shared MNS descriptor's expiry
// is extended through another structure, and a drain driven by a deadline
// that never advances would otherwise spin (DESIGN.md §4).
func (j *JoinOp) InvalidateDeadlineCaches() {
	for p := 0; p < 2; p++ {
		s := j.in[p]
		s.st.InvalidateMinCache()
		s.black.InvalidateMinCaches()
		s.buf.InvalidateMinCaches()
	}
	j.marks.InvalidateMinCaches()
}

// mnsMatches applies the configured matching rule: value signature when
// generalization is on, exact anchor super-tuple otherwise.
func (j *JoinOp) mnsMatches(m *feedback.MNS, c *stream.Composite) bool {
	if m.IsEmpty() {
		return true
	}
	j.ctr.Comparisons += uint64(len(m.Sig))
	if j.mode.Generalize {
		return m.Sig.MatchedBy(c)
	}
	return m.Anchor != nil && m.Anchor.IsSubTuple(c)
}

// frameOf returns the in-flight probe frame whose input is exactly c, if
// any — the composite is then not yet inserted into its state and its scan
// position (lastPartner) determines which pairs it will still produce live.
func (j *JoinOp) frameOf(c *stream.Composite) *probeFrame {
	for i := len(j.frames) - 1; i >= 0; i-- {
		if j.frames[i].input == c && !j.frames[i].parked {
			return j.frames[i]
		}
	}
	return nil
}

// topFrameOn returns the innermost in-flight probe frame on the given port.
func (j *JoinOp) topFrameOn(p operator.Port) *probeFrame {
	for i := len(j.frames) - 1; i >= 0; i-- {
		if j.frames[i].port == p && !j.frames[i].parked {
			return j.frames[i]
		}
	}
	return nil
}

// restrictMNS projects an MNS onto one input side's sources (Type II
// decomposition); the mark id is shared so stamped outputs are recognised.
func restrictMNS(m *feedback.MNS, set stream.SourceSet) *feedback.MNS {
	return &feedback.MNS{
		ID:      m.ID,
		Sources: m.Sources & set,
		Sig:     m.Sig.Restrict(set),
		Expiry:  m.Expiry,
	}
}

func stateEntryOf(f *probeFrame) state.Entry {
	return state.Entry{C: f.input, Seq: f.seq}
}
