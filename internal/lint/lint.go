// Package lint is the repo's static-invariant framework (DESIGN.md §11): a
// stdlib-only analogue of golang.org/x/tools/go/analysis, sized to this
// module. The headline guarantees — bit-identical counters across modes,
// shards and traced-vs-untraced runs, REF-order final delivery, byte-stable
// RESULTS and checkpoint goldens — rest on cross-cutting code invariants
// (no unordered map iteration on result paths, no wall clock in the
// event-time engine, every counter field merged, tracing only through the
// nil-safe obs.Tracer). The runtime reflection pins and equivalence sweeps
// catch violations late and only on exercised paths; the analyzers in
// internal/lint/* catch them at `go vet` time, on every path.
//
// The framework is deliberately x/tools-shaped (Analyzer, Pass, Reportf)
// so the suite could migrate onto go/analysis unchanged if the module ever
// takes on that dependency; it is hand-rolled here because the repo builds
// offline from the standard library alone.
//
// # Suppressions
//
// A finding is silenced by annotating the flagged line (or the line
// directly above it) with
//
//	//jitlint:allow <analyzer> <reason>
//
// The reason is mandatory — the suppaudit analyzer rejects bare or
// unknown-analyzer annotations — and every annotation must earn its keep:
// the driver reports an allow that suppressed nothing as a finding, so
// stale suppressions are cleaned up with the violation they excused.
// `jitlint -inventory` prints the repo-wide suppression inventory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //jitlint:allow annotations.
	Name string
	// Doc is the one-paragraph description `jitlint -help` prints: the
	// invariant, and which runtime guarantee it protects.
	Doc string
	// Packages restricts which packages the analyzer inspects, matched
	// against the final import-path element ("engine" matches
	// repro/internal/engine). Empty means every package.
	Packages []string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer inspects the package with the
// given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	for _, p := range a.Packages {
		if p == base {
			return true
		}
	}
	return false
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test files, in filename order.
	Files []*ast.File
	// Path is the package's import path, Pkg its type-checked form and
	// Info the recorded type facts (Types, Defs, Uses, Selections).
	Path string
	Pkg  *types.Package
	Info *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the file:line:col: [analyzer] message form
// jitlint prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiags orders findings for stable output: by file, line, column,
// analyzer, message.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
