// Package suite registers the jitlint analyzers. It exists apart from the
// framework so analyzer packages can import repro/internal/lint without a
// cycle; cmd/jitlint and the dogfood test both consume this one list.
package suite

import (
	"repro/internal/lint"
	"repro/internal/lint/countersmerge"
	"repro/internal/lint/maporder"
	"repro/internal/lint/suppaudit"
	"repro/internal/lint/tracedisc"
	"repro/internal/lint/wallclock"
)

// All returns the full analyzer suite, in name order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		countersmerge.Analyzer,
		maporder.Analyzer,
		suppaudit.Analyzer,
		tracedisc.Analyzer,
		wallclock.Analyzer,
	}
}
