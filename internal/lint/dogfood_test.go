package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
	"repro/internal/lint/suite"
)

// TestDogfood runs the full analyzer suite over the whole repository and
// demands a clean tree: every invariant violation is either fixed or
// carries a justified //jitlint:allow. Skipped under -short — CI runs the
// identical check as an explicit `go run ./cmd/jitlint ./...` step, and
// type-checking the whole module takes a few seconds.
func TestDogfood(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint is the CI jitlint step; skip in the short loop")
	}
	abs, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	root := moduleRoot(t, abs)
	l, err := load.New(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(l, suite.All(), dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Findings {
		t.Errorf("%s", d)
	}
	if len(res.Findings) > 0 {
		t.Errorf("%d finding(s): fix the site or add a justified //jitlint:allow", len(res.Findings))
	}
}
