package tracedisc_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/tracedisc"
)

func TestTracedisc(t *testing.T) {
	linttest.Run(t, "testdata/src/engine", tracedisc.Analyzer)
}

// TestTracediscScope checks the package filter: sink construction on the
// harness side is wiring, not emission.
func TestTracediscScope(t *testing.T) {
	linttest.Run(t, "testdata/src/exp", tracedisc.Analyzer)
}
