// Package tracedisc enforces the observability discipline of DESIGN.md §9
// in the engine-path packages: trace emission goes through the nil-safe
// *obs.Tracer methods, never through direct obs.Sink access. A nil Tracer
// IS the disabled observability layer — every Tracer method nil-checks its
// receiver, so instrumented call sites cost a pointer test when tracing is
// off. Code that holds a Sink, calls Emit, or builds obs.Event values
// directly re-creates the always-on cost and ordering hazards the Tracer
// indirection exists to prevent, and would bypass the transparency
// contract (byte-identical counters traced vs untraced) the CI gate pins.
package tracedisc

import (
	"go/ast"

	"repro/internal/lint"
)

// InstrumentedPackages are the engine-path packages that carry trace
// instrumentation (matched by import-path base). The harness sides (exp,
// report, the CLIs) construct sinks and tracers — that is wiring, not
// emission, and stays out of scope.
var InstrumentedPackages = []string{
	"adapt", "core", "engine", "operator", "plan", "shard",
}

// forbidden are the obs identifiers whose very mention in an instrumented
// package means emission is bypassing the Tracer: the Sink interface and
// its implementations, the EventSource capability, the raw Event type and
// the Emit method.
var forbidden = map[string]bool{
	"Sink": true, "CountingSink": true, "MemorySink": true, "TeeSink": true,
	"RingSink": true, "EventSource": true, "Event": true, "Emit": true,
}

// obsPathSuffix identifies the obs package by import path without tying
// the analyzer to the module name (testdata fixtures import the real
// package).
const obsPathSuffix = "internal/obs"

// Analyzer is the tracedisc check.
var Analyzer = &lint.Analyzer{
	Name: "tracedisc",
	Doc: "engine-path packages must emit trace events only through nil-safe " +
		"*obs.Tracer methods, never via direct obs.Sink/Event/Emit access",
	Packages: InstrumentedPackages,
	Run:      run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || !forbidden[obj.Name()] {
				return true
			}
			p := obj.Pkg().Path()
			if p != obsPathSuffix && !hasSuffix(p, "/"+obsPathSuffix) {
				return true
			}
			pass.Reportf(id.Pos(),
				"direct obs.%s access in instrumented package %s: emit through the nil-safe "+
					"*obs.Tracer methods so disabled tracing stays a pointer test (DESIGN.md §9)",
				obj.Name(), pass.Path)
			return true
		})
	}
	return nil
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
