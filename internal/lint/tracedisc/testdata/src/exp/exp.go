// Package exp is a tracedisc scope fixture: harness-side packages wire
// sinks and tracers together, which is construction, not emission.
package exp

import "repro/internal/obs"

func wire() (*obs.MemorySink, *obs.Tracer) {
	sink := &obs.MemorySink{}
	return sink, obs.New(obs.Options{Sink: sink})
}
