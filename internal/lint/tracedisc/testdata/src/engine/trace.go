// Package engine is a tracedisc fixture: direct obs.Sink/Event/Emit access
// is flagged in an instrumented package, *obs.Tracer methods are the
// sanctioned path. It imports the real repro/internal/obs — the analyzer
// matches the package by path suffix, not by module name.
package engine

import "repro/internal/obs"

// Flagged: holding a raw sink re-creates the always-on emission cost the
// Tracer indirection exists to prevent.
type emitter struct {
	sink obs.Sink // want "direct obs\\.Sink access"
}

// Flagged: building an Event and calling Emit bypass the nil-safe Tracer.
func bypass(s obs.Sink) { // want "direct obs\\.Sink access"
	s.Emit(obs.Event{}) // want "direct obs\\.Emit access" "direct obs\\.Event access"
}

// Not flagged: the Tracer methods are the discipline, nil-safe when
// tracing is off.
func sanctioned(tr *obs.Tracer) {
	tr.Watermark(0)
	tr.Probe("op", 0, 0)
}
