package countersmerge_test

import (
	"testing"

	"repro/internal/lint/countersmerge"
	"repro/internal/lint/linttest"
)

func TestCountersmergeMetrics(t *testing.T) {
	linttest.Run(t, "testdata/src/metrics", countersmerge.Analyzer)
}

func TestCountersmergeObs(t *testing.T) {
	linttest.Run(t, "testdata/src/obs", countersmerge.Analyzer)
}

// TestCountersmergeDrift checks the config-drift diagnostic: a target
// whose merge function disappears is reported, not skipped.
func TestCountersmergeDrift(t *testing.T) {
	linttest.Run(t, "testdata/src/drift/metrics", countersmerge.Analyzer)
}
