// Package countersmerge is the compile-time form of the reflection merge
// pins: every field of the configured measurement structs must be
// referenced in each of their merge functions, so a counter added in a
// future PR cannot silently vanish from shard merges, sampler deltas or
// histogram aggregation. The runtime tests keep the other half of the
// contract — that the merge *semantics* are right (sums sum, deltas
// invert); this analyzer owns the exhaustiveness half and catches it on
// every build, not just on exercised paths.
package countersmerge

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Target names one struct and the functions that must touch every one of
// its fields. Funcs resolve to methods on the type first, then to
// package-level functions (MergeSeries merges Sample field-wise without
// being a method of it).
type Target struct {
	Package string // import-path base the struct lives in
	Type    string
	Funcs   []string
}

// Targets is the audited merge surface: the shard/adapt counter merge, the
// per-operator stat merge and delta, the latency-histogram merge and the
// sampled-series merge. metrics.Counters deliberately has no Delta — the
// obs sampler derives deltas by reflection (obs.counterDelta), which
// covers new fields automatically.
var Targets = []Target{
	{Package: "metrics", Type: "Counters", Funcs: []string{"Add"}},
	{Package: "metrics", Type: "OpStats", Funcs: []string{"Add", "Delta"}},
	{Package: "obs", Type: "Histogram", Funcs: []string{"Merge"}},
	{Package: "obs", Type: "Sample", Funcs: []string{"MergeSeries"}},
}

// Analyzer is the countersmerge check.
var Analyzer = &lint.Analyzer{
	Name: "countersmerge",
	Doc: "every field of the measurement structs (metrics.Counters, metrics.OpStats, " +
		"obs.Histogram, obs.Sample) must be referenced in their merge functions",
	Packages: targetPackages(),
	Run:      run,
}

func targetPackages() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range Targets {
		if !seen[t.Package] {
			seen[t.Package] = true
			out = append(out, t.Package)
		}
	}
	return out
}

func run(pass *lint.Pass) error {
	for _, t := range Targets {
		if !matchesBase(pass.Path, t.Package) {
			continue
		}
		obj := pass.Pkg.Scope().Lookup(t.Type)
		if obj == nil {
			continue // the package doesn't define this target's struct
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		for _, name := range t.Funcs {
			decl := findFunc(pass, t.Type, name)
			if decl == nil {
				pass.Reportf(obj.Pos(),
					"countersmerge target %s.%s not found: type %s has no such method and the package no such function",
					t.Type, name, t.Type)
				continue
			}
			var missing []string
			for _, f := range fields {
				if !mentions(pass, decl.Body, f) {
					missing = append(missing, f.Name())
				}
			}
			sort.Strings(missing)
			for _, m := range missing {
				pass.Reportf(decl.Name.Pos(),
					"%s does not reference %s field %s: a field missing from the merge silently "+
						"vanishes from shard/series aggregation",
					funcLabel(t, name), t.Type, m)
			}
		}
	}
	return nil
}

func funcLabel(t Target, name string) string {
	return fmt.Sprintf("%s.%s", t.Type, name)
}

func matchesBase(path, base string) bool {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path == base
}

// findFunc locates the named method of typeName, or failing that a
// package-level function with that name.
func findFunc(pass *lint.Pass, typeName, name string) *ast.FuncDecl {
	var plain *ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Name.Name != name || fn.Body == nil {
				continue
			}
			if fn.Recv == nil {
				plain = fn
				continue
			}
			t := fn.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == typeName {
				return fn
			}
		}
	}
	return plain
}

// mentions reports whether the function body references the struct field —
// as a selector (c.Probes) or as a composite-literal key (OpStats{Probes:
// …}); go/types records the field object for both.
func mentions(pass *lint.Pass, body *ast.BlockStmt, field *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == field {
			found = true
		}
		return !found
	})
	return found
}
