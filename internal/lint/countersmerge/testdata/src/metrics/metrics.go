// Package metrics is a countersmerge fixture: Counters.Add forgets a
// field, OpStats is fully merged (selector form in Add, composite-literal
// keys in Delta).
package metrics

// Counters is the fixture counter block.
type Counters struct {
	Probes  uint64
	Emitted uint64
	Dropped uint64
}

// Add merges o into c — deliberately missing Dropped.
func (c *Counters) Add(o *Counters) { // want "Counters.Add does not reference Counters field Dropped"
	c.Probes += o.Probes
	c.Emitted += o.Emitted
}

// OpStats is complete under both of its audited functions.
type OpStats struct {
	Probes uint64
	Hits   uint64
}

func (s *OpStats) Add(o OpStats) {
	s.Probes += o.Probes
	s.Hits += o.Hits
}

// Delta mentions every field through composite-literal keys, which count.
func (s OpStats) Delta(prev OpStats) OpStats {
	return OpStats{Probes: s.Probes - prev.Probes, Hits: s.Hits - prev.Hits}
}
