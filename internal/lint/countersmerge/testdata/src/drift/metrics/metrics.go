// Package metrics (drift variant) is a countersmerge fixture for config
// drift: a target type whose audited merge function does not exist at all.
package metrics

// Counters has no Add — the analyzer reports the missing target instead of
// silently skipping it.
type Counters struct { // want "countersmerge target Counters.Add not found"
	Probes uint64
}

// OpStats satisfies its targets trivially: no fields, nothing to miss.
type OpStats struct{}

func (s *OpStats) Add(o OpStats) {}

func (s OpStats) Delta(prev OpStats) OpStats { return OpStats{} }
