// Package obs is a countersmerge fixture: Histogram.Merge forgets a field;
// Sample is merged by a package-level function (the MergeSeries form) that
// covers everything.
package obs

// Histogram's Merge forgets Count.
type Histogram struct {
	Count   uint64
	Buckets [4]uint64
}

func (h *Histogram) Merge(o *Histogram) { // want "Histogram.Merge does not reference Histogram field Count"
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Sample is covered by the package-level MergeSeries below.
type Sample struct {
	T    int64
	Live uint64
}

// MergeSeries resolves as the function target for Sample and mentions
// every field.
func MergeSeries(dst, src []Sample) []Sample {
	for i := range src {
		dst[i].T = src[i].T
		dst[i].Live += src[i].Live
	}
	return dst
}
