// Package load parses and type-checks this module's packages for the lint
// analyzers, offline, from the standard library alone: module-internal
// imports resolve recursively against the module root, and everything else
// (the standard library) resolves through go/importer's source importer.
// It is the piece golang.org/x/tools/go/packages would provide if the repo
// took on that dependency.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/engine").
	Path string
	// Dir is the directory the files came from.
	Dir string
	// Files are the parsed non-test files, in filename order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages rooted at one module, memoizing by import path so
// a whole-tree lint run type-checks each package (and the standard library)
// once.
type Loader struct {
	Fset *token.FileSet

	root    string // module root directory
	module  string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// New creates a loader for the module rooted at dir (the directory holding
// go.mod).
func New(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint loader: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint loader: no module line in %s/go.mod", dir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    dir,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Module returns the module path from go.mod.
func (l *Loader) Module() string { return l.module }

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Load parses and type-checks the package in dir, which must lie inside
// the module root; its import path is derived from the relative location.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint loader: %s is outside module root %s", dir, l.root)
	}
	path := l.module
	if rel != "." {
		path = l.module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// Import implements types.Importer: module-internal paths load
// recursively, all others fall through to the standard library's source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		p, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint loader: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint loader: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint loader: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint loader: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// PackageDirs walks the subtree at root (which must lie inside the
// loader's module) and returns, sorted, every directory holding at least
// one non-test Go file. testdata directories — analyzer fixtures with
// deliberate violations — and hidden/underscore directories are skipped,
// matching the go tool's ./... expansion.
func (l *Loader) PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != root && (n == "testdata" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
