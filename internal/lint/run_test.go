package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
	"repro/internal/lint/wallclock"
)

// TestRunSuppression drives the full pipeline over the driver fixture and
// pins the three suppression behaviours: line-above and trailing
// annotations silence their finding, and an annotation that excuses
// nothing is itself a finding.
func TestRunSuppression(t *testing.T) {
	dir, err := filepath.Abs("testdata/src/engine")
	if err != nil {
		t.Fatal(err)
	}
	l, err := load.New(moduleRoot(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(l, []*lint.Analyzer{wallclock.Analyzer}, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 2 {
		t.Errorf("suppressed = %d findings, want 2 (line-above and trailing forms):\n%v",
			len(res.Suppressed), res.Suppressed)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %d, want exactly the stale-suppression one:\n%v",
			len(res.Findings), res.Findings)
	}
	if d := res.Findings[0]; d.Analyzer != "wallclock" ||
		!strings.Contains(d.Message, "unused //jitlint:allow wallclock") {
		t.Errorf("stale-suppression finding looks wrong: %s", d)
	}
	if len(res.Allows) != 3 {
		t.Errorf("inventory lists %d annotations, want 3", len(res.Allows))
	}
}

func moduleRoot(t *testing.T, dir string) string {
	t.Helper()
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}
