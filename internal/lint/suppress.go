package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix is the suppression directive. The comment form is
// //jitlint:allow <analyzer> <reason>, written like a compiler directive
// (no space after //) so gofmt leaves it alone.
const AllowPrefix = "//jitlint:allow"

// Allow is one parsed //jitlint:allow annotation.
type Allow struct {
	// Analyzer is the finding class being excused; empty when the
	// annotation is malformed (missing entirely).
	Analyzer string
	// Reason is the mandatory justification — everything after the
	// analyzer name.
	Reason string
	Pos    token.Position
	// TokPos is the comment's token position, for reporting.
	TokPos token.Pos
}

// ParseAllows extracts every //jitlint:allow annotation from the file,
// malformed ones included (suppaudit wants those too).
func ParseAllows(fset *token.FileSet, f *ast.File) []Allow {
	var out []Allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, AllowPrefix)
			// A second `//`-introduced remark on the line (the fixtures'
			// `// want` annotations use this) is not part of the directive.
			if i := strings.Index(rest, " // "); i >= 0 {
				rest = rest[:i]
			}
			a := Allow{Pos: fset.Position(c.Pos()), TokPos: c.Pos()}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				a.Analyzer = fields[0]
				a.Reason = strings.TrimSpace(rest[strings.Index(rest, fields[0])+len(fields[0]):])
			}
			out = append(out, a)
		}
	}
	return out
}

// allowKey addresses an annotation by file and line for suppression
// matching.
type allowKey struct {
	file string
	line int
}

// suppressor matches findings to annotations. An annotation on line L
// silences findings of its analyzer on L (trailing comment) and on L+1
// (annotation on its own line above the flagged statement).
type suppressor struct {
	allows map[allowKey][]*allowUse
}

type allowUse struct {
	Allow
	used bool
}

func newSuppressor() *suppressor {
	return &suppressor{allows: map[allowKey][]*allowUse{}}
}

func (s *suppressor) add(a Allow) *allowUse {
	u := &allowUse{Allow: a}
	k := allowKey{a.Pos.Filename, a.Pos.Line}
	s.allows[k] = append(s.allows[k], u)
	return u
}

// match reports whether d is excused by an annotation, marking the
// annotation used.
func (s *suppressor) match(d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, u := range s.allows[allowKey{d.Pos.Filename, line}] {
			if u.Analyzer == d.Analyzer && u.Reason != "" {
				u.used = true
				return true
			}
		}
	}
	return false
}
