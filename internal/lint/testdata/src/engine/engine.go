// Package engine is a driver fixture for suppression semantics: one
// annotation used from the line above, one used in trailing position, and
// one excusing nothing — which the driver itself flags as stale.
package engine

import "time"

// Used, line-above form: excuses the wallclock finding on the next line.
func twin() time.Time {
	//jitlint:allow wallclock fixture: excused wall read
	return time.Now()
}

// Used, trailing form: excuses the finding on its own line.
func twinTrailing() time.Time {
	return time.Now() //jitlint:allow wallclock fixture: trailing-form suppression
}

// Unused: nothing on or under this line violates wallclock, so the
// annotation itself becomes the finding.
func pure(t time.Time) time.Time {
	//jitlint:allow wallclock fixture: nothing to excuse here
	return t
}
