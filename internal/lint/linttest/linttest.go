// Package linttest runs one analyzer over a testdata fixture package and
// checks its findings against // want annotations — the stdlib-sized
// analogue of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line that should be flagged carries a trailing comment
//
//	bad() // want "regexp" "second regexp"
//
// with one Go-quoted regexp per expected finding on that line. Suppressed
// findings (a line carrying a justified //jitlint:allow) must NOT be
// wanted: fixtures assert the full driver pipeline, suppression semantics
// included.
package linttest

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// Run loads the fixture package in dir (relative to the test's working
// directory), applies the analyzer through the full driver — suppression
// matching included — and compares findings against the fixture's // want
// annotations.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	root := moduleRoot(t, abs)
	l, err := load.New(root)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(l, []*lint.Analyzer{a}, []string{abs})
	if err != nil {
		t.Fatalf("lint run on %s: %v", dir, err)
	}
	pkg, err := l.Load(abs)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, l.Fset, pkg.Files)
	for _, d := range res.Findings {
		k := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		if !consume(wants[k], d.Message) {
			t.Errorf("unexpected finding %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, w.re.String())
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

func consume(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.used && w.re.MatchString(msg) {
			w.used = true
			return true
		}
	}
	return false
}

var wantArg = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	out := map[posKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may trail other comment text (a malformed
				// //jitlint:allow under test, say), so search rather than
				// require a prefix.
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				rest := c.Text[i+len("// want "):]
				pos := fset.Position(c.Pos())
				k := posKey{filepath.Base(pos.Filename), pos.Line}
				args := wantArg.FindAllString(rest, -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", k.file, k.line, c.Text)
				}
				for _, q := range args {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", k.file, k.line, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", k.file, k.line, s, err)
					}
					out[k] = append(out[k], &want{re: re})
				}
			}
		}
	}
	return out
}

// moduleRoot walks up from dir to the enclosing go.mod — fixtures live
// inside the repo and type-check against the real module (tracedisc
// fixtures import the real repro/internal/obs).
func moduleRoot(t *testing.T, dir string) string {
	t.Helper()
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}
