package maporder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, "testdata/src/engine", maporder.Analyzer)
}

// TestMaporderScope checks the package filter: identical code outside the
// deterministic packages is not the analyzer's business.
func TestMaporderScope(t *testing.T) {
	linttest.Run(t, "testdata/src/harness", maporder.Analyzer)
}
