// Package maporder flags `for … range` over a map in the deterministic
// packages. Go randomizes map iteration order per run, so a map range on a
// result, counter or artifact path is exactly the bug class the repo's
// bit-identical guarantees (REF-order finals, byte-stable RESULTS and
// checkpoint goldens, shard-merge equality) cannot survive — and the one
// the runtime equivalence sweeps only catch on exercised paths.
//
// Two shapes are recognized as deterministic and not flagged:
//
//   - collect-and-sort: a loop whose body only appends into local slices,
//     each of which is later passed to a sort.* or slices.Sort* call in the
//     same function (the standard extract-keys-then-sort idiom);
//   - map clear: a loop whose body only deletes the ranged key from the
//     ranged map.
//
// Anything else — including genuinely commutative aggregation the checker
// cannot prove — needs a //jitlint:allow maporder <reason> annotation, so
// the order-insensitivity argument is written down where the loop is.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// DeterministicPackages are the packages whose outputs are pinned
// bit-for-bit by goldens or equivalence sweeps (matched by import-path
// base, per lint.Analyzer.Packages).
var DeterministicPackages = []string{
	"core", "engine", "state", "plan", "shard", "report", "checkpoint", "serve",
}

// Analyzer is the maporder check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map in deterministic packages unless the loop only " +
		"collects into slices that are sorted before use (or only clears the map)",
	Packages: DeterministicPackages,
	Run:      run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc scans one function body: map ranges are judged against the
// sort calls that follow them in the same body.
func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	var sorts []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, n)
				}
			}
		case *ast.CallExpr:
			if obj, arg := sortedArg(pass, n); obj != nil {
				sorts = append(sorts, sortCall{obj: obj, pos: arg})
			}
		}
		return true
	})
	for _, rs := range ranges {
		if clearsRangedMap(pass, rs) {
			continue
		}
		if collectsIntoSorted(pass, rs, sorts) {
			continue
		}
		pass.Reportf(rs.For,
			"range over map %s in deterministic package %s: iteration order is randomized; "+
				"extract and sort keys before use, or annotate %s maporder <reason>",
			render(rs.X), pass.Path, lint.AllowPrefix)
	}
}

// sortCall is one sort.*/slices.Sort* invocation and the object of the
// slice it orders.
type sortCall struct {
	obj types.Object
	pos ast.Node
}

// sortedArg recognizes sort.X(s, …) and slices.SortX(s, …) calls and
// returns the object of the first identifier argument, i.e. the slice
// being sorted.
func sortedArg(pass *lint.Pass, call *ast.CallExpr) (types.Object, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, nil
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	pn, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
	if !ok {
		return nil, nil
	}
	switch pn.Imported().Path() {
	case "sort", "slices":
	default:
		return nil, nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return pass.Info.Uses[id], call.Args[0]
}

// clearsRangedMap reports the clear idiom: the body is exactly
// delete(m, k) over the ranged map m with the range key k.
func clearsRangedMap(pass *lint.Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	expr, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" {
		return false
	}
	if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	mapArg, ok := call.Args[0].(*ast.Ident)
	rangedMap, ok2 := rs.X.(*ast.Ident)
	if !ok || !ok2 || pass.Info.Uses[mapArg] != pass.Info.Uses[rangedMap] {
		return false
	}
	keyArg, ok := call.Args[1].(*ast.Ident)
	rangeKey, ok2 := rs.Key.(*ast.Ident)
	return ok && ok2 && pass.Info.Uses[keyArg] == pass.Info.Defs[rangeKey]
}

// collectsIntoSorted reports the collect-and-sort idiom: every statement
// in the body appends into a slice variable, and each such slice is
// sorted after the loop in the same function.
func collectsIntoSorted(pass *lint.Pass, rs *ast.RangeStmt, sorts []sortCall) bool {
	var targets []types.Object
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || objOf(pass, first) != objOf(pass, lhs) {
			return false
		}
		targets = append(targets, objOf(pass, lhs))
	}
	if len(targets) == 0 {
		return false
	}
	for _, tgt := range targets {
		sorted := false
		for _, sc := range sorts {
			if sc.obj == tgt && sc.pos.Pos() > rs.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			return false
		}
	}
	return true
}

// objOf resolves an identifier to its object, whether this mention is a
// use or its definition.
func objOf(pass *lint.Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Uses[id]; o != nil {
		return o
	}
	return pass.Info.Defs[id]
}

// render prints the ranged expression compactly for the message.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "(…)"
	case *ast.IndexExpr:
		return render(e.X) + "[…]"
	default:
		return "expression"
	}
}
