// Package harness is a maporder scope fixture: its import-path base is not
// in DeterministicPackages, so even a raw map range draws no finding.
package harness

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
