// Package engine is a maporder fixture: raw map ranges are flagged, the
// collect-and-sort and map-clear idioms and justified suppressions are not.
package engine

import (
	"slices"
	"sort"
)

// Flagged: keys collected but never sorted before use.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map m in deterministic package"
		out = append(out, k)
	}
	return out
}

// Not flagged: the collect-and-sort idiom with sort.Strings.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Not flagged: the collect-and-sort idiom with slices.Sort.
func valsSorted(m map[string]int) []int {
	var vs []int
	for _, v := range m {
		vs = append(vs, v)
	}
	slices.Sort(vs)
	return vs
}

// Not flagged: the map-clear idiom.
func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// Flagged: a sort before the loop does not order what the loop collects.
func sortBefore(m map[string]int, seedKeys []string) []string {
	sort.Strings(seedKeys)
	out := seedKeys
	for k := range m { // want "range over map m in deterministic package"
		out = append(out, k)
	}
	return out
}

// Flagged: the body does more than collect, so sorting cannot save it.
func sideEffects(m map[string]int, sum *int) {
	for _, v := range m { // want "range over map m in deterministic package"
		*sum += v
	}
}

// Suppressed: a justified annotation on the line above silences the
// finding (and counts as used, so the driver does not flag it as stale).
func commutative(m map[string]int) int {
	total := 0
	//jitlint:allow maporder fixture: summation is commutative, any visit order yields the same total
	for _, v := range m {
		total += v
	}
	return total
}

// Not flagged: ranging a slice is ordered.
func sliceRange(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
