package lint

import (
	"fmt"
	"sort"

	"repro/internal/lint/load"
)

// Result is one driver run over a set of packages.
type Result struct {
	// Findings are the unsuppressed diagnostics, plus one finding per
	// unused //jitlint:allow annotation (a suppression that excuses
	// nothing is stale and must leave with the violation it excused).
	Findings []Diagnostic
	// Suppressed are diagnostics matched by a justified annotation.
	Suppressed []Diagnostic
	// Allows is the suppression inventory: every annotation seen in the
	// analyzed (non-test) files, malformed ones included.
	Allows []Allow
}

// Run applies the analyzers to the packages in dirs (each a directory
// under the loader's module root). Analyzers only see non-test files: the
// invariants guard shipped code, and tests legitimately use wall-clock
// deadlines and seeded randomness. Diagnostics and the inventory come back
// in stable (file, line) order.
func Run(l *load.Loader, analyzers []*Analyzer, dirs []string) (*Result, error) {
	res := &Result{}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		var diags []Diagnostic
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		sup := newSuppressor()
		var uses []*allowUse
		for _, f := range pkg.Files {
			for _, al := range ParseAllows(l.Fset, f) {
				res.Allows = append(res.Allows, al)
				uses = append(uses, sup.add(al))
			}
		}
		for _, d := range diags {
			if sup.match(d) {
				res.Suppressed = append(res.Suppressed, d)
			} else {
				res.Findings = append(res.Findings, d)
			}
		}
		for _, u := range uses {
			if !u.used && known[u.Analyzer] {
				res.Findings = append(res.Findings, Diagnostic{
					Analyzer: u.Analyzer,
					Pos:      u.Pos,
					Message: fmt.Sprintf("unused %s %s — no %s finding on the annotated line; remove the stale suppression",
						AllowPrefix, u.Analyzer, u.Analyzer),
				})
			}
		}
	}
	sortDiags(res.Findings)
	sortDiags(res.Suppressed)
	sort.Slice(res.Allows, func(i, j int) bool {
		a, b := res.Allows[i].Pos, res.Allows[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return res, nil
}
