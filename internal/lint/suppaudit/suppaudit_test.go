package suppaudit_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/suppaudit"
)

func TestSuppaudit(t *testing.T) {
	linttest.Run(t, "testdata/src/fixture", suppaudit.Analyzer)
}
