// Package suppaudit keeps the suppression surface deliberate: every
// //jitlint:allow annotation must name a known analyzer and carry a
// written reason. Together with the driver's unused-suppression findings
// and the `jitlint -inventory` listing (uploaded nightly in CI), the full
// set of excused sites stays reviewable — a suppression is a documented
// argument, not an off switch.
package suppaudit

import (
	"repro/internal/lint"
)

// KnownAnalyzers are the valid targets of a //jitlint:allow annotation.
// The cmd/jitlint registration test pins this list against the installed
// suite, so a new analyzer cannot be added without becoming suppressible
// (and auditable) here.
var KnownAnalyzers = []string{
	"countersmerge", "maporder", "suppaudit", "tracedisc", "wallclock",
}

// Analyzer is the suppression audit. It runs on every package.
var Analyzer = &lint.Analyzer{
	Name: "suppaudit",
	Doc: "every //jitlint:allow must name a known analyzer and carry a reason; " +
		"the suppression inventory is reported via jitlint -inventory",
	Run: run,
}

func run(pass *lint.Pass) error {
	known := map[string]bool{}
	for _, n := range KnownAnalyzers {
		known[n] = true
	}
	for _, f := range pass.Files {
		for _, a := range lint.ParseAllows(pass.Fset, f) {
			switch {
			case a.Analyzer == "":
				pass.Reportf(a.TokPos,
					"bare %s: write %s <analyzer> <reason>", lint.AllowPrefix, lint.AllowPrefix)
			case !known[a.Analyzer]:
				pass.Reportf(a.TokPos,
					"%s names unknown analyzer %q (known: countersmerge, maporder, suppaudit, tracedisc, wallclock)",
					lint.AllowPrefix, a.Analyzer)
			case a.Reason == "":
				pass.Reportf(a.TokPos,
					"%s %s without a reason: a suppression is an argument, write down why the site is safe",
					lint.AllowPrefix, a.Analyzer)
			}
		}
	}
	return nil
}
