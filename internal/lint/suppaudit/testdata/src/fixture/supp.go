// Package fixture exercises the suppression audit: bare annotations,
// unknown analyzer names and missing reasons are findings; a well-formed
// annotation is not.
package fixture

var a = 1 //jitlint:allow // want "bare //jitlint:allow"

var b = 2 //jitlint:allow nosuchcheck the analyzer name is wrong // want "unknown analyzer"

var c = 3 //jitlint:allow maporder // want "without a reason"

// A well-formed annotation (known analyzer, written reason) passes the
// audit even when the named analyzer is not in this run.
var d = 4 //jitlint:allow maporder fixture: reason present and analyzer known
