// Package engine is a wallclock fixture: host-clock reads and global rand
// draws are flagged, seeded generators and event-time arithmetic are not.
package engine

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Flagged: reading the host clock.
func stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read time\\.Now"
}

// Flagged: time.Since is a disguised Now.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time\\.Since"
}

// Flagged: a draw from the global, implicitly seeded generator.
func jitter() int {
	return rand.Intn(10) // want "global math/rand draw rand\\.Intn"
}

// Flagged: math/rand/v2's global draws are just as unseeded.
func jitterV2() int {
	return randv2.IntN(10) // want "global math/rand draw rand\\.IntN"
}

// Not flagged: an explicitly seeded generator; the draws are methods on
// *rand.Rand, deterministic by construction.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Not flagged: arithmetic on event time never observes the clock.
func deadline(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// Suppressed: an excused wall read with a written reason.
func wallTwin() time.Time {
	//jitlint:allow wallclock fixture: operator-facing timing only, no deterministic artifact reads it
	return time.Now()
}
