// Package report is a wallclock scope fixture: the harness-side packages
// may time themselves, so the same calls draw no finding here.
package report

import "time"

func progressStamp() time.Time {
	return time.Now()
}
