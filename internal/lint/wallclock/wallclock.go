// Package wallclock forbids wall-clock reads (time.Now, time.Since) and
// global math/rand draws in the engine-path packages. The engine is an
// event-time system: every deterministic artifact — counters, finals,
// sampled series, checkpoints — is a pure function of the input stream and
// the seed, which a single time.Now or unseeded rand call silently breaks
// on some future path. Seeded generators (rand.New(rand.NewSource(seed)),
// rand.NewZipf) are fine and not flagged: determinism comes from the seed,
// not from avoiding randomness.
//
// Legitimate wall-clock sites exist — the obs wall-twin histogram, the
// elapsed-time fields engine/shard/serve report for operators' eyes only —
// and each carries a //jitlint:allow wallclock <reason> annotation, so the
// full allowlist is the `jitlint -inventory` output rather than a config
// file nobody rereads.
package wallclock

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// EnginePathPackages are the packages that execute or feed the event-time
// engine (matched by import-path base). The harness-side packages (report,
// exp, scenario) and the CLIs are exempt: progress logging and benchmark
// timing are their job.
var EnginePathPackages = []string{
	"adapt", "bloom", "checkpoint", "core", "engine", "feedback", "lattice",
	"metrics", "obs", "operator", "plan", "predicate", "serve", "shard",
	"source", "state", "stream",
}

// Analyzer is the wallclock check.
var Analyzer = &lint.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/time.Since and global math/rand draws in engine-path " +
		"packages; event-time code must be a pure function of stream and seed",
	Packages: EnginePathPackages,
	Run:      run,
}

// seededConstructors are the math/rand functions that build explicitly
// seeded generators — the deterministic way to use randomness.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. *rand.Rand draws) are seeded by construction
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Reportf(id.Pos(),
						"wall-clock read time.%s in engine-path package %s: event-time code must not "+
							"observe the host clock; use stream time, or annotate %s wallclock <reason>",
						fn.Name(), pass.Path, lint.AllowPrefix)
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(id.Pos(),
						"global math/rand draw rand.%s in engine-path package %s: unseeded randomness "+
							"breaks run-to-run determinism; draw from rand.New(rand.NewSource(seed)), or "+
							"annotate %s wallclock <reason>",
						fn.Name(), pass.Path, lint.AllowPrefix)
				}
			}
			return true
		})
	}
	return nil
}
