package wallclock_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata/src/engine", wallclock.Analyzer)
}

// TestWallclockScope checks the package filter: report/exp/scenario and the
// CLIs are allowed to read the clock.
func TestWallclockScope(t *testing.T) {
	linttest.Run(t, "testdata/src/report", wallclock.Analyzer)
}
