package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
)

// baseUnits is the CostUnits share every mode pays: probe comparisons,
// result construction, state maintenance and queue traffic.
func baseUnits(c metrics.Counters) int64 {
	return int64(c.Comparisons + c.Results*8 + c.Inserted*2 + c.Purged*2 + c.QueueOps)
}

// machineryUnits is the CostUnits share only the feedback machinery pays:
// MNS identification (lattice walks, Bloom checks), feedback messages, and
// the suspension lifecycle (suspend, resume, catch-up joins).
func machineryUnits(c metrics.Counters) int64 {
	return int64(c.LatticeNodes + c.BloomChecks + c.Feedbacks*16 +
		c.Suspended*4 + c.Resumed*4 + c.CatchUpJoins + c.AdaptUnits)
}

// TestLeftDeepInversionStudy root-causes the Figure 16 inversion: in this
// reproduction the left-deep N-sweep's extremes (N=3, N=6) run JIT above
// REF even at paper-faithful sizes. The study isolates the cause by
// decomposing CostUnits into the base share (work every mode pays) and
// the machinery share (work only JIT pays), across a skew sweep at N=3
// that scales the suspension-payback side: Zipf skew concentrates
// arrivals on hot signatures, so each detected MNS covers more of the
// future stream.
//
// Measured verdict (pinned below; recorded in the fig16 spec comment and
// the ROADMAP): the inversion is detection economics, not a modeling bug,
// and it is sharper than the original hypothesis. (a) The machinery share
// is 90–100% Identify_MNS lattice walks at both extremes — feedback
// messages and the suspension lifecycle are noise next to per-arrival CNS
// lattice evaluation, so "pays lattice costs on every level" is confirmed
// literally at N=6 (share 0.90 over the five-level pipeline). (b) The
// payback is not merely insufficient, it is NEGATIVE: suppressed probes
// save less base work than resumption catch-up adds back (catch-up
// results still have to be constructed and propagated), so JIT's base
// share exceeds REF's in every cell — ~3.7× at N=6 uniform, where 22k
// suspensions thrash against 21k detected MNSs. (c) Skew flattens the
// ratio at N=3 (2.99 uniform → 1.82 at s=2.0) but NOT by making
// suspension pay: payback stays negative while detections collapse
// (30781 → 2882 MNSs) and the hotter stream inflates the base share both
// modes pay — the machinery is amortized, never repaid. The paper's
// N=4/5 mid-grid sits in exactly that amortized regime.
func TestLeftDeepInversionStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("inversion study runs the full fig16 extremes; skipped in -short")
	}
	spec, ok := exp.SpecByID(16)
	if !ok {
		t.Fatal("fig16 spec missing")
	}
	// The short report preset's scaling for fig16, at the excluded extremes.
	cfg := exp.Config{Seed: 1, SizeScale: 0.48, DomainScale: 0.40}
	cells := []struct {
		n    float64
		zipf float64
		rate float64 // leaner stream under skew: match probability is hotter
	}{
		// No skew sweep at N=6: fifteen skewed clique predicates blow up the
		// deep pipeline's intermediate volume past any useful test budget,
		// and the N=6 question (where does the machinery go?) is answered by
		// the uniform cell alone.
		{3, 0, 1}, {3, 1.5, 0.6}, {3, 2.0, 0.5},
		{6, 0, 1},
	}
	type verdict struct {
		n, zipf      float64
		saved, mach  int64
		latticeShare float64
		jitOverRef   float64
	}
	var out []verdict
	for _, c := range cells {
		run := func(nm exp.NamedMode) (int64, int64, metrics.Counters) {
			p := spec.ParamsAt(cfg, nm, c.n)
			p.Zipf, p.Rate, p.Drain = c.zipf, c.rate, true
			r := p.Run()
			base, mach := baseUnits(r.Counters), machineryUnits(r.Counters)
			// The decomposition must tile CostUnits exactly — a new weighted
			// counter added to CostUnits() without a home here would skew
			// every conclusion below silently.
			if got := base + mach; got != int64(r.CostUnits) {
				t.Fatalf("decomposition does not tile CostUnits: base %d + machinery %d != %d",
					base, mach, r.CostUnits)
			}
			return base, mach, r.Counters
		}
		refBase, refMach, _ := run(exp.NamedMode{Name: "REF", Mode: core.REF()})
		jitBase, jitMach, jc := run(exp.NamedMode{Name: "JIT", Mode: core.JIT()})
		if refMach != 0 {
			t.Fatalf("REF charged %d machinery units; the reference mode has no feedback path", refMach)
		}
		latticeShare := 0.0
		if jitMach > 0 {
			latticeShare = float64(jc.LatticeNodes) / float64(jitMach)
		}
		v := verdict{
			n: c.n, zipf: c.zipf,
			saved: refBase - jitBase, mach: jitMach,
			latticeShare: latticeShare,
			jitOverRef:   float64(jitBase+jitMach) / float64(refBase),
		}
		out = append(out, v)
		t.Logf("N=%.0f zipf=%.1f: JIT/REF=%.3f  payback=%d  machinery=%d (lattice share %.2f)  suspended=%d mns=%d",
			v.n, v.zipf, v.jitOverRef, v.saved, v.mach, v.latticeShare, jc.Suspended, jc.MNSDetected)
	}
	for _, v := range out {
		// (a) Identify_MNS lattice walks dominate the machinery everywhere.
		if v.latticeShare < 0.5 {
			t.Errorf("N=%.0f zipf=%.1f: lattice share %.2f — machinery is no longer detection-dominated; update the fig16 spec comment",
				v.n, v.zipf, v.latticeShare)
		}
		// (b) At the uniform extremes, suspension never repays detection:
		// the inversion premise behind fig16's ShortXs subset.
		if v.zipf == 0 && v.saved >= v.mach {
			t.Errorf("N=%.0f uniform: payback %d >= machinery %d — the fig16 inversion premise no longer holds; update the spec comment",
				v.n, v.saved, v.mach)
		}
	}
	// (c) Skew flattens the N=3 ratio by amortizing the machinery over a
	// hotter base workload.
	n3 := map[float64]verdict{}
	for _, v := range out {
		if v.n == 3 {
			n3[v.zipf] = v
		}
	}
	if n3[2.0].jitOverRef >= n3[0].jitOverRef {
		t.Errorf("N=3: skew did not flatten JIT/REF (%.3f at zipf=2 vs %.3f uniform) — amortization verdict refuted; update the spec comment",
			n3[2.0].jitOverRef, n3[0].jitOverRef)
	}
}
