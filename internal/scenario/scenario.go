// Package scenario is the hostile-stream equivalence harness (DESIGN.md
// §8): a table-driven matrix that runs every combination of stream mutator
// (Zipf skew, bursts, bounded disorder, band predicates), plan topology,
// execution mode, shard count and adaptive migration through one
// multiset-equivalence check against a drained REF baseline, plus the
// invariants the hostile inputs are designed to stress — late-drop
// conservation under disorder, broadcast fallback under band predicates,
// arrival conservation and partition balance under sharding.
//
// The paper evaluates only friendly traffic: in-order, uniform-domain,
// stationary Poisson equi-joins. This package is where every post-paper
// robustness claim is pinned; the tests live in scenario_test.go and the
// measured trajectory in BENCH_hostile.json (recorded from the root-level
// BenchmarkHostile sweep).
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stream"
)

// Scenario is one hostile-stream mutator stack. Rate and DMax, when
// non-zero, override the base workload so a scenario can compensate for
// the selectivity its mutators add (skewed and band joins match far more
// pairs per arrival than the uniform equi baseline).
type Scenario struct {
	Name        string
	Zipf        float64
	Burst       float64
	BurstPeriod stream.Time
	Disorder    stream.Time
	Band        stream.Value
	Rate        float64
	DMax        int64
}

// Apply resolves the scenario onto base run parameters.
func (s Scenario) Apply(base exp.Params) exp.Params {
	p := base
	p.Zipf = s.Zipf
	p.Burst = s.Burst
	p.BurstPeriod = s.BurstPeriod
	p.Disorder = s.Disorder
	p.Band = s.Band
	if s.Rate > 0 {
		p.Rate = s.Rate
	}
	if s.DMax > 0 {
		p.DMax = s.DMax
	}
	return p
}

// Hostile reports whether any mutator is active (false only for the
// control scenario).
func (s Scenario) Hostile() bool {
	return s.Zipf > 1 || s.Burst > 1 || s.Disorder > 0 || s.Band > 0
}

// Describe renders the active mutator stack for reports and benchmarks.
func (s Scenario) Describe() string {
	if !s.Hostile() {
		return "in-order uniform equi (control)"
	}
	var parts []string
	if s.Zipf > 1 {
		parts = append(parts, fmt.Sprintf("zipf s=%g", s.Zipf))
	}
	if s.Burst > 1 {
		parts = append(parts, fmt.Sprintf("burst %g×/%v", s.Burst, s.BurstPeriod))
	}
	if s.Disorder > 0 {
		parts = append(parts, fmt.Sprintf("disorder ≤%v", s.Disorder))
	}
	if s.Band > 0 {
		parts = append(parts, fmt.Sprintf("band ±%d", s.Band))
	}
	return strings.Join(parts, ", ")
}

// Suite returns the canonical scenario table: each single mutator, the
// control, and the combinations that stress cross-mutator interactions.
// Rate/DMax overrides keep every scenario's result volume within a small
// factor of the control's — skew and band tolerance both multiply the
// per-predicate match probability, and an N-way clique raises that to the
// sixth power, so the hot scenarios run leaner streams (or, for band,
// wider domains) than the control. The literals are tuned per mode: a
// short-mode stream is too sparse for the full-mode overrides to leave
// any finals to compare.
func Suite(short bool) []Scenario {
	if short {
		return []Scenario{
			{Name: "baseline"},
			{Name: "zipf", Zipf: 1.5, Rate: 0.4},
			{Name: "burst", Burst: 4, BurstPeriod: 40 * stream.Second, Rate: 0.7},
			{Name: "disorder", Disorder: 10 * stream.Second},
			{Name: "band", Band: 2, DMax: 100},
			{Name: "zipf+burst", Zipf: 1.5, Burst: 3, BurstPeriod: 30 * stream.Second, Rate: 0.3},
			{Name: "band+disorder", Band: 2, DMax: 100, Disorder: 10 * stream.Second},
		}
	}
	return []Scenario{
		{Name: "baseline"},
		{Name: "zipf", Zipf: 1.5, Rate: 0.5},
		{Name: "burst", Burst: 4, BurstPeriod: 40 * stream.Second, Rate: 1.2},
		{Name: "disorder", Disorder: 10 * stream.Second},
		{Name: "band", Band: 2, DMax: 120},
		{Name: "zipf+burst", Zipf: 1.5, Burst: 3, BurstPeriod: 30 * stream.Second, Rate: 0.35},
		{Name: "band+disorder", Band: 2, DMax: 120, Disorder: 10 * stream.Second},
	}
}

// Cell is one execution configuration of the matrix: plan topology,
// operator mode, shard count, adaptive migration.
type Cell struct {
	Bushy  bool
	Mode   exp.NamedMode
	Shards int
	Adapt  bool
}

func (c Cell) String() string {
	topo := "leftdeep"
	if c.Bushy {
		topo = "bushy"
	}
	adapt := ""
	if c.Adapt {
		adapt = "+adapt"
	}
	return fmt.Sprintf("%s/%s/shards=%d%s", topo, c.Mode.Name, c.Shards, adapt)
}

// Apply resolves the cell onto run parameters.
func (c Cell) Apply(p exp.Params) exp.Params {
	p.Bushy = c.Bushy
	p.Mode = c.Mode.Mode
	p.Shards = c.Shards
	p.Adapt = c.Adapt
	return p
}

// Matrix returns the execution cells. The full matrix is the complete
// cross product topology × {REF, JIT, DOE, Bloom} × shards {1, 4} × adapt
// {off, on} — the nightly suite. The short matrix is a cover: every
// dimension value appears in at least one cell, sized for the pre-merge
// race job.
func Matrix(short bool) []Cell {
	if short {
		return []Cell{
			{Bushy: true, Mode: exp.NamedMode{Name: "JIT", Mode: core.JIT()}, Shards: 1},
			{Bushy: false, Mode: exp.NamedMode{Name: "JIT", Mode: core.JIT()}, Shards: 1},
			{Bushy: true, Mode: exp.NamedMode{Name: "DOE", Mode: core.DOE()}, Shards: 4},
			{Bushy: true, Mode: exp.NamedMode{Name: "Bloom", Mode: core.BloomJIT()}, Shards: 1},
			{Bushy: true, Mode: exp.NamedMode{Name: "JIT", Mode: core.JIT()}, Shards: 4, Adapt: true},
		}
	}
	var cells []Cell
	for _, bushy := range []bool{true, false} {
		for _, nm := range exp.AblationModes() {
			for _, shards := range []int{1, 4} {
				for _, adapt := range []bool{false, true} {
					cells = append(cells, Cell{Bushy: bushy, Mode: nm, Shards: shards, Adapt: adapt})
				}
			}
		}
	}
	return cells
}

// Base returns the workload the matrix runs on: an N=4 clique dense
// enough to exercise suspension, resumption and migration (~100 finals at
// full size), yet small enough that the full 7-scenario × 32-cell matrix
// fits a default `go test` timeout. Short mode shrinks it further for the
// pre-merge race job. Drain is on — the REF-equality contract is a
// drained-run property (DESIGN.md §4).
func Base(short bool) exp.Params {
	p := exp.Params{
		N:       4,
		Bushy:   true,
		Window:  2 * stream.Minute,
		Rate:    2.5,
		DMax:    24,
		Horizon: 3 * stream.Minute,
		Seed:    1,
		Drain:   true,
	}
	if short {
		p.Rate = 2
		p.DMax = 20
		p.Horizon = 2 * stream.Minute
	}
	return p
}

// Multiset counts the occurrences of each key.
func Multiset(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for _, k := range keys {
		m[k]++
	}
	return m
}

// DiffMultisets describes the difference between two multisets, empty when
// equal. Output order is deterministic.
func DiffMultisets(got, want map[string]int) []string {
	var diffs []string
	for k, n := range got {
		if w := want[k]; n != w {
			diffs = append(diffs, fmt.Sprintf("%s: got %d want %d", k, n, w))
		}
	}
	for k, w := range want {
		if _, ok := got[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("%s: got 0 want %d", k, w))
		}
	}
	sort.Strings(diffs)
	return diffs
}
