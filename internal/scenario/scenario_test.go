package scenario

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/stream"
)

// requireEqualMultisets fails with a bounded diff when the two result
// multisets differ.
func requireEqualMultisets(t *testing.T, got, want map[string]int) {
	t.Helper()
	diffs := DiffMultisets(got, want)
	if len(diffs) == 0 {
		return
	}
	show := diffs
	if len(show) > 5 {
		show = show[:5]
	}
	t.Fatalf("result multiset differs from REF baseline (%d keys off, showing %d):\n%v",
		len(diffs), len(show), show)
}

// checkRun applies the invariants every cell must satisfy regardless of
// shard count: nothing late-dropped (every suite scenario's disorder is at
// the engine's own bound), and the result count consistent with the
// delivery log. Watermark monotonicity needs no assertion here — the
// engine's reorder stage panics the test on any regressed release.
func checkRun(t *testing.T, r engine.Result, keys []string) {
	t.Helper()
	if r.Counters.LateDropped != 0 {
		t.Fatalf("dropped %d tuples though the stream's disorder equals the bound", r.Counters.LateDropped)
	}
	if r.Results != uint64(len(keys)) {
		t.Fatalf("Results=%d but %d deliveries kept", r.Results, len(keys))
	}
}

// checkSharded applies the sharding invariants: arrival conservation
// (routed once, broadcasts once per replica), band predicates forcing the
// broadcast fallback, and — under Zipf — the measured partition imbalance.
func checkSharded(t *testing.T, sc Scenario, res shard.Result) {
	t.Helper()
	if sc.Band > 0 {
		// A pure band conjunction defeats equi-key derivation: the run must
		// collapse to the single-replica fallback, not silently mis-partition.
		if !res.Fallback || len(res.Shards) != 1 {
			t.Fatalf("band predicates must force the broadcast fallback; got fallback=%v shards=%d",
				res.Fallback, len(res.Shards))
		}
	} else if res.Fallback {
		t.Fatal("equi-join clique unexpectedly fell back to one replica")
	}
	var sum uint64
	for _, sh := range res.Shards {
		sum += uint64(sh.Arrivals)
	}
	want := res.Routed + uint64(len(res.Shards))*res.Broadcasts
	if sum != want {
		t.Fatalf("arrival conservation violated: per-shard sum %d, routed %d + %d shards × %d broadcasts = %d",
			sum, res.Routed, len(res.Shards), res.Broadcasts, want)
	}
	if sc.Zipf > 1 && len(res.Shards) > 1 {
		// Partition balance under skew: the hot value's shard must carry the
		// head of the Zipf mass. A balanced histogram here would mean the
		// skew never reached routing.
		imb := res.Imbalance()
		t.Logf("zipf partition balance: hot shard carries %.2f× the fair share (%d routed over %d shards)",
			imb, res.Routed, len(res.Shards))
		if imb < 1.1 {
			t.Errorf("hot shard carries %.2f× the fair share; Zipf head should exceed 1.1×", imb)
		}
	}
}

// traceCell attaches a counting tracer to every engine of the cell —
// one for a single run, one per replica for a sharded run — and returns the
// sinks for post-run conservation checks.
func traceCell(p *exp.Params) *[]*obs.CountingSink {
	sinks := &[]*obs.CountingSink{}
	if p.Shards > 1 {
		p.TraceFor = func(shard int) *obs.Tracer {
			s := &obs.CountingSink{}
			*sinks = append(*sinks, s)
			return obs.New(obs.Options{Sink: s, Shard: shard})
		}
	} else {
		s := &obs.CountingSink{}
		*sinks = append(*sinks, s)
		p.Trace = obs.New(obs.Options{Sink: s})
	}
	return sinks
}

// checkEventConservation asserts the trace-event stream mirrors the
// counters it instruments, under the PR 6 disorder mutators: the late-drop
// event count must equal the LateDropped counter (zero across the suite,
// whose disorder sits exactly at the engine bound — the engine's own
// disorder tests pin the nonzero case), and arrival events must equal the
// processed-arrival count.
func checkEventConservation(t *testing.T, r engine.Result, sinks []*obs.CountingSink) {
	t.Helper()
	var drops, arrivals uint64
	for _, s := range sinks {
		drops += s.Count(obs.KindLateDrop)
		arrivals += s.Count(obs.KindArrival)
	}
	if drops != r.Counters.LateDropped {
		t.Fatalf("late-drop trace events %d != LateDropped counter %d", drops, r.Counters.LateDropped)
	}
	if arrivals != uint64(r.Arrivals) {
		t.Fatalf("arrival trace events %d != processed arrivals %d", arrivals, r.Arrivals)
	}
}

// TestHostileStreamEquivalence is the harness's headline: every scenario of
// the suite, run through every cell of the execution matrix, must deliver
// exactly the REF baseline's final multiset. Multiset equality doubles as
// the exactly-once proof for cells with adaptive migration: a lost or
// duplicated delivery during a plan handoff shows up as a count mismatch.
func TestHostileStreamEquivalence(t *testing.T) {
	short := testing.Short()
	for _, sc := range Suite(short) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			base := sc.Apply(Base(short))
			ref := base
			ref.Bushy, ref.Mode, ref.Shards, ref.Adapt = true, core.REF(), 1, false
			refRes, refKeys := ref.RunKeys()
			if refRes.Results == 0 {
				t.Fatalf("degenerate scenario: REF baseline produced no finals (arrivals=%d)", refRes.Arrivals)
			}
			checkRun(t, refRes, refKeys)
			t.Logf("REF baseline: %d finals over %d arrivals", refRes.Results, refRes.Arrivals)
			want := Multiset(refKeys)
			for _, cell := range Matrix(short) {
				cell := cell
				t.Run(cell.String(), func(t *testing.T) {
					t.Parallel()
					p := cell.Apply(base)
					sinks := traceCell(&p)
					if cell.Shards > 1 {
						p.KeepResults = true
						res := p.RunSharded()
						checkRun(t, res.Merged, res.ResultKeys())
						checkSharded(t, sc, res)
						checkEventConservation(t, res.Merged, *sinks)
						requireEqualMultisets(t, Multiset(res.ResultKeys()), want)
						if m := res.Merged.Counters.Migrations; m > 0 {
							t.Logf("exactly-once held across %d migrations (%d duplicate deliveries suppressed)",
								m, res.Merged.Counters.MigrationDups)
						}
						return
					}
					r, keys := p.RunKeys()
					checkRun(t, r, keys)
					checkEventConservation(t, r, *sinks)
					requireEqualMultisets(t, Multiset(keys), want)
					if m := r.Counters.Migrations; m > 0 {
						t.Logf("exactly-once held across %d migrations (%d duplicate deliveries suppressed)",
							m, r.Counters.MigrationDups)
					}
				})
			}
		})
	}
}

// TestSeedSweepProperty is the property-style sweep: a deterministic PRNG
// draws a random topology and a random mutator stack per seed, and every
// draw must satisfy the same two properties — all four modes deliver the
// REF multiset, and a sharded run's merged counters equal the field-wise
// sum of its per-shard counters (the behavioral face of the
// TestCountersAddCoversEveryField reflection pin: a counter field that
// Add misses would diverge here, not just in structure).
func TestSeedSweepProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x59a7))
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for i := 0; i < seeds; i++ {
		p := exp.Params{
			N:       3 + rng.Intn(2),
			Bushy:   rng.Intn(2) == 0,
			Window:  stream.Minute,
			Rate:    3,
			DMax:    60,
			Horizon: 2 * stream.Minute,
			Seed:    int64(i + 1),
			Drain:   true,
		}
		stack := ""
		if rng.Intn(2) == 0 {
			// Skew multiplies the per-predicate match probability; shrink the
			// workload so the result volume stays in the control's ballpark.
			p.Zipf = 1.5 + 0.3*rng.Float64()
			p.N, p.Rate, p.Window = 3, 0.5, 30*stream.Second
			stack += fmt.Sprintf("+zipf%.2f", p.Zipf)
		}
		if rng.Intn(2) == 0 {
			p.Burst = 2 + 2*rng.Float64()
			p.BurstPeriod = 20 * stream.Second
			stack += fmt.Sprintf("+burst%.1f", p.Burst)
		}
		if rng.Intn(2) == 0 {
			p.Disorder = stream.Time(1+rng.Intn(10)) * stream.Second
			stack += fmt.Sprintf("+disorder%v", p.Disorder)
		}
		if rng.Intn(2) == 0 {
			p.Band = stream.Value(1 + rng.Intn(2))
			p.DMax *= 2*int64(p.Band) + 1 // keep per-predicate selectivity level
			stack += fmt.Sprintf("+band%d", p.Band)
		}
		if stack == "" {
			stack = "+none"
		}
		topo := "leftdeep"
		if p.Bushy {
			topo = "bushy"
		}
		t.Run(fmt.Sprintf("seed=%d/N=%d/%s%s", p.Seed, p.N, topo, stack), func(t *testing.T) {
			ref := p
			ref.Mode = core.REF()
			refRes, refKeys := ref.RunKeys()
			checkRun(t, refRes, refKeys)
			want := Multiset(refKeys)
			for _, nm := range exp.AblationModes() {
				if nm.Name == "REF" {
					continue
				}
				q := p
				q.Mode = nm.Mode
				r, keys := q.RunKeys()
				checkRun(t, r, keys)
				if diffs := DiffMultisets(Multiset(keys), want); len(diffs) > 0 {
					t.Fatalf("%s diverges from REF on %d keys: %v", nm.Name, len(diffs), diffs[0])
				}
			}
			s := p
			s.Mode, s.Shards, s.KeepResults = core.JIT(), 3, true
			res := s.RunSharded()
			if diffs := DiffMultisets(Multiset(res.ResultKeys()), want); len(diffs) > 0 {
				t.Fatalf("sharded JIT diverges from REF on %d keys: %v", len(diffs), diffs[0])
			}
			var sum metrics.Counters
			sv := reflect.ValueOf(&sum).Elem()
			for _, sh := range res.Shards {
				cv := reflect.ValueOf(sh.Counters)
				for f := 0; f < cv.NumField(); f++ {
					sv.Field(f).SetUint(sv.Field(f).Uint() + cv.Field(f).Uint())
				}
			}
			if sum != res.Merged.Counters {
				t.Fatalf("merged counters are not the field-wise per-shard sum:\nmerged: %+v\nsum:    %+v",
					res.Merged.Counters, sum)
			}
		})
	}
}
