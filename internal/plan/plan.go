// Package plan constructs execution plans: the X-Join binary trees of
// Table II (bushy and left-deep), arbitrary user-specified trees, and the
// alternative M-Join and Eddy topologies of Sec. II/V.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// Node is a plan-shape tree: leaves name sources, internal nodes are binary
// joins.
type Node struct {
	Source stream.SourceID // valid when leaf
	Left   *Node
	Right  *Node
}

// Leaf creates a leaf node.
func Leaf(id stream.SourceID) *Node { return &Node{Source: id} }

// J creates an internal join node.
func J(l, r *Node) *Node { return &Node{Left: l, Right: r} }

// IsLeaf reports whether the node is a source leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Sources returns the set of sources under the node.
func (n *Node) Sources() stream.SourceSet {
	if n.IsLeaf() {
		return stream.SourceSet(0).Add(n.Source)
	}
	return n.Left.Sources().Union(n.Right.Sources())
}

// Render prints the shape with the paper's notation, e.g. ((A B) C).
func (n *Node) Render(cat *stream.Catalog) string {
	if n.IsLeaf() {
		return cat.Source(n.Source).Name
	}
	return "(" + n.Left.Render(cat) + " " + n.Right.Render(cat) + ")"
}

// Canonical renders the shape catalog-free, over source ids — a stable
// identity usable as a map key, e.g. "((0 1) 2)". The adaptive
// re-optimizer keys candidate shapes and migration decisions on it
// (internal/adapt), including across shard replicas whose plans are
// distinct object graphs of the same shape.
func (n *Node) Canonical() string {
	if n.IsLeaf() {
		return fmt.Sprintf("%d", n.Source)
	}
	return "(" + n.Left.Canonical() + " " + n.Right.Canonical() + ")"
}

// LeftDeep builds the left-deep shape of Table II: (((A B) C) D) ...
func LeftDeep(n int) *Node {
	if n < 2 {
		panic("plan: left-deep needs >= 2 sources")
	}
	t := Leaf(0)
	for i := 1; i < n; i++ {
		t = J(t, Leaf(stream.SourceID(i)))
	}
	return t
}

// Bushy builds the bushy shapes of Table II:
//
//	N=4: (A B) (C D)
//	N=5: ((A B) (C D)) E
//	N=6: ((A B) (C D)) (E F)
//	N=7: ((A B) (C D)) ((E F) G)
//	N=8: ((A B) (C D)) ((E F) (G H))
//
// For other N it produces the balanced binary tree over the sources, which
// coincides with the table for all listed values.
func Bushy(n int) *Node {
	if n < 2 {
		panic("plan: bushy needs >= 2 sources")
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = Leaf(stream.SourceID(i))
	}
	for len(nodes) > 1 {
		var next []*Node
		for i := 0; i+1 < len(nodes); i += 2 {
			next = append(next, J(nodes[i], nodes[i+1]))
		}
		if len(nodes)%2 == 1 {
			// The odd leftover rises to the next level unchanged, so N=5
			// yields ((A B) (C D)) E and N=7 yields ((A B) (C D)) ((E F) G),
			// exactly as in Table II.
			next = append(next, nodes[len(nodes)-1])
		}
		nodes = next
	}
	return nodes[0]
}

// Feed tells the engine where a source's arrivals enter the plan.
type Feed struct {
	Op   operator.Consumer
	Port operator.Port
}

// Built is a wired executable plan.
type Built struct {
	Catalog *stream.Catalog
	Window  stream.Time
	Root    operator.Op
	Sink    *operator.Sink
	// Joins lists every join operator bottom-up (producers before
	// consumers) — the engine's sweep order.
	Joins []*core.JoinOp
	// Feeds maps each source to its entry point.
	Feeds map[stream.SourceID]Feed
	// Counters and Account are the shared measurement substrate.
	Counters *metrics.Counters
	Account  *metrics.Account
	// Trace is the attached observability layer; nil (the default) disables
	// it. Set it with SetTrace — deliberately not a build Option, so the
	// throwaway plans Replicate/Rebuild/shadow-scoring construct stay
	// untraced unless explicitly attached.
	Trace *obs.Tracer

	nextMNS uint64

	// The build spec is retained so the plan can be replicated for sharded
	// execution (internal/shard): preds/shape/opt plus the shared Catalog
	// reconstruct an identical, fully independent operator tree.
	preds predicate.Conj
	shape *Node
	opt   Options
}

// Options configures plan construction.
type Options struct {
	Window stream.Time
	Mode   core.Mode
	// KeepResults makes the sink retain all results (tests only).
	KeepResults bool
	// NoStateIndex disables the hash-indexed join states (DESIGN.md §3),
	// forcing every probe down the linear scan path. Equivalence tests and
	// the indexed-vs-scan benchmarks flip this; production plans leave it
	// off. Joins whose crossing predicates yield no equi key (cross
	// products) fall back to scans regardless.
	NoStateIndex bool
}

// BuildTree wires a Node shape into JoinOps plus a sink.
func BuildTree(cat *stream.Catalog, preds predicate.Conj, shape *Node, opt Options) *Built {
	b := &Built{
		Catalog:  cat,
		Window:   opt.Window,
		Feeds:    make(map[stream.SourceID]Feed),
		Counters: &metrics.Counters{},
		Account:  &metrics.Account{},
		preds:    preds,
		shape:    shape,
		opt:      opt,
	}
	b.Sink = operator.NewSink("sink", b.Counters, opt.KeepResults)
	root := b.wire(cat, preds, shape, opt)
	rootJoin, ok := root.(*core.JoinOp)
	if !ok {
		panic("plan: root must be a join")
	}
	rootJoin.SetConsumer(b.Sink, operator.Left)
	b.Root = rootJoin
	return b
}

// Shape returns the plan's shape tree. Together with Preds it lets the
// shard partitioner re-derive each operator's equi-key columns
// (predicate.Conj.EquiKeyCols) and intersect them up the tree into a
// plan-wide partition key (DESIGN.md §5).
func (b *Built) Shape() *Node { return b.shape }

// Preds returns the query conjunction the plan was built from.
func (b *Built) Preds() predicate.Conj { return b.preds }

// Opt returns the options the plan was built with. Shadow scoring
// (internal/adapt) derives candidate-plan options from them.
func (b *Built) Opt() Options { return b.opt }

// Rebuild constructs a fresh plan over the same catalog, predicates and
// options but a different shape — the successor plan of a mid-run migration
// (internal/adapt, DESIGN.md §7). Like Replicate it shares no mutable state
// with b.
func (b *Built) Rebuild(shape *Node) *Built {
	return BuildTree(b.Catalog, b.preds, shape, b.opt)
}

// RootJoin returns the root operator as its concrete join type (the root of
// a wired plan is always a join; BuildTree enforces it). Callers that
// re-route the plan's output — the migration dedup tap — need SetConsumer,
// which the operator.Op interface does not expose.
func (b *Built) RootJoin() *core.JoinOp { return b.Root.(*core.JoinOp) }

// SnapshotInWindow exports every base tuple still inside the window at the
// cut, in global arrival order — the plan-level §2 snapshot cut (DESIGN.md
// §7). Between arrivals, each in-window base tuple sits in exactly one
// place: its source's feed side, either active in the state or parked in a
// blacklist (core.JoinOp.SnapshotBase). Tuple IDs are assigned in global
// delivery order by the source merge, so ordering by (TS, ID, Source)
// reconstructs the original interleaving exactly; replaying the snapshot
// into a freshly built plan yields the state that plan would hold had it
// been started one window before the cut.
func (b *Built) SnapshotInWindow(cut stream.Time) []*stream.Tuple {
	var out []*stream.Tuple
	for _, f := range b.Feeds {
		out = append(out, f.Op.(*core.JoinOp).SnapshotBase(f.Port, cut)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// ReplayInWindow feeds snapshot rows back through the plan in order: each
// row is preceded by a full expiry sweep at its timestamp (charged to
// Counters.Sweeps) and then consumed at its source's feed, exactly the
// arrival discipline the engine applies. Replaying a SnapshotInWindow cut
// into a freshly built plan yields the state that plan would hold had it
// been running since one window before the cut (DESIGN.md §7) — the restore
// half of both the adaptive migration handoff (internal/adapt) and the
// durable checkpoint recovery (internal/checkpoint, internal/serve).
func (b *Built) ReplayInWindow(rows []*stream.Tuple) {
	n := b.Catalog.NumSources()
	for _, t := range rows {
		b.Counters.Sweeps += uint64(len(b.Joins))
		b.Sweep(t.TS)
		f := b.Feeds[t.Source]
		f.Op.Consume(stream.NewComposite(n, t), f.Port)
	}
}

// Replicate builds a fresh plan identical to b — same catalog, predicates,
// shape and options, but new operators, counters, account and sink, sharing
// no mutable state with b. A replica is the unit of scale-out in
// internal/shard: each engine goroutine drives its own replica, so no
// operator-level locking is ever needed.
func (b *Built) Replicate() *Built {
	return BuildTree(b.Catalog, b.preds, b.shape, b.opt)
}

// SetTrace attaches (or, with nil, detaches) an observability tracer to the
// wired plan: every join and the sink get their event hooks, and the tracer
// is bound to the plan's measurement substrate for sampling. Called once
// after build, and again by the migration handoff so the successor plan
// inherits the run's tracer (DESIGN.md §9).
func (b *Built) SetTrace(tr *obs.Tracer) {
	b.Trace = tr
	for _, j := range b.Joins {
		j.SetTrace(tr)
	}
	b.Sink.SetTrace(tr)
	if tr == nil {
		return
	}
	ops := make([]obs.OpRef, len(b.Joins))
	for i, j := range b.Joins {
		j := j
		ops[i] = obs.OpRef{Name: j.Name(), Stats: j.Stats}
	}
	tr.Bind(b.Counters, b.Account, ops)
}

// NextMNS hands out plan-unique MNS / mark identifiers.
func (b *Built) NextMNS() uint64 {
	b.nextMNS++
	return b.nextMNS
}

// wire recursively builds the operator for a node and returns it; for
// leaves it returns nil (the parent registers the feed).
func (b *Built) wire(cat *stream.Catalog, preds predicate.Conj, n *Node, opt Options) operator.Op {
	if n.IsLeaf() {
		panic("plan: wire called on leaf")
	}
	var leftProd, rightProd operator.Producer
	var leftOp, rightOp *core.JoinOp
	if !n.Left.IsLeaf() {
		leftOp = b.wire(cat, preds, n.Left, opt).(*core.JoinOp)
		leftProd = leftOp
	}
	if !n.Right.IsLeaf() {
		rightOp = b.wire(cat, preds, n.Right, opt).(*core.JoinOp)
		rightProd = rightOp
	}
	name := fmt.Sprintf("Op%d", len(b.Joins)+1)
	// Derive the operator's equi-key columns from the predicates crossing
	// its two input sides; nil keys (no crossing predicate, or indexing
	// disabled) leave the operator's states scan-only (DESIGN.md §3).
	var lk, rk []predicate.Attr
	if !opt.NoStateIndex {
		if l, r, ok := preds.EquiKeyCols(n.Left.Sources(), n.Right.Sources()); ok {
			lk, rk = l, r
		}
	}
	j := core.NewJoin(core.Config{
		Name:         name,
		NumSources:   cat.NumSources(),
		Window:       opt.Window,
		Preds:        preds,
		Mode:         opt.Mode,
		Counters:     b.Counters,
		Account:      b.Account,
		NextMNS:      b.NextMNS,
		LeftSources:  n.Left.Sources(),
		RightSources: n.Right.Sources(),
		LeftKey:      lk,
		RightKey:     rk,
		LeftProd:     leftProd,
		RightProd:    rightProd,
	})
	if leftOp != nil {
		leftOp.SetConsumer(j, operator.Left)
	} else {
		b.Feeds[n.Left.Source] = Feed{Op: j, Port: operator.Left}
	}
	if rightOp != nil {
		rightOp.SetConsumer(j, operator.Right)
	} else {
		b.Feeds[n.Right.Source] = Feed{Op: j, Port: operator.Right}
	}
	b.Joins = append(b.Joins, j)
	return j
}

// Sweep runs the expiry sweep over every join, producers first.
func (b *Built) Sweep(now stream.Time) {
	for _, j := range b.Joins {
		j.Sweep(now)
	}
}

// Describe renders a one-line summary of the plan.
func (b *Built) Describe() string {
	var parts []string
	for _, j := range b.Joins {
		parts = append(parts, j.String())
	}
	return strings.Join(parts, " ; ")
}
