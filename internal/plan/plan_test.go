package plan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// TestTableIIShapes verifies the plan shapes against Table II of the paper.
func TestTableIIShapes(t *testing.T) {
	// Rendered with explicit outer parentheses; the inner structure matches
	// Table II exactly.
	bushy := map[int]string{
		4: "((A B) (C D))",
		5: "(((A B) (C D)) E)",
		6: "(((A B) (C D)) (E F))",
		7: "(((A B) (C D)) ((E F) G))",
		8: "(((A B) (C D)) ((E F) (G H)))",
	}
	for n, want := range bushy {
		cat, _ := predicate.Clique(n)
		got := Bushy(n).Render(cat)
		if got != want {
			t.Errorf("bushy N=%d: got %s want %s", n, got, want)
		}
	}
	ld := map[int]string{
		3: "((A B) C)",
		4: "(((A B) C) D)",
		5: "((((A B) C) D) E)",
		6: "(((((A B) C) D) E) F)",
	}
	for n, want := range ld {
		cat, _ := predicate.Clique(n)
		got := LeftDeep(n).Render(cat)
		if got != want {
			t.Errorf("left-deep N=%d: got %s want %s", n, got, want)
		}
	}
}

func TestNodeSources(t *testing.T) {
	n := J(J(Leaf(0), Leaf(1)), Leaf(2))
	if n.Sources().Count() != 3 || !n.Sources().Has(2) {
		t.Fatal("sources wrong")
	}
	if !Leaf(1).IsLeaf() || n.IsLeaf() {
		t.Fatal("leaf detection wrong")
	}
}

func TestBuildTreeWiring(t *testing.T) {
	cat, conj := predicate.Clique(4)
	b := BuildTree(cat, conj, Bushy(4), Options{Window: stream.Minute, Mode: core.JIT()})
	if len(b.Joins) != 3 {
		t.Fatalf("want 3 joins for N=4, got %d", len(b.Joins))
	}
	// Bottom-up order: the root must come last.
	root := b.Joins[len(b.Joins)-1]
	if root.OutSources().Count() != 4 {
		t.Fatalf("root covers %v", root.OutSources())
	}
	// Every source has a feed.
	for i := 0; i < 4; i++ {
		if _, ok := b.Feeds[stream.SourceID(i)]; !ok {
			t.Fatalf("source %d has no feed", i)
		}
	}
	// MNS ids unique and monotonic.
	a, bid := b.NextMNS(), b.NextMNS()
	if a == 0 || bid <= a {
		t.Fatal("NextMNS not monotonic")
	}
	if b.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestBuildLeftDeep(t *testing.T) {
	cat, conj := predicate.Clique(5)
	b := BuildTree(cat, conj, LeftDeep(5), Options{Window: stream.Minute, Mode: core.REF()})
	if len(b.Joins) != 4 {
		t.Fatalf("want 4 joins for left-deep N=5, got %d", len(b.Joins))
	}
	// In a left-deep plan every non-leaf join's right input is a raw source.
	for i, j := range b.Joins {
		if i == 0 {
			continue
		}
		_ = j
	}
}
