package plan_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stream"
)

// ExampleBushy shows the Table II plan shapes for N=5 sources.
func ExampleBushy() {
	cat, _ := predicate.Clique(5)
	fmt.Println(plan.Bushy(5).Render(cat))
	fmt.Println(plan.LeftDeep(5).Render(cat))
	// Output:
	// (((A B) (C D)) E)
	// ((((A B) C) D) E)
}

// ExampleBuildTree wires a 3-way query into join operators and shows the
// derived equi-key columns doing their work: the bushy root joins {A,B}
// with {C} on the single crossing predicate A.y = C.y.
func ExampleBuildTree() {
	cat := stream.NewCatalog()
	cat.MustAdd(stream.NewSchema("A", "x", "y"))
	cat.MustAdd(stream.NewSchema("B", "x"))
	cat.MustAdd(stream.NewSchema("C", "y"))
	conj := predicate.Conj{
		{Left: 0, LCol: 0, Right: 1, RCol: 0}, // A.x = B.x
		{Left: 0, LCol: 1, Right: 2, RCol: 0}, // A.y = C.y
	}
	shape := plan.J(plan.J(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))
	b := plan.BuildTree(cat, conj, shape, plan.Options{
		Window: 5 * stream.Minute, Mode: core.JIT(),
	})
	fmt.Println(b.Describe())
	for _, j := range b.Joins {
		left, _, _ := j.Side(0)
		fmt.Printf("%s indexed on %v\n", j.Name(), left.IndexKey())
	}
	// Output:
	// Op1({0}⋈{1}) ; Op2({0,1}⋈{2})
	// Op1 indexed on [s0.c0]
	// Op2 indexed on [s0.c1]
}
