// Hostile-stream overhead benchmarks (DESIGN.md §8): the scenario
// harness's full-size mutator stacks run one JIT engine each, plus the
// band-vs-equi degradation pair. Two questions, measured not argued:
//
//   - What does each mutator cost? Every Suite(false) scenario runs the
//     same N=4 clique family (leaner streams where the mutator multiplies
//     selectivity), so cost-units and wall time are comparable across
//     stacks and against the baseline control.
//   - What does losing the equi-key cost? The band pair runs the same
//     stream twice with hash-indexed states: once equi (hash probes, key
//     extraction) and once with ±2 band predicates (keying defeated,
//     linear scans over every state). The cost-units ratio is the
//     measured degradation the fallback path pays.
//
// Results are recorded in BENCH_hostile.json; TestHostileStreamEquivalence
// (internal/scenario) pins that every configuration here delivers the
// REF baseline's exact final multiset.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/scenario"
)

// benchParams runs the configuration once per iteration and reports the
// totals as custom metrics.
func benchParams(b *testing.B, p exp.Params) {
	b.ReportAllocs()
	var r engine.Result
	for i := 0; i < b.N; i++ {
		r = p.Run()
	}
	b.ReportMetric(float64(r.Results), "results")
	b.ReportMetric(float64(r.CostUnits), "cost-units")
	b.ReportMetric(float64(r.Counters.LateDropped), "late-dropped")
}

// BenchmarkHostileScenarios measures each full-size mutator stack under
// JIT on a single engine.
func BenchmarkHostileScenarios(b *testing.B) {
	for _, sc := range scenario.Suite(false) {
		b.Run(sc.Name, func(b *testing.B) {
			p := sc.Apply(scenario.Base(false))
			p.Mode = core.JIT()
			benchParams(b, p)
		})
	}
}

// BenchmarkHostileBandVsEqui measures the non-equi degradation: the same
// workload with hash-indexed states, equi predicates (keyed hash probes)
// versus ±2 band predicates (keying defeated, linear probe fallback).
// The band run widens the domain 5× so the per-predicate match
// probability — and with it the result volume — stays comparable; the
// remaining cost-units gap is the price of scanning instead of hashing.
func BenchmarkHostileBandVsEqui(b *testing.B) {
	base := scenario.Base(false)
	base.Mode = core.JIT()
	base.Indexed = true
	b.Run("equi-indexed", func(b *testing.B) {
		benchParams(b, base)
	})
	b.Run("band-linear", func(b *testing.B) {
		p := base
		p.Band = 2
		p.DMax = 5 * base.DMax
		benchParams(b, p)
	})
}
