// Package repro's top-level benchmarks regenerate every figure of the
// paper's evaluation (Sec. VI). Each benchmark runs one full parameter
// sweep using the quick preset (exp.QuickConfig: windows and domains at
// 30% size, horizon 2.5 windows) so the whole suite finishes in minutes,
// and reports the aggregate JIT/REF improvement factors as custom metrics.
// Full paper-exact sweeps are produced by cmd/jitbench (-size 1 [-scale 1]);
// their measured series are recorded in EXPERIMENTS.md.
//
// Run a single figure:
//
//	go test -bench BenchmarkFig10 -benchtime 1x .
//
// The cmd/jitbench binary renders the full per-point tables and supports
// the paper's full 5-hour horizon via -scale 1.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// benchFigure runs one figure per iteration and reports improvement factors.
func benchFigure(b *testing.B, run func(exp.Config) *exp.Figure, quick bool) {
	b.ReportAllocs()
	cfg := exp.Config{Scale: 0.001, Seed: 1, Modes: exp.DefaultModes()}
	if quick {
		cfg = exp.QuickConfig()
	}
	var costRatio, memRatio float64
	var points int
	for i := 0; i < b.N; i++ {
		f := run(cfg)
		costRatio, memRatio, points = 0, 0, 0
		for _, pt := range f.Points {
			jit, ref := pt.Results["JIT"], pt.Results["REF"]
			if jit.CostUnits > 0 {
				costRatio += float64(ref.CostUnits) / float64(jit.CostUnits)
			}
			if jit.PeakMemKB > 0 {
				memRatio += ref.PeakMemKB / jit.PeakMemKB
			}
			points++
		}
	}
	if points > 0 {
		b.ReportMetric(costRatio/float64(points), "REF/JIT-cost")
		b.ReportMetric(memRatio/float64(points), "REF/JIT-mem")
	}
}

// BenchmarkFig10 regenerates Figure 10: CPU & memory vs window size w
// (bushy plan).
func BenchmarkFig10(b *testing.B) { benchFigure(b, exp.Fig10, true) }

// BenchmarkFig11 regenerates Figure 11: CPU & memory vs stream rate λ
// (bushy plan).
func BenchmarkFig11(b *testing.B) { benchFigure(b, exp.Fig11, true) }

// BenchmarkFig12 regenerates Figure 12: CPU & memory vs number of sources N
// (bushy plan).
func BenchmarkFig12(b *testing.B) { benchFigure(b, exp.Fig12, true) }

// BenchmarkFig13 regenerates Figure 13: CPU & memory vs max data value dmax
// (bushy plan).
func BenchmarkFig13(b *testing.B) { benchFigure(b, exp.Fig13, true) }

// BenchmarkFig14 regenerates Figure 14: CPU & memory vs window size w
// (left-deep plan).
func BenchmarkFig14(b *testing.B) { benchFigure(b, exp.Fig14, true) }

// BenchmarkFig15 regenerates Figure 15: CPU & memory vs stream rate λ
// (left-deep plan).
func BenchmarkFig15(b *testing.B) { benchFigure(b, exp.Fig15, true) }

// BenchmarkFig16 regenerates Figure 16: CPU & memory vs number of sources N
// (left-deep plan).
func BenchmarkFig16(b *testing.B) { benchFigure(b, exp.Fig16, true) }

// BenchmarkFig17 regenerates Figure 17: CPU & memory vs max data value dmax
// (left-deep plan).
func BenchmarkFig17(b *testing.B) { benchFigure(b, exp.Fig17, true) }

// benchProbe runs a 4-way clique workload with a large window (states grow
// to thousands of live entries) and reports per-arrival probe cost, with
// the hash-indexed join states either on or off. The pair of benchmarks
// quantifies the DESIGN.md §3 claim: indexed probes visit only the
// matching bucket, so comparisons per arrival collapse from O(|state|) to
// O(matches).
func benchProbe(b *testing.B, m core.Mode, noIndex bool) {
	cat, conj := predicate.Clique(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, 8, 100, 3*stream.Minute, 1))
	b.ReportAllocs()
	b.ResetTimer()
	var cmp float64
	for i := 0; i < b.N; i++ {
		p := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
			Window: 2 * stream.Minute, Mode: m, NoStateIndex: noIndex,
		})
		res := engine.New(p).Run(arrivals)
		cmp = float64(res.Counters.Comparisons) / float64(res.Arrivals)
	}
	b.ReportMetric(cmp, "cmp/arrival")
}

// BenchmarkProbeScanREF is the baseline: linear state scans, no JIT.
func BenchmarkProbeScanREF(b *testing.B) { benchProbe(b, core.REF(), true) }

// BenchmarkProbeIndexedREF is the same workload over hash-indexed states.
func BenchmarkProbeIndexedREF(b *testing.B) { benchProbe(b, core.REF(), false) }

// BenchmarkProbeScanJIT runs the full JIT machinery with linear scans.
func BenchmarkProbeScanJIT(b *testing.B) { benchProbe(b, core.JIT(), true) }

// BenchmarkProbeIndexedJIT adds the index under JIT: fresh probes on
// leaf-fed sides, resumption catch-up and the detection existence pass all
// take the bucket walk; only the no-full-match observation rescan stays
// linear.
func BenchmarkProbeIndexedJIT(b *testing.B) { benchProbe(b, core.JIT(), false) }

// benchSweep measures the engine's sweep scheduling (DESIGN.md §4): the
// same JIT workload driven either by the deadline heap (sweeps fire only on
// operators whose deadline passed) or by the historical sweep-every-arrival
// hot path. Results and all work counters are identical either way (see
// TestDeadlineSweepEquivalence); the metrics isolate pure scheduling
// overhead — sweeps actually fired per arrival, and wall time.
func benchSweep(b *testing.B, rate float64, window, horizon stream.Time, everyArrival bool) {
	cat, conj := predicate.Clique(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, rate, 100, horizon, 1))
	b.ReportAllocs()
	b.ResetTimer()
	var sweeps float64
	for i := 0; i < b.N; i++ {
		p := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
			Window: window, Mode: core.JIT(),
		})
		eng := engine.NewWithOptions(p, engine.Options{SweepEveryArrival: everyArrival})
		res := eng.Run(arrivals)
		sweeps = float64(res.Counters.Sweeps) / float64(res.Arrivals)
	}
	b.ReportMetric(sweeps, "sweeps/arrival")
}

// BenchmarkSweepEverySparse: sparse stream (λ=0.2, w=2min), sweep before
// every arrival — almost every sweep is a no-op.
func BenchmarkSweepEverySparse(b *testing.B) {
	benchSweep(b, 0.2, 2*stream.Minute, 30*stream.Minute, true)
}

// BenchmarkSweepDeadlineSparse: same sparse stream on the deadline heap —
// sweeps fire only when an operator actually has expiry work.
func BenchmarkSweepDeadlineSparse(b *testing.B) {
	benchSweep(b, 0.2, 2*stream.Minute, 30*stream.Minute, false)
}

// BenchmarkSweepEveryDense: dense stream (λ=8, w=30s over 2min), with real
// expiry churn, sweep-every-arrival.
func BenchmarkSweepEveryDense(b *testing.B) {
	benchSweep(b, 8, 30*stream.Second, 2*stream.Minute, true)
}

// BenchmarkSweepDeadlineDense: dense stream on the deadline heap; with
// arrivals every few milliseconds most operators still have no due
// deadline, so scheduled sweeps stay well below one per arrival.
func BenchmarkSweepDeadlineDense(b *testing.B) {
	benchSweep(b, 8, 30*stream.Second, 2*stream.Minute, false)
}

// BenchmarkAblationDefault compares JIT, REF, DOE and Bloom-JIT at the
// Table III bushy default point — the design-choice ablation called out in
// DESIGN.md.
func BenchmarkAblationDefault(b *testing.B) {
	cfg := exp.QuickConfig()
	cfg.Modes = exp.AblationModes()
	for i := 0; i < b.N; i++ {
		p := exp.DefaultBushyParams(cfg)
		for _, nm := range cfg.Modes {
			q := p
			q.Mode = nm.Mode
			q.Seed = 1
			q.Window = q.Window * 3 / 10
			q.DMax = q.DMax * 3 / 10
			q.Horizon = q.Window * 5 / 2
			r := q.Run()
			b.ReportMetric(float64(r.CostUnits), nm.Name+"-cost")
		}
	}
}
