// Network-service benchmarks (DESIGN.md §10): what the serve front-end costs
// on top of the bare engine, measured at its two ends.
//
//   - ingest   — end-to-end NDJSON-over-TCP serving: a fresh server per
//     iteration, every arrival framed, written over a real socket, decoded,
//     validated and engine-processed, the stream closed with eos and drained.
//     Reported as ns/arrival, comparable with the engine-only figures in
//     BENCH_obs.json (the delta is the network front-end's overhead).
//   - recovery — crash recovery from a meaty mid-run checkpoint: the setup
//     runs a checkpointing server across several boundaries and abandons it
//     without the final drain (the abandoned incarnation stands in for a
//     killed one), then each iteration restores the newest cut into a fresh
//     server — decode, plan rebuild, in-window replay — and reports both the
//     full Open wall time and the decode+replay slice (RecoveryInfo.Elapsed).
//
// Results are recorded in BENCH_serve.json; the kill-point harness
// (internal/serve/crash_test.go) pins that recovery is exact in every mode,
// so this file only has to measure it.
package repro_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/serve"
	"repro/internal/source"
	"repro/internal/stream"
)

// serveWorkload is the clique workload shared by both sub-benchmarks: the
// BENCH_hostile.json baseline family (N=4 bushy JIT, rate 2.5, dmax 24 —
// narrow enough that the 4-clique actually produces finals, so deliveries
// flow through the hub and the recovered checkpoint carries a delivery tail)
// over three minutes of stream time, crossing several 15-second checkpoint
// boundaries.
func serveWorkload() []*stream.Tuple {
	cat, _ := predicate.Clique(4)
	return source.Generate(cat, source.UniformConfig(4, 2.5, 24, 3*stream.Minute, 1))
}

func serveConfig(dir string) serve.Config {
	cfg := serve.Config{
		N: 4, Bushy: true, Window: stream.Minute, Mode: core.JIT(),
		Addr: "127.0.0.1:0",
	}
	if dir != "" {
		cfg.Dir, cfg.Every, cfg.Keep = dir, 15*stream.Second, 8
	}
	return cfg
}

// feedAll speaks the ingest protocol: greet, stream every tuple as a frame,
// then eos when asked; the final summary line is read back so the engine has
// fully drained before the connection closes.
func feedAll(b *testing.B, addr string, tuples []*stream.Tuple, eos bool) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	w := bufio.NewWriterSize(conn, 64<<10)
	sc := bufio.NewScanner(conn)
	fmt.Fprintln(w, `{"cmd":"ingest"}`)
	w.Flush()
	if !sc.Scan() {
		b.Fatalf("no ingest greeting")
	}
	enc := json.NewEncoder(w)
	for _, t := range tuples {
		vals := make([]int64, len(t.Vals))
		for i, v := range t.Vals {
			vals[i] = int64(v)
		}
		if err := enc.Encode(serve.Frame{ID: t.ID, Source: int(t.Source), TS: int64(t.TS), Vals: vals}); err != nil {
			b.Fatalf("frame: %v", err)
		}
	}
	if eos {
		fmt.Fprintln(w, `{"cmd":"eos"}`)
	}
	if err := w.Flush(); err != nil {
		b.Fatalf("flush: %v", err)
	}
	if eos && !sc.Scan() {
		b.Fatalf("no eos summary: %v", sc.Err())
	}
}

// BenchmarkServe measures the network front-end. The nightly CI job snapshots
// this into BENCH_serve.json.
func BenchmarkServe(b *testing.B) {
	tuples := serveWorkload()

	b.Run("ingest", func(b *testing.B) {
		var delivered uint64
		for i := 0; i < b.N; i++ {
			cfg := serveConfig("")
			s, err := serve.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			feedAll(b, s.Addr(), tuples, true)
			if _, err := s.Wait(); err != nil {
				b.Fatal(err)
			}
			s.Shutdown()
			delivered = s.Stats().Delivered
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tuples)), "ns/arrival")
		b.ReportMetric(float64(delivered), "deliveries")
	})

	b.Run("recovery", func(b *testing.B) {
		// Seed: run a checkpointing server over the whole workload but do NOT
		// shut it down before copying the store — Shutdown's drain would write
		// the empty end-of-run checkpoint and recovery would restore nothing.
		// The fully-fed, never-drained incarnation is exactly a crashed one.
		seedDir := b.TempDir()
		s, err := serve.Open(serveConfig(seedDir))
		if err != nil {
			b.Fatal(err)
		}
		feedAll(b, s.Addr(), tuples, false)
		// The ingest HWM is admission-side: arrivals can still be in flight to
		// the engine (and checkpoints still landing, pruning older ones) after
		// it reaches the last ID. Wait for the store itself to go quiescent,
		// then hold the newest cut's bytes in memory, immune to pruning.
		var seed []byte
		deadline := time.Now().Add(30 * time.Second)
		for prev := ""; time.Now().Before(deadline); {
			names, err := filepath.Glob(filepath.Join(seedDir, "ck-*.jck"))
			if err != nil {
				b.Fatal(err)
			}
			cur := fmt.Sprint(names)
			if len(names) > 0 && cur == prev {
				data, err := os.ReadFile(names[len(names)-1])
				if err == nil {
					seed = data
					break
				}
			}
			prev = cur
			time.Sleep(100 * time.Millisecond)
		}
		if seed == nil {
			b.Fatal("checkpoint store never went quiescent")
		}

		var rows, tail int
		var replay time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "ck-00000001.jck"), seed, 0o644); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			r, err := serve.Open(serveConfig(dir))
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			rec := r.Recovery()
			if rec == nil {
				b.Fatal("no recovery performed")
			}
			rows, tail, replay = rec.Rows, rec.Tail, rec.Elapsed
			r.Shutdown()
			b.StartTimer()
		}
		b.ReportMetric(float64(replay.Nanoseconds()), "replay-ns")
		b.ReportMetric(float64(rows), "rows")
		b.ReportMetric(float64(tail), "tail")
		s.Shutdown()
	})
}
