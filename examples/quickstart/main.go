// Quickstart: the paper's running example (Fig. 1 + Table I) end to end.
//
// Three streams A(x,y), B(x), C(y) are joined with A.x=B.x AND A.y=C.y over
// a 5-minute window. The hand-built arrival sequence of Table I shows JIT in
// action: a1 is suspended after its first fruitless partial result, b4 and
// a2 are diverted without producing anything, and c1's arrival resumes
// production of exactly the suppressed partial results.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

func main() {
	cat := stream.NewCatalog()
	cat.MustAdd(stream.NewSchema("A", "x", "y"))
	cat.MustAdd(stream.NewSchema("B", "x"))
	cat.MustAdd(stream.NewSchema("C", "y"))
	conj := predicate.Conj{
		{Left: 0, LCol: 0, Right: 1, RCol: 0}, // A.x = B.x
		{Left: 0, LCol: 1, Right: 2, RCol: 0}, // A.y = C.y
	}

	m := stream.Minute
	trace := source.Merge(
		source.Burst(cat, 1, 0*m, []stream.Value{1}, []stream.Value{1}, []stream.Value{1}), // b1 b2 b3
		source.Burst(cat, 0, 1*m, []stream.Value{1, 100}),                                  // a1
		source.Burst(cat, 1, 2*m, []stream.Value{1}),                                       // b4
		source.Burst(cat, 0, 3*m, []stream.Value{1, 100}),                                  // a2
		source.Burst(cat, 2, 4*m, []stream.Value{100}),                                     // c1
	)

	shape := plan.J(plan.J(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)) // (A ⋈ B) ⋈ C
	for _, mode := range []struct {
		name string
		m    core.Mode
	}{{"REF", core.REF()}, {"JIT", core.JIT()}} {
		b := plan.BuildTree(cat, conj, shape, plan.Options{
			Window: 5 * stream.Minute, Mode: mode.m, KeepResults: true,
		})
		// Drain is on so that if the trace ended while a partial result was
		// still suspended, the timer heap would deliver or expire it before
		// the run reports — end-of-stream behaviour matches an unbounded run.
		res := engine.NewWithOptions(b, engine.Options{Drain: true}).Run(trace)
		fmt.Printf("%s: %d final results, %d composites built, %d comparisons, peak %.1f KB\n",
			mode.name, res.Results, res.Counters.Results, res.Counters.Comparisons, res.PeakMemKB)
		if mode.name == "JIT" {
			fmt.Printf("     suspended=%d resumed=%d MNS detected=%d feedback messages=%d\n",
				res.Counters.Suspended, res.Counters.Resumed,
				res.Counters.MNSDetected, res.Counters.Feedbacks)
		}
		for _, r := range b.Sink.Results() {
			fmt.Printf("     result %v at t=%v\n", r, r.TS)
		}
	}
}
