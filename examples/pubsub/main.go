// Pubsub: publish/subscribe matching (the paper's third motivating domain,
// Sec. I) with a selection consumer — the Fig. 9a plan where the operator
// above the join is a filter, demonstrating permanent suspension feedback:
// when a partial result fails the subscription filter, the upstream join
// stops producing partial results for that publisher outright (no
// resumption can ever arrive, because the filter never changes).
//
// Run: go run ./examples/pubsub
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

func main() {
	cat := stream.NewCatalog()
	// Publications carry (topic, priority); subscriptions carry (topic).
	cat.MustAdd(stream.NewSchema("Pub", "topic", "prio"))
	cat.MustAdd(stream.NewSchema("Sub", "topic"))
	conj := predicate.Conj{{Left: 0, LCol: 0, Right: 1, RCol: 0}} // Pub.topic = Sub.topic

	ctr := &metrics.Counters{}
	acct := &metrics.Account{}
	var mnsID uint64
	nextMNS := func() uint64 { mnsID++; return mnsID }

	join := core.NewJoin(core.Config{
		Name: "Op1", NumSources: 2, Window: 3 * stream.Minute,
		Preds: conj, Mode: core.JIT(),
		Counters: ctr, Account: acct, NextMNS: nextMNS,
		LeftSources:  stream.SourceSet(0).Add(0),
		RightSources: stream.SourceSet(0).Add(1),
	})
	// Only high-priority matches (prio > 90) are delivered — the selection
	// consumer of Fig. 9a.
	sel := operator.NewSelection("σ prio>90",
		predicate.Selection{Source: 0, Col: 1, Op: predicate.GT, Const: 90},
		join, ctr, true, nextMNS, 3*stream.Minute)
	join.SetConsumer(sel, operator.Left)
	sink := operator.NewSink("deliveries", ctr, false)
	sel.SetConsumer(sink, operator.Left)

	cfg := source.Config{
		Horizon: 15 * stream.Minute,
		Seed:    11,
		Specs: []source.SourceSpec{
			{Rate: 4.0, DMax: 60, DMaxByCol: map[int]int64{1: 100}}, // pubs: topics 1..60, prio 1..100
			{Rate: 1.0, DMax: 60}, // subs
		},
	}
	// Events are pulled lazily from the generator — the hand-wired loop
	// below is what engine.RunStream does for plan-built topologies.
	next := source.Stream(cat, cfg)
	events := 0
	for t, ok := next(); ok; t, ok = next() {
		events++
		c := stream.NewComposite(2, t)
		if t.Source == 0 {
			join.Consume(c, operator.Left)
		} else {
			join.Consume(c, operator.Right)
		}
	}
	fmt.Printf("pubsub: %d events processed\n", events)
	fmt.Printf("deliveries=%d composites=%d comparisons=%d\n",
		sink.Count(), ctr.Results, ctr.Comparisons)
	fmt.Printf("permanent suspensions from the filter: MNS detected=%d, suspended tuples=%d\n",
		ctr.MNSDetected, ctr.Suspended)
}
