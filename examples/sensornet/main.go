// Sensornet: the paper's factory-alarm motivation (Sec. I) — an abnormal
// combination of readings from nearby humidity, light and temperature
// sensors triggers an alarm. Each sensor is a stream; readings carry a zone
// id and a discretized level. The alarm query joins the three streams on
// zone and level correlation over a 2-minute window; abnormal combinations
// are rare, which is exactly the high-selectivity regime where JIT shines.
//
// Run: go run ./examples/sensornet
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

func main() {
	cat := stream.NewCatalog()
	// Columns: zone id and a discretized alarm code; sensors correlate when
	// they report the same zone and the same alarm code.
	cat.MustAdd(stream.NewSchema("Humidity", "zone", "code"))
	cat.MustAdd(stream.NewSchema("Light", "zone", "code"))
	cat.MustAdd(stream.NewSchema("Temp", "zone", "code"))
	conj := predicate.Conj{
		{Left: 0, LCol: 0, Right: 1, RCol: 0}, // H.zone = L.zone
		{Left: 0, LCol: 1, Right: 1, RCol: 1}, // H.code = L.code
		{Left: 0, LCol: 0, Right: 2, RCol: 0}, // H.zone = T.zone
		{Left: 0, LCol: 1, Right: 2, RCol: 1}, // H.code = T.code
	}

	// 40 zones × 50 alarm codes: a three-way coincidence is rare.
	cfg := source.Config{
		Horizon: 20 * stream.Minute,
		Seed:    2026,
		Specs: []source.SourceSpec{
			{Rate: 2.0, DMax: 40, DMaxByCol: map[int]int64{1: 50}},
			{Rate: 2.0, DMax: 40, DMaxByCol: map[int]int64{1: 50}},
			{Rate: 2.0, DMax: 40, DMaxByCol: map[int]int64{1: 50}},
		},
	}
	shape := plan.J(plan.J(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))

	fmt.Printf("sensornet: streaming readings over %v\n", cfg.Horizon)
	for _, mode := range []struct {
		name string
		m    core.Mode
	}{{"REF", core.REF()}, {"JIT", core.JIT()}} {
		b := plan.BuildTree(cat, conj, shape, plan.Options{
			Window: 2 * stream.Minute, Mode: mode.m,
		})
		// Readings are generated lazily and drained at end of stream, so
		// alarms suspended past the last reading are still raised and memory
		// stays bounded by the 2-minute window, not the run length.
		eng := engine.NewWithOptions(b, engine.Options{Drain: true})
		res := eng.RunStream(source.Stream(cat, cfg))
		fmt.Printf("%-4s readings=%d alarms=%d cost=%-10d wall=%-12v peak=%.1fKB intermediates=%d\n",
			mode.name, res.Arrivals, res.Results, res.CostUnits, res.WallTime, res.PeakMemKB, res.Counters.Results)
	}
}
