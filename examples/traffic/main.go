// Traffic: road-traffic monitoring (the paper's second motivating domain,
// Sec. I). Four detector stations report vehicle sightings (plate bucket,
// lane); the query tracks vehicles observed at all four stations within a
// 5-minute window in the same lane — a left-deep 4-way join, the plan
// family of Figures 14-17. The fourth station sits on a wide highway
// section with many more lanes, reproducing the paper's low-selectivity
// last stream.
//
// Run: go run ./examples/traffic
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stream"
)

func main() {
	base := exp.Params{
		N:                4,
		Bushy:            false, // stations chained: (((S1 ⋈ S2) ⋈ S3) ⋈ S4)
		Window:           5 * stream.Minute,
		Rate:             1.5,
		DMax:             40,
		LastStreamFactor: 100,
		Horizon:          25 * stream.Minute,
		Seed:             7,
	}
	fmt.Println("traffic: 4 detector stations, left-deep plan, 5-minute window")
	// Paper mode first: suppression never pays for undemanded results, the
	// cost regime of Figures 14-17. The tuples stream through the engine
	// lazily (exp.Params.Run uses source.Stream + engine.RunStream).
	for _, mode := range []struct {
		name string
		m    core.Mode
	}{{"REF", core.REF()}, {"JIT", core.JIT()}, {"DOE", core.DOE()}} {
		p := base
		p.Mode = mode.m
		r := p.Run()
		fmt.Printf("%-4s matches=%-6d cost=%-12d wall=%-12v peak=%8.1fKB suspended=%d resumed=%d\n",
			mode.name, r.Results, r.CostUnits, r.WallTime, r.PeakMemKB,
			r.Counters.Suspended, r.Counters.Resumed)
	}
	// With Drain the timer heap keeps firing after the detectors go quiet:
	// vehicles whose completion was suspended near the end of the run are
	// still reported, so JIT delivers exactly REF's matches — at the price
	// of generating every deferred pair (DESIGN.md §4, cost stance).
	p := base
	p.Mode = core.JIT()
	p.Drain = true
	r := p.Run()
	fmt.Printf("%-4s matches=%-6d cost=%-12d wall=%-12v peak=%8.1fKB suspended=%d resumed=%d (drained)\n",
		"JIT", r.Results, r.CostUnits, r.WallTime, r.PeakMemKB,
		r.Counters.Suspended, r.Counters.Resumed)
}
