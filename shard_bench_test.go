// Sharded-execution scaling benchmarks (DESIGN.md §5): the same dense
// λ=8 workload run across 1/2/4/8 key-partitioned engine replicas, in the
// paper-faithful linear-scan state mode. Two workloads bracket the key
// coverage spectrum:
//
//   - Chain: one transitive key class covers every source, nothing
//     broadcasts — each shard holds 1/n of every state and sees 1/n of the
//     arrivals, so total scan work falls ~n× and the run is faster even on
//     a single core (partition pruning), before any parallel speedup.
//   - Clique: pairwise-distinct columns key only two of four sources; the
//     rest broadcast, replicating their states and work on every shard —
//     the broadcast-bound worst case, which needs real cores to win.
//
// Results are recorded in BENCH_shard.json; TestShardedEquivalence pins
// that every curve point delivers the identical result multiset.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/shard"
	"repro/internal/source"
	"repro/internal/stream"
)

// benchShard runs the workload across n replicas once per iteration and
// reports the merged totals as custom metrics.
func benchShard(b *testing.B, cat *stream.Catalog, conj predicate.Conj, shape *plan.Node, arrivals []*stream.Tuple, n int) {
	b.ReportAllocs()
	var res shard.Result
	for i := 0; i < b.N; i++ {
		runner := shard.New(plan.BuildTree(cat, conj, shape, plan.Options{
			Window: 2 * stream.Minute, Mode: core.JIT(), NoStateIndex: true,
		}), shard.Options{Shards: n, Engine: engine.Options{Drain: true}})
		res = runner.Run(arrivals)
	}
	b.ReportMetric(float64(res.Merged.Results), "results")
	b.ReportMetric(float64(res.Merged.CostUnits), "cost-units")
	b.ReportMetric(float64(res.Broadcasts), "broadcasts")
}

// denseChain is the fully partitionable dense workload: N=4 chain
// (A.x=B.x=C.x=D.x), λ=8/s per source, dmax=100, w=2min, h=3min, seed 1.
func denseChain() (*stream.Catalog, predicate.Conj, *plan.Node, []*stream.Tuple) {
	cat, conj := predicate.Chain(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, 8, 100, 3*stream.Minute, 1))
	return cat, conj, plan.LeftDeep(4), arrivals
}

// denseClique is the ROADMAP dense workload: N=4 clique, λ=8/s per source,
// dmax=100, w=2min, h=3min, seed 1 — the same stream TestEndOfStreamDrain
// pins, with only sources A and B routed.
func denseClique() (*stream.Catalog, predicate.Conj, *plan.Node, []*stream.Tuple) {
	cat, conj := predicate.Clique(4)
	arrivals := source.Generate(cat, source.UniformConfig(4, 8, 100, 3*stream.Minute, 1))
	return cat, conj, plan.Bushy(4), arrivals
}

func BenchmarkShardChain(b *testing.B) {
	cat, conj, shape, arrivals := denseChain()
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchShard(b, cat, conj, shape, arrivals, n)
		})
	}
}

func BenchmarkShardClique(b *testing.B) {
	cat, conj, shape, arrivals := denseClique()
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchShard(b, cat, conj, shape, arrivals, n)
		})
	}
}
