// Command jitserver runs the continuous N-way clique query as a long-lived
// network service (DESIGN.md §10): base tuples arrive as NDJSON frames over
// TCP, final results stream back to subscriber connections, and — when a
// checkpoint directory is given — the §7 snapshot cut is made durable on a
// period so a killed server restarts into exactly the state it checkpointed
// and resumes exactly-once.
//
// Quickstart (two terminals):
//
//	jitserver -n 3 -window 1 -dir /var/lib/jitserver
//	printf '%s\n' '{"cmd":"ingest"}' '{"id":1,"source":0,"ts":1000,"vals":[7,7]}' \
//	    '{"cmd":"eos"}' | nc 127.0.0.1 4640
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stream"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jitserver: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	n := flag.Int("n", 4, "number of streaming sources")
	bushy := flag.Bool("bushy", true, "bushy plan (false = left-deep)")
	window := flag.Float64("window", 5, "window size in minutes")
	mode := flag.String("mode", "jit", "execution mode: jit, ref, doe, bloom")
	indexed := flag.Bool("indexed", false, "hash-indexed join states instead of the paper's linear scans (DESIGN.md §3)")
	band := flag.Int64("band", 0, "replace every equi-join predicate with the band predicate |l-r| <= band (DESIGN.md §8)")
	disorder := flag.Float64("disorder", 0, "admit out-of-timestamp-order ingest with delays up to this many seconds (incompatible with -dir; DESIGN.md §8)")
	addr := flag.String("addr", "127.0.0.1:4640", "TCP listen address for ingest and subscribe connections")
	dir := flag.String("dir", "", "checkpoint directory: enables durability and recovery (empty = in-memory only)")
	every := flag.Float64("every", 0, "checkpoint interval in minutes of application time (0 = one window; requires -dir)")
	keep := flag.Int("keep", 0, "checkpoints retained on disk (0 = 2)")
	maxPending := flag.Int("max-pending", 0, "ingest channel buffer: arrivals admitted but not yet processed (0 = 1024)")
	retain := flag.Int("retain", 0, "delivery ring size: results re-readable by resuming subscribers (0 = 16384)")
	policy := flag.String("policy", "block", "slow-subscriber policy: block (backpressure to ingest) or kick (disconnect laggards)")
	obsAddr := flag.String("obs-addr", "", "serve the live ops endpoint on this address: Prometheus /metrics, NDJSON /trace, /debug/pprof (DESIGN.md §9)")
	obsSample := flag.Float64("obs-sample", 0, "deterministic sampling interval for the obs time series, in seconds of stream time (0 = one window)")
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "jit":
		m = core.JIT()
	case "ref":
		m = core.REF()
	case "doe":
		m = core.DOE()
	case "bloom":
		m = core.BloomJIT()
	default:
		fail("unknown mode %q (want jit, ref, doe or bloom)", *mode)
	}

	var pol serve.SubPolicy
	switch *policy {
	case "block":
		pol = serve.SubBlock
	case "kick":
		pol = serve.SubKick
	default:
		fail("unknown policy %q (want block or kick)", *policy)
	}
	if *every < 0 {
		fail("-every cannot be negative (minutes; 0 = one window), got %g", *every)
	}
	if *disorder < 0 {
		fail("-disorder cannot be negative (seconds), got %g", *disorder)
	}
	if *obsSample < 0 {
		fail("-obs-sample cannot be negative (seconds; 0 = one window), got %g", *obsSample)
	}

	cfg := serve.Config{
		N:          *n,
		Bushy:      *bushy,
		Window:     stream.Time(*window * float64(stream.Minute)),
		Mode:       m,
		Indexed:    *indexed,
		Band:       stream.Value(*band),
		Disorder:   stream.Time(*disorder * float64(stream.Second)),
		Addr:       *addr,
		Dir:        *dir,
		Every:      stream.Time(*every * float64(stream.Minute)),
		Keep:       *keep,
		MaxPending: *maxPending,
		Retain:     *retain,
		Policy:     pol,
	}

	// The ops endpoint observes the serving plan through a ring-sink tracer,
	// exactly as jitrun -obs-addr does for a batch run (DESIGN.md §9).
	var obsSrv *obs.Server
	if *obsAddr != "" {
		sampleEvery := cfg.Window
		if *obsSample > 0 {
			sampleEvery = stream.Time(*obsSample * float64(stream.Second))
		}
		tr := obs.New(obs.Options{
			Sink:        obs.NewRingSink(4096),
			SampleEvery: sampleEvery,
			Label:       "serve",
		})
		cfg.Trace = tr
		reg := obs.NewRegistry()
		reg.Register(tr)
		srv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			fail("%v", err)
		}
		obsSrv = srv
		fmt.Fprintf(os.Stderr, "jitserver: ops endpoint at http://%s/metrics (also /trace, /debug/pprof)\n", srv.Addr())
	}

	s, err := serve.Open(cfg)
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "jitserver: serving %s mode=%s on %s\n", planName(*bushy), *mode, s.Addr())
	if r := s.Recovery(); r != nil {
		fmt.Fprintf(os.Stderr, "jitserver: recovered %s: cut=%v rows=%d keys=%d tail=%d ingest_hwm=%d delivered=%d in %v\n",
			r.Path, r.Cut, r.Rows, r.Keys, r.Tail, r.IngestHWM, r.Delivered, r.Elapsed)
	} else if *dir != "" {
		fmt.Fprintln(os.Stderr, "jitserver: no checkpoint to recover — fresh start")
	}

	// SIGINT/SIGTERM drain the server: ingest is kicked (admitted tuples stay
	// admitted), the engine drains, subscribers read to their eos line.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "jitserver: %v — draining\n", sig)
		s.Shutdown()
	}()

	res, err := s.Wait()
	s.Shutdown() // reap handlers; no-op if the signal path already ran
	if obsSrv != nil {
		// Graceful: an in-flight scrape of the final snapshot completes.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		obsSrv.Shutdown(ctx) //nolint:errcheck // best-effort on exit
		cancel()
	}
	if err != nil {
		fail("%v", err)
	}
	st := s.Stats()
	fmt.Printf("delivered=%d checkpoints=%d replay_dups=%d resume_skipped=%d arrivals=%d cost=%d\n",
		st.Delivered, st.Checkpoints, st.ReplayDups, st.Skipped, res.Arrivals, res.CostUnits)
	if st.SaveErr != nil {
		fail("checkpoint save failed during the run: %v", st.SaveErr)
	}
}

func planName(bushy bool) string {
	if bushy {
		return "bushy"
	}
	return "left-deep"
}
