// Command jitgen generates a synthetic clique-join workload trace (the
// paper's Sec. VI generator) as CSV on stdout: one line per arrival with
// timestamp (ms), source name, and column values.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

func main() {
	n := flag.Int("n", 4, "number of streaming sources")
	rate := flag.Float64("rate", 1.0, "arrival rate λ (tuples/sec/source)")
	dmax := flag.Int64("dmax", 200, "value domain upper bound")
	horizon := flag.Duration("horizon", 0, "application time horizon (e.g. 30m)")
	minutes := flag.Float64("minutes", 30, "horizon in minutes when -horizon unset")
	seed := flag.Int64("seed", 1, "random seed")
	zipf := flag.Float64("zipf", 0, "Zipf-skew value domains with this exponent (> 1; 0 = uniform; DESIGN.md §8)")
	burst := flag.Float64("burst", 0, "burst factor: multiply each source's rate by this during the first half of every burst period (> 1; 0 = stationary)")
	burstPeriod := flag.Float64("burst-period", 5, "burst cycle length in minutes")
	disorder := flag.Float64("disorder", 0, "emit the trace out of timestamp order with delays up to this many seconds (DESIGN.md §8)")
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "jitgen: "+format+"\n", args...)
		os.Exit(2)
	}
	h := stream.Time(*minutes * float64(stream.Minute))
	if *horizon != 0 {
		h = stream.Time(horizon.Milliseconds())
	}
	switch {
	case *n < 2:
		fail("-n must be at least 2, got %d", *n)
	case *rate <= 0:
		fail("-rate must be positive, got %g", *rate)
	case *dmax < 1:
		fail("-dmax must be at least 1, got %d", *dmax)
	case h <= 0:
		fail("horizon must be positive (got %v)", h)
	case *zipf != 0 && *zipf <= 1:
		fail("-zipf exponent must exceed 1, got %g", *zipf)
	case *burst < 0 || (*burst > 0 && *burst < 1):
		fail("-burst factor must be at least 1, got %g", *burst)
	case *burst > 1 && *burstPeriod <= 0:
		fail("-burst needs a positive -burst-period, got %g", *burstPeriod)
	case *disorder < 0:
		fail("-disorder cannot be negative, got %g", *disorder)
	}
	cat, _ := predicate.Clique(*n)
	cfg := source.UniformConfig(*n, *rate, *dmax, h, *seed)
	for i := range cfg.Specs {
		if *zipf > 1 {
			cfg.Specs[i].Zipf = *zipf
		}
		if *burst > 1 {
			cfg.Specs[i].BurstFactor = *burst
			cfg.Specs[i].BurstPeriod = stream.Time(*burstPeriod * float64(stream.Minute))
		}
	}
	if *disorder > 0 {
		cfg.Disorder = stream.Time(*disorder * float64(stream.Second))
	}
	arrivals := source.Generate(cat, cfg)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, t := range arrivals {
		fmt.Fprintf(w, "%d,%s", int64(t.TS), cat.Source(t.Source).Name)
		for _, v := range t.Vals {
			fmt.Fprintf(w, ",%d", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(os.Stderr, "jitgen: %d arrivals over %v from %d sources\n", len(arrivals), h, *n)
}
