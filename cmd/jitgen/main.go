// Command jitgen generates a synthetic clique-join workload trace (the
// paper's Sec. VI generator) as CSV on stdout: one line per arrival with
// timestamp (ms), source name, and column values.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

func main() {
	n := flag.Int("n", 4, "number of streaming sources")
	rate := flag.Float64("rate", 1.0, "arrival rate λ (tuples/sec/source)")
	dmax := flag.Int64("dmax", 200, "value domain upper bound")
	horizon := flag.Duration("horizon", 0, "application time horizon (e.g. 30m)")
	minutes := flag.Float64("minutes", 30, "horizon in minutes when -horizon unset")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "jitgen: "+format+"\n", args...)
		os.Exit(2)
	}
	h := stream.Time(*minutes * float64(stream.Minute))
	if *horizon != 0 {
		h = stream.Time(horizon.Milliseconds())
	}
	switch {
	case *n < 2:
		fail("-n must be at least 2, got %d", *n)
	case *rate <= 0:
		fail("-rate must be positive, got %g", *rate)
	case *dmax < 1:
		fail("-dmax must be at least 1, got %d", *dmax)
	case h <= 0:
		fail("horizon must be positive (got %v)", h)
	}
	cat, _ := predicate.Clique(*n)
	arrivals := source.Generate(cat, source.UniformConfig(*n, *rate, *dmax, h, *seed))

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, t := range arrivals {
		fmt.Fprintf(w, "%d,%s", int64(t.TS), cat.Source(t.Source).Name)
		for _, v := range t.Vals {
			fmt.Fprintf(w, ",%d", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(os.Stderr, "jitgen: %d arrivals over %v from %d sources\n", len(arrivals), h, *n)
}
