package main

import (
	"slices"
	"testing"

	"repro/internal/lint/suppaudit"
)

// TestRegistersAllAnalyzers pins the multichecker's registration: all five
// analyzers are installed, and the set matches suppaudit.KnownAnalyzers —
// so a new analyzer cannot ship without being suppressible and auditable.
func TestRegistersAllAnalyzers(t *testing.T) {
	var names []string
	for _, a := range analyzers() {
		names = append(names, a.Name)
	}
	slices.Sort(names)
	want := []string{"countersmerge", "maporder", "suppaudit", "tracedisc", "wallclock"}
	if !slices.Equal(names, want) {
		t.Errorf("registered analyzers = %v, want %v", names, want)
	}
	known := slices.Clone(suppaudit.KnownAnalyzers)
	slices.Sort(known)
	if !slices.Equal(names, known) {
		t.Errorf("registered analyzers %v do not match suppaudit.KnownAnalyzers %v", names, known)
	}
}
