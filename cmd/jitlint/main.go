// Command jitlint runs the repo's static-invariant suite (DESIGN.md §11):
// maporder, wallclock, countersmerge, tracedisc and suppaudit — the
// compile-time guards behind the determinism, event-time and observability
// contracts the runtime sweeps pin.
//
// Usage:
//
//	go run ./cmd/jitlint ./...          # lint the whole module (the CI gate)
//	go run ./cmd/jitlint ./internal/engine
//	go run ./cmd/jitlint -inventory ./...  # print the //jitlint:allow inventory
//
// Findings go to stderr in file:line:col: [analyzer] message form; the
// exit status is 1 when any finding (or stale suppression) remains.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
	"repro/internal/lint/suite"
)

// analyzers returns the registered suite; the registration test pins its
// contents against suppaudit's known-analyzer list.
func analyzers() []*lint.Analyzer {
	return suite.All()
}

func main() {
	inventory := flag.Bool("inventory", false,
		"print the //jitlint:allow suppression inventory (file:line analyzer reason) to stdout")
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: jitlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers() {
			fmt.Println(a.Name)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns, *inventory); err != nil {
		fmt.Fprintln(os.Stderr, "jitlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, inventory bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root := cwd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return fmt.Errorf("no go.mod at or above %s", cwd)
		}
		root = parent
	}
	l, err := load.New(root)
	if err != nil {
		return err
	}
	var dirs []string
	seen := map[string]bool{}
	for _, p := range patterns {
		var expand []string
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if rest == "." || rest == "" {
				rest = cwd
			}
			expand, err = l.PackageDirs(rest)
			if err != nil {
				return err
			}
		} else {
			expand = []string{p}
		}
		for _, d := range expand {
			abs, err := filepath.Abs(d)
			if err != nil {
				return err
			}
			if !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
		}
	}
	res, err := lint.Run(l, analyzers(), dirs)
	if err != nil {
		return err
	}
	if inventory {
		fmt.Printf("# jitlint suppression inventory: %d annotations, %d findings outstanding\n",
			len(res.Allows), len(res.Findings))
		for _, a := range res.Allows {
			rel, err := filepath.Rel(root, a.Pos.Filename)
			if err != nil {
				rel = a.Pos.Filename
			}
			fmt.Printf("%s:%d: %s: %s\n", rel, a.Pos.Line, a.Analyzer, a.Reason)
		}
	}
	for _, d := range res.Findings {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "jitlint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
	return nil
}
