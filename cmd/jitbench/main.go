// Command jitbench regenerates the paper's evaluation figures (10-17).
//
// Usage:
//
//	jitbench [-fig N|all] [-scale F] [-size F] [-seed N] [-ablation]
//
// -scale scales the application-time horizon relative to the paper's 5
// hours (floored at 2.5 windows); -scale 1 reproduces the full runs.
// -size optionally scales window and dmax together for quick looks.
// -ablation adds the DOE and Bloom-JIT modes to the comparison.
// -indexed runs every point with hash-indexed join states (DESIGN.md §3)
// instead of the paper's linear scans; under indexing REF's probe cost
// collapses to the matching pairs, so expect the JIT/REF cost ratios to
// invert relative to the paper's figures.
// -shards runs every point across key-partitioned engine replicas
// (DESIGN.md §5); broadcast sources are then ingested once per shard, so
// the work counters include that duplication and sharded sweeps measure
// scaling rather than the paper's overhead shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/stream"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: 10..17 or 'all'")
	scale := flag.Float64("scale", 0.02, "horizon scale relative to the paper's 5 hours")
	size := flag.Float64("size", 1.0, "window/domain size scale (1 = paper-exact)")
	seed := flag.Int64("seed", 1, "workload seed")
	ablation := flag.Bool("ablation", false, "include DOE and Bloom-JIT modes")
	indexed := flag.Bool("indexed", false, "hash-indexed join states instead of the paper's linear scans")
	shards := flag.Int("shards", 1, "run every point across key-partitioned engine replicas (scaling mode, not paper-comparable; DESIGN.md §5)")
	zipf := flag.Float64("zipf", 0, "Zipf-skew value domains with this exponent (> 1; 0 = uniform; hostile mode, DESIGN.md §8)")
	burst := flag.Float64("burst", 0, "burst factor: multiply every source's rate by this during the first half of each burst period (> 1; 0 = stationary)")
	burstPeriod := flag.Float64("burst-period", 0, "burst cycle length in minutes (0 = one window)")
	disorder := flag.Float64("disorder", 0, "deliver every point's stream out of timestamp order with delays up to this many seconds (DESIGN.md §8)")
	band := flag.Int64("band", 0, "replace every equi-join predicate with the band predicate |l-r| <= band (DESIGN.md §8)")
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "jitbench: "+format+"\n", args...)
		os.Exit(2)
	}
	// Validate before running anything: a bad scale or shard count would
	// otherwise be accepted silently (Scale <= 0 floors every horizon at
	// 2.5 windows, -size 0 silently means 1) or panic mid-sweep.
	switch {
	case *scale <= 0:
		fail("-scale must be positive (fraction of the paper's 5-hour horizon), got %g", *scale)
	case *size <= 0 || *size > 1:
		fail("-size must be in (0,1], got %g", *size)
	case *shards < 1:
		fail("-shards must be at least 1, got %d", *shards)
	case *zipf != 0 && *zipf <= 1:
		fail("-zipf exponent must exceed 1, got %g", *zipf)
	case *burst < 0 || (*burst > 0 && *burst < 1):
		fail("-burst factor must be at least 1, got %g", *burst)
	case *burstPeriod < 0:
		fail("-burst-period cannot be negative, got %g", *burstPeriod)
	case *burstPeriod > 0 && *burst <= 1:
		fail("-burst-period set but the burst factor is off (set -burst > 1)")
	case *disorder < 0:
		fail("-disorder cannot be negative, got %g", *disorder)
	case *band < 0:
		fail("-band cannot be negative, got %d", *band)
	}

	cfg := exp.Config{Scale: *scale, SizeScale: *size, Seed: *seed, Indexed: *indexed, Shards: *shards, Modes: exp.DefaultModes()}
	cfg.Zipf = *zipf
	cfg.Burst = *burst
	cfg.BurstPeriod = stream.Time(*burstPeriod * float64(stream.Minute))
	cfg.Disorder = stream.Time(*disorder * float64(stream.Second))
	cfg.Band = stream.Value(*band)
	if *ablation {
		cfg.Modes = exp.AblationModes()
	}
	if cfg.Zipf > 1 || cfg.Burst > 1 || cfg.Disorder > 0 || cfg.Band > 0 {
		fmt.Fprintln(os.Stderr, "jitbench: hostile mutators active — figures probe robustness, not the paper's shapes; expect shape deviations")
	}

	var runs []func(exp.Config) *exp.Figure
	if *fig == "all" {
		for id := 10; id <= 17; id++ {
			f, _ := exp.ByID(id)
			runs = append(runs, f)
		}
	} else {
		var id int
		if _, err := fmt.Sscanf(*fig, "%d", &id); err != nil {
			fmt.Fprintf(os.Stderr, "jitbench: bad -fig %q\n", *fig)
			os.Exit(2)
		}
		f, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "jitbench: unknown figure %d (want 10..17)\n", id)
			os.Exit(2)
		}
		runs = append(runs, f)
	}

	for _, run := range runs {
		start := time.Now()
		f := run(cfg)
		f.Render(os.Stdout)
		fmt.Printf("(elapsed %v)\n", time.Since(start).Round(time.Millisecond))
		if bad := f.CheckShape(); len(bad) > 0 {
			for _, v := range bad {
				fmt.Println("  shape deviation:", v)
			}
		}
		fmt.Println()
	}
}
