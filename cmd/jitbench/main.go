// Command jitbench regenerates the paper's evaluation figures (10-17).
//
// Usage:
//
//	jitbench [-fig N|all] [-scale F] [-size F] [-seed N] [-ablation]
//
// -scale scales the application-time horizon relative to the paper's 5
// hours (floored at 2.5 windows); -scale 1 reproduces the full runs.
// -size optionally scales window and dmax together for quick looks.
// -ablation adds the DOE and Bloom-JIT modes to the comparison.
// -indexed runs every point with hash-indexed join states (DESIGN.md §3)
// instead of the paper's linear scans; under indexing REF's probe cost
// collapses to the matching pairs, so expect the JIT/REF cost ratios to
// invert relative to the paper's figures.
// -shards runs every point across key-partitioned engine replicas
// (DESIGN.md §5); broadcast sources are then ingested once per shard, so
// the work counters include that duplication and sharded sweeps measure
// scaling rather than the paper's overhead shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: 10..17 or 'all'")
	scale := flag.Float64("scale", 0.02, "horizon scale relative to the paper's 5 hours")
	size := flag.Float64("size", 1.0, "window/domain size scale (1 = paper-exact)")
	seed := flag.Int64("seed", 1, "workload seed")
	ablation := flag.Bool("ablation", false, "include DOE and Bloom-JIT modes")
	indexed := flag.Bool("indexed", false, "hash-indexed join states instead of the paper's linear scans")
	shards := flag.Int("shards", 1, "run every point across key-partitioned engine replicas (scaling mode, not paper-comparable; DESIGN.md §5)")
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "jitbench: "+format+"\n", args...)
		os.Exit(2)
	}
	// Validate before running anything: a bad scale or shard count would
	// otherwise be accepted silently (Scale <= 0 floors every horizon at
	// 2.5 windows, -size 0 silently means 1) or panic mid-sweep.
	switch {
	case *scale <= 0:
		fail("-scale must be positive (fraction of the paper's 5-hour horizon), got %g", *scale)
	case *size <= 0 || *size > 1:
		fail("-size must be in (0,1], got %g", *size)
	case *shards < 1:
		fail("-shards must be at least 1, got %d", *shards)
	}

	cfg := exp.Config{Scale: *scale, SizeScale: *size, Seed: *seed, Indexed: *indexed, Shards: *shards, Modes: exp.DefaultModes()}
	if *ablation {
		cfg.Modes = exp.AblationModes()
	}

	var runs []func(exp.Config) *exp.Figure
	if *fig == "all" {
		for id := 10; id <= 17; id++ {
			f, _ := exp.ByID(id)
			runs = append(runs, f)
		}
	} else {
		var id int
		if _, err := fmt.Sscanf(*fig, "%d", &id); err != nil {
			fmt.Fprintf(os.Stderr, "jitbench: bad -fig %q\n", *fig)
			os.Exit(2)
		}
		f, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "jitbench: unknown figure %d (want 10..17)\n", id)
			os.Exit(2)
		}
		runs = append(runs, f)
	}

	for _, run := range runs {
		start := time.Now()
		f := run(cfg)
		f.Render(os.Stdout)
		fmt.Printf("(elapsed %v)\n", time.Since(start).Round(time.Millisecond))
		if bad := f.CheckShape(); len(bad) > 0 {
			for _, v := range bad {
				fmt.Println("  shape deviation:", v)
			}
		}
		fmt.Println()
	}
}
