// Command jitreport regenerates the evaluation artifacts: RESULTS.md (the
// generated results document comparing the reproduced Figures 10–17
// against the paper's reported trends, plus the beyond-the-paper
// appendices — sharded scaling, adaptive re-optimization, and the hostile
// stream scenarios of DESIGN.md §8), RESULTS.json (the machine-readable
// record) and results/figNN.svg (per-figure trend plots).
//
// Usage:
//
//	jitreport [-short] [-seed N] [-out DIR] [-check]
//
// -short runs the quick preset (three x-points per figure, shrunk
// workloads, JIT/REF only) that finishes in about a minute; the committed
// RESULTS.md is this preset's output. Without -short the full grid runs
// with unscaled workloads and the DOE/Bloom-JIT ablation modes — the
// nightly CI job regenerates and uploads it.
//
// -check regenerates in memory and diffs against the files on disk
// instead of writing, exiting non-zero on any drift — the CI gate that
// keeps the committed RESULTS.md honest.
//
// Every artifact is deterministic (fixed seed, sorted sweep order, cost
// units instead of wall-clock), so regeneration is byte-identical;
// progress and timing go to stderr only.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/report"
)

func main() {
	short := flag.Bool("short", false, "quick preset: 3 x-points per figure, shrunk workloads, JIT/REF only")
	seed := flag.Int64("seed", 1, "workload seed (committed artifacts use 1)")
	out := flag.String("out", ".", "output directory (RESULTS.md, RESULTS.json, results/)")
	check := flag.Bool("check", false, "regenerate and diff against existing artifacts instead of writing; non-zero exit on drift")
	flag.Parse()

	// A zero seed would silently run as seed 1 (the report.Options default)
	// while stamping the artifacts with the seed the user thought they set;
	// an empty -out would scatter artifacts at the filesystem root of the
	// relative paths. Reject both up front.
	if *seed == 0 {
		fmt.Fprintln(os.Stderr, "jitreport: -seed must be non-zero (committed artifacts use 1)")
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "jitreport: -out must not be empty (use . for the repo root)")
		os.Exit(2)
	}

	start := time.Now()
	rep := report.Build(report.Options{Short: *short, Seed: *seed, Progress: os.Stderr})
	fmt.Fprintf(os.Stderr, "sweep complete in %v\n", time.Since(start).Round(time.Millisecond))

	artifacts, err := rep.Artifacts()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jitreport:", err)
		os.Exit(1)
	}

	if *check {
		drift := 0
		for _, rel := range sortedKeys(artifacts) {
			path := filepath.Join(*out, rel)
			got, err := os.ReadFile(path)
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "jitreport: %s: %v\n", rel, err)
				drift++
			case !bytes.Equal(got, artifacts[rel]):
				fmt.Fprintf(os.Stderr, "jitreport: %s drifts from regenerated content\n", rel)
				drift++
			}
		}
		// Stale plots: a committed results/*.svg the harness no longer
		// generates (renamed or dropped figure) is drift too.
		for _, rel := range report.StaleSVGs(*out, artifacts) {
			fmt.Fprintf(os.Stderr, "jitreport: %s exists on disk but is no longer generated\n", rel)
			drift++
		}
		if drift > 0 {
			fmt.Fprintf(os.Stderr, "jitreport: %d artifact(s) drift — regenerate with `go run ./cmd/jitreport%s`\n",
				drift, shortFlag(*short))
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "jitreport: all artifacts match")
		return
	}

	for _, rel := range sortedKeys(artifacts) {
		path := filepath.Join(*out, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "jitreport:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, artifacts[rel], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "jitreport:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
}

func shortFlag(short bool) string {
	if short {
		return " -short"
	}
	return ""
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
