// Command jitrun executes an N-way clique continuous query over a synthetic
// workload with a chosen execution mode and prints the run summary — a
// command-line harness for exploring the JIT/REF/DOE/Bloom trade-offs
// outside the fixed figure sweeps.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stream"
)

func main() {
	n := flag.Int("n", 4, "number of streaming sources")
	bushy := flag.Bool("bushy", true, "bushy plan (false = left-deep)")
	rate := flag.Float64("rate", 1.0, "arrival rate λ (tuples/sec/source)")
	dmax := flag.Int64("dmax", 200, "value domain upper bound")
	window := flag.Float64("window", 5, "window size in minutes")
	minutes := flag.Float64("minutes", 15, "horizon in minutes")
	seed := flag.Int64("seed", 1, "random seed")
	mode := flag.String("mode", "jit", "execution mode: jit, ref, doe, bloom")
	indexed := flag.Bool("indexed", false, "hash-indexed join states instead of the paper's linear scans (DESIGN.md §3)")
	drain := flag.Bool("drain", false, "after the last arrival, keep firing timer deadlines so suspended results still resume or expire (end-of-stream drain, DESIGN.md §4)")
	drainHorizon := flag.Float64("drain-horizon", 0, "cap the drain at this application time in minutes (0 = last arrival + window)")
	shards := flag.Int("shards", 1, "run across this many key-partitioned engine replicas (forces drain; DESIGN.md §5)")
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "jit":
		m = core.JIT()
	case "ref":
		m = core.REF()
	case "doe":
		m = core.DOE()
	case "bloom":
		m = core.BloomJIT()
	default:
		fmt.Fprintf(os.Stderr, "jitrun: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	p := exp.Params{
		N:       *n,
		Bushy:   *bushy,
		Window:  stream.Time(*window * float64(stream.Minute)),
		Rate:    *rate,
		DMax:    *dmax,
		Horizon: stream.Time(*minutes * float64(stream.Minute)),
		Seed:    *seed,
		Mode:    m,
		Indexed: *indexed,
		Drain:   *drain,
	}
	if *drainHorizon > 0 {
		p.DrainHorizon = stream.Time(*drainHorizon * float64(stream.Minute))
	}
	if *shards > 1 {
		p.Shards = *shards
		s := p.RunSharded()
		r := s.Merged
		fmt.Printf("mode=%s plan=%s N=%d w=%v λ=%.2f dmax=%d horizon=%v shards=%d\n",
			*mode, planName(*bushy), *n, p.Window, *rate, *dmax, p.Horizon, len(s.Shards))
		if s.Fallback {
			fmt.Println("no plan-wide partition key — fell back to a single replica")
		} else {
			fmt.Printf("key=%v routed=%d broadcast=%d\n", s.Key, s.Routed, s.Broadcasts)
		}
		fmt.Printf("ingests=%d results=%d cost=%d wall=%v peakMem=%.1fKB (summed over shards)\n",
			r.Arrivals, r.Results, r.CostUnits, r.WallTime, r.PeakMemKB)
		for i, sr := range s.Shards {
			fmt.Printf("  shard %d: ingests=%d results=%d cost=%d peakMem=%.1fKB\n",
				i, sr.Arrivals, sr.Results, sr.CostUnits, sr.PeakMemKB)
		}
		fmt.Println(r.Counters.String())
		return
	}
	r := p.Run()
	fmt.Printf("mode=%s plan=%s N=%d w=%v λ=%.2f dmax=%d horizon=%v drain=%v\n",
		*mode, planName(*bushy), *n, p.Window, *rate, *dmax, p.Horizon, *drain)
	fmt.Printf("arrivals=%d results=%d cost=%d wall=%v peakMem=%.1fKB\n",
		r.Arrivals, r.Results, r.CostUnits, r.WallTime, r.PeakMemKB)
	fmt.Println(r.Counters.String())
}

func planName(bushy bool) string {
	if bushy {
		return "bushy"
	}
	return "left-deep"
}
