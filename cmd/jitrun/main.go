// Command jitrun executes an N-way clique continuous query over a synthetic
// workload with a chosen execution mode and prints the run summary — a
// command-line harness for exploring the JIT/REF/DOE/Bloom trade-offs
// outside the fixed figure sweeps.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stream"
)

func main() {
	n := flag.Int("n", 4, "number of streaming sources")
	bushy := flag.Bool("bushy", true, "bushy plan (false = left-deep)")
	rate := flag.Float64("rate", 1.0, "arrival rate λ (tuples/sec/source)")
	dmax := flag.Int64("dmax", 200, "value domain upper bound")
	window := flag.Float64("window", 5, "window size in minutes")
	minutes := flag.Float64("minutes", 15, "horizon in minutes")
	seed := flag.Int64("seed", 1, "random seed")
	mode := flag.String("mode", "jit", "execution mode: jit, ref, doe, bloom")
	indexed := flag.Bool("indexed", false, "hash-indexed join states instead of the paper's linear scans (DESIGN.md §3)")
	drain := flag.Bool("drain", false, "after the last arrival, keep firing timer deadlines so suspended results still resume or expire (end-of-stream drain, DESIGN.md §4)")
	drainHorizon := flag.Float64("drain-horizon", 0, "cap the drain at this application time in minutes (0 = last arrival + window)")
	shards := flag.Int("shards", 1, "run across this many key-partitioned engine replicas (forces drain; DESIGN.md §5)")
	adapt := flag.Bool("adapt", false, "adaptive re-optimization: migrate between bushy and left-deep mid-run on observed feedback (forces drain; DESIGN.md §7)")
	adaptEpoch := flag.Float64("adapt-epoch", 0, "re-optimization decision epoch in minutes (0 = one window)")
	zipf := flag.Float64("zipf", 0, "Zipf-skew value domains with this exponent (> 1; 0 = uniform; DESIGN.md §8)")
	burst := flag.Float64("burst", 0, "burst factor: multiply each source's rate by this during the first half of every burst period (> 1; 0 = stationary)")
	burstPeriod := flag.Float64("burst-period", 0, "burst cycle length in minutes (0 = one window)")
	disorder := flag.Float64("disorder", 0, "deliver the stream out of timestamp order with delays up to this many seconds; the engine's watermark admits them exactly (DESIGN.md §8)")
	band := flag.Int64("band", 0, "replace every equi-join predicate with the band predicate |l-r| <= band (defeats hash keying and key sharding; DESIGN.md §8)")
	stats := flag.Bool("stats", false, "print the per-operator stats table at exit (probes, MNS detections, suspensions, suppressed pairs)")
	obsAddr := flag.String("obs-addr", "", "serve the live ops endpoint on this address during the run: Prometheus /metrics, NDJSON /trace, /debug/pprof (DESIGN.md §9)")
	obsAggregate := flag.Bool("obs-aggregate", false, "with -shards, aggregate per-replica series on the ops endpoint (one tracer per replica, per-shard labels)")
	obsSample := flag.Float64("obs-sample", 0, "deterministic sampling interval for the obs time series, in seconds of stream time (0 = one window)")
	traceOut := flag.String("trace-out", "", "write the run's trace events to this file in Chrome trace format (open in chrome://tracing or Perfetto)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "jitrun: "+format+"\n", args...)
		os.Exit(2)
	}

	var m core.Mode
	switch *mode {
	case "jit":
		m = core.JIT()
	case "ref":
		m = core.REF()
	case "doe":
		m = core.DOE()
	case "bloom":
		m = core.BloomJIT()
	default:
		fail("unknown mode %q (want jit, ref, doe or bloom)", *mode)
	}

	// Flag-combination checks: both -shards and -adapt force the end-of-
	// stream drain, so an explicit -drain=false contradicts them — reject
	// rather than silently overriding the user's choice; when -drain was
	// simply left unset, print a notice instead.
	drainForced := *shards > 1 || *adapt
	if drainForced && explicit["drain"] && !*drain {
		switch {
		case *shards > 1:
			fail("-drain=false contradicts -shards=%d: sharded execution requires the end-of-stream drain (per-shard exact delivery is what makes the shard union equal the single-engine multiset, DESIGN.md §5)", *shards)
		default:
			fail("-drain=false contradicts -adapt: the migration handoff requires the end-of-stream drain (DESIGN.md §7)")
		}
	}
	if drainForced && !*drain {
		fmt.Fprintln(os.Stderr, "jitrun: notice: forcing the end-of-stream drain (required by -shards/-adapt)")
	}
	if explicit["adapt-epoch"] && !*adapt {
		fail("-adapt-epoch has no effect without -adapt")
	}
	if explicit["adapt-epoch"] && *adaptEpoch < 0 {
		fail("-adapt-epoch cannot be negative (minutes; 0 = one window), got %g", *adaptEpoch)
	}
	tracing := *obsAddr != "" || *traceOut != ""
	if explicit["obs-sample"] && *obsSample < 0 {
		fail("-obs-sample cannot be negative (seconds; 0 = one window), got %g", *obsSample)
	}
	if explicit["obs-sample"] && !tracing {
		fail("-obs-sample has no effect without -obs-addr or -trace-out")
	}
	// The ops endpoint on a sharded run needs per-replica aggregation — a
	// single tracer cannot observe N engines. As with -drain above, an
	// explicit -obs-aggregate=false contradicts the combination and is
	// rejected; merely unset gets a notice and is forced on.
	if *obsAddr != "" && *shards > 1 {
		if explicit["obs-aggregate"] && !*obsAggregate {
			fail("-obs-aggregate=false contradicts -obs-addr with -shards=%d: the ops endpoint needs per-replica aggregation to observe a sharded run (DESIGN.md §9)", *shards)
		}
		if !*obsAggregate {
			fmt.Fprintln(os.Stderr, "jitrun: notice: forcing per-replica aggregation (-obs-aggregate) for the ops endpoint on a sharded run")
			*obsAggregate = true
		}
	}

	p := exp.Params{
		N:       *n,
		Bushy:   *bushy,
		Window:  stream.Time(*window * float64(stream.Minute)),
		Rate:    *rate,
		DMax:    *dmax,
		Horizon: stream.Time(*minutes * float64(stream.Minute)),
		Seed:    *seed,
		Mode:    m,
		Indexed: *indexed,
		Drain:   *drain,
		Adapt:   *adapt,
	}
	if *drainHorizon > 0 {
		p.DrainHorizon = stream.Time(*drainHorizon * float64(stream.Minute))
	} else if *drainHorizon < 0 {
		fail("-drain-horizon cannot be negative, got %g", *drainHorizon)
	}
	if *shards > 1 {
		p.Shards = *shards
	} else if *shards < 1 {
		fail("-shards must be at least 1, got %d", *shards)
	}
	if *adaptEpoch > 0 {
		p.AdaptEpoch = stream.Time(*adaptEpoch * float64(stream.Minute))
	}
	p.Zipf = *zipf
	p.Burst = *burst
	if *burstPeriod > 0 {
		p.BurstPeriod = stream.Time(*burstPeriod * float64(stream.Minute))
	} else if *burstPeriod < 0 {
		fail("-burst-period cannot be negative, got %g", *burstPeriod)
	}
	if *disorder > 0 {
		p.Disorder = stream.Time(*disorder * float64(stream.Second))
	} else if *disorder < 0 {
		fail("-disorder cannot be negative, got %g", *disorder)
	}
	p.Band = stream.Value(*band)
	if p.Adapt {
		p.AdaptLog = os.Stdout
	}
	p.ObsAddr = *obsAddr
	p.ObsAggregate = *obsAggregate
	if err := p.Validate(); err != nil {
		fail("%v", err)
	}

	// Observability wiring (DESIGN.md §9): one tracer per engine — single
	// runs get one, sharded runs one per replica via TraceFor. The trace
	// file uses an unlocked MemorySink (read only after the run); the live
	// /trace endpoint a locked RingSink.
	var (
		tracers []*obs.Tracer
		mems    []*obs.MemorySink
	)
	if tracing {
		sampleEvery := p.Window
		if *obsSample > 0 {
			sampleEvery = stream.Time(*obsSample * float64(stream.Second))
		}
		reg := obs.NewRegistry()
		newTracer := func(shard int) *obs.Tracer {
			var tee obs.TeeSink
			if *traceOut != "" {
				m := &obs.MemorySink{}
				mems = append(mems, m)
				tee = append(tee, m)
			}
			if *obsAddr != "" {
				tee = append(tee, obs.NewRingSink(4096))
			}
			var sink obs.Sink = tee
			if len(tee) == 1 {
				sink = tee[0]
			}
			tr := obs.New(obs.Options{
				Sink:        sink,
				SampleEvery: sampleEvery,
				WallLatency: *obsAddr != "",
				Shard:       shard,
			})
			tracers = append(tracers, tr)
			reg.Register(tr)
			return tr
		}
		if p.Shards > 1 {
			p.TraceFor = newTracer
		} else {
			p.Trace = newTracer(0)
		}
		if *obsAddr != "" {
			srv, err := obs.Serve(*obsAddr, reg)
			if err != nil {
				fail("%v", err)
			}
			// Graceful teardown: let an in-flight scrape finish reading the
			// final snapshot instead of tearing its connection mid-body.
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				srv.Shutdown(ctx) //nolint:errcheck // best-effort on exit
			}()
			fmt.Fprintf(os.Stderr, "jitrun: ops endpoint at http://%s/metrics (also /trace, /debug/pprof)\n", srv.Addr())
		}
	}

	if p.Shards > 1 {
		s := p.RunSharded()
		r := s.Merged
		fmt.Printf("mode=%s plan=%s N=%d w=%v λ=%.2f dmax=%d horizon=%v shards=%d adapt=%v\n",
			*mode, planName(*bushy), *n, p.Window, *rate, *dmax, p.Horizon, len(s.Shards), *adapt)
		if h := hostileDesc(p); h != "" {
			fmt.Println(h)
		}
		if s.Fallback {
			fmt.Println("no plan-wide partition key — fell back to a single replica")
		} else {
			fmt.Printf("key=%v routed=%d broadcast=%d\n", s.Key, s.Routed, s.Broadcasts)
		}
		fmt.Printf("ingests=%d results=%d cost=%d wall=%v peakMem=%.1fKB (summed over shards)\n",
			r.Arrivals, r.Results, r.CostUnits, r.WallTime, r.PeakMemKB)
		for i, sr := range s.Shards {
			fmt.Printf("  shard %d: ingests=%d results=%d cost=%d peakMem=%.1fKB\n",
				i, sr.Arrivals, sr.Results, sr.CostUnits, sr.PeakMemKB)
		}
		fmt.Println(r.Counters.String())
		if *stats {
			printOpStats(r.Ops)
		}
		obsEpilogue(tracers, mems, *traceOut)
		return
	}
	r := p.Run()
	fmt.Printf("mode=%s plan=%s N=%d w=%v λ=%.2f dmax=%d horizon=%v drain=%v adapt=%v\n",
		*mode, planName(*bushy), *n, p.Window, *rate, *dmax, p.Horizon, *drain || p.Adapt, *adapt)
	if h := hostileDesc(p); h != "" {
		fmt.Println(h)
	}
	fmt.Printf("arrivals=%d results=%d cost=%d wall=%v peakMem=%.1fKB\n",
		r.Arrivals, r.Results, r.CostUnits, r.WallTime, r.PeakMemKB)
	fmt.Println(r.Counters.String())
	if *stats {
		printOpStats(r.Ops)
	}
	obsEpilogue(tracers, mems, *traceOut)
}

// printOpStats renders the per-operator stats table (-stats).
func printOpStats(ops []metrics.NamedOpStats) {
	fmt.Println("per-operator stats:")
	fmt.Printf("  %-24s %12s %12s %12s %12s\n", "operator", "probes", "mns", "suspended", "suppressed")
	for _, o := range ops {
		fmt.Printf("  %-24s %12d %12d %12d %12d\n",
			o.Name, o.Stats.Probes, o.Stats.MNSDetected, o.Stats.Suspended, o.Stats.SuppressedPairs)
	}
}

// obsEpilogue prints the merged event-time latency histogram and writes the
// Chrome trace file, if tracing was on.
func obsEpilogue(tracers []*obs.Tracer, mems []*obs.MemorySink, traceOut string) {
	if len(tracers) == 0 {
		return
	}
	var lat obs.Histogram
	for _, tr := range tracers {
		lat.Merge(tr.Latency())
	}
	fmt.Printf("latency(event-ms): %s\n", lat.String())
	if traceOut == "" {
		return
	}
	// Per-shard sinks concatenate in shard order: each shard's own event
	// order is deterministic, and ChromeTrace keeps shards apart by pid.
	var evs []obs.Event
	for _, m := range mems {
		evs = append(evs, m.Events()...)
	}
	if err := os.WriteFile(traceOut, obs.ChromeTrace(evs), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "jitrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: wrote %d events to %s\n", len(evs), traceOut)
}

func planName(bushy bool) string {
	if bushy {
		return "bushy"
	}
	return "left-deep"
}

// hostileDesc summarizes the active hostile-stream mutators, or "" when the
// run uses the paper's friendly traffic.
func hostileDesc(p exp.Params) string {
	var parts []string
	if p.Zipf > 1 {
		parts = append(parts, fmt.Sprintf("zipf=%.2f", p.Zipf))
	}
	if p.Burst > 1 {
		period := "1w"
		if p.BurstPeriod > 0 {
			period = p.BurstPeriod.String()
		}
		parts = append(parts, fmt.Sprintf("burst=%.1fx/%s", p.Burst, period))
	}
	if p.Disorder > 0 {
		parts = append(parts, fmt.Sprintf("disorder<=%v", p.Disorder))
	}
	if p.Band > 0 {
		parts = append(parts, fmt.Sprintf("band=±%d", p.Band))
	}
	if len(parts) == 0 {
		return ""
	}
	return "hostile: " + strings.Join(parts, " ")
}
