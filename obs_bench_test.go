// Observability overhead benchmarks (DESIGN.md §9): the tentpole contract
// is zero overhead when disabled and bounded overhead when enabled, measured
// not argued. Each sub-benchmark runs the same JIT workload and reports
// ns/arrival and allocs/arrival at four instrumentation levels:
//
//   - off          — no tracer attached; the nil-receiver fast path. The
//     acceptance budget is ≤2% ns/arrival over this baseline at sink=nil.
//   - nil-sink     — a tracer with no event sink: clock advance, latency
//     histogram and sampler run; event emission compiles to a pointer test.
//   - counting     — the cheapest real sink: every event materialized once.
//   - chrome-trace — a retaining MemorySink, the trace-export configuration.
//
// Results are recorded in BENCH_obs.json; TestTracingTransparency
// (internal/obs) pins that none of these configurations changes a counter.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/source"
	"repro/internal/stream"
)

// benchObs runs the workload once per iteration with a fresh plan and the
// given tracer factory, normalizing time and allocations per arrival.
func benchObs(b *testing.B, tracer func() *obs.Tracer) {
	cat, conj := predicate.Clique(4)
	cfg := source.UniformConfig(4, 4.0, 60, 2*stream.Minute, 1)
	arrivals := source.Generate(cat, cfg)
	b.ReportAllocs()
	var r engine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		built := plan.BuildTree(cat, conj, plan.Bushy(4), plan.Options{
			Window: stream.Minute, Mode: core.JIT(),
		})
		if tr := tracer(); tr != nil {
			built.SetTrace(tr)
		}
		b.StartTimer()
		r = engine.NewWithOptions(built, engine.Options{Drain: true}).Run(arrivals)
	}
	b.StopTimer()
	perArrival := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(arrivals))
	b.ReportMetric(perArrival, "ns/arrival")
	b.ReportMetric(float64(r.Results), "results")
	_ = exp.Params{} // keep the exp import anchored to the harness family
}

// BenchmarkObs measures the per-arrival observability overhead at each
// instrumentation level. The nightly CI job snapshots this into
// BENCH_obs.json.
func BenchmarkObs(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchObs(b, func() *obs.Tracer { return nil })
	})
	b.Run("nil-sink", func(b *testing.B) {
		benchObs(b, func() *obs.Tracer {
			return obs.New(obs.Options{SampleEvery: 10 * stream.Second})
		})
	})
	b.Run("counting", func(b *testing.B) {
		benchObs(b, func() *obs.Tracer {
			return obs.New(obs.Options{Sink: &obs.CountingSink{}, SampleEvery: 10 * stream.Second})
		})
	})
	b.Run("chrome-trace", func(b *testing.B) {
		benchObs(b, func() *obs.Tracer {
			return obs.New(obs.Options{Sink: &obs.MemorySink{}, SampleEvery: 10 * stream.Second})
		})
	})
}
